//! # `bda` — the Big Data Algebra facade crate
//!
//! One dependency for the whole framework: the fused tabular/array data
//! model ([`storage`]), the algebra and provider model ([`core`]), four
//! back-end engines ([`relational`], [`mod@array`], [`linalg`], [`graph`]),
//! the multi-server federation ([`federation`]), the client language
//! surfaces ([`lang`]) and the synthetic workload generators
//! ([`workloads`]).
//!
//! ```
//! use std::sync::Arc;
//! use bda::core::{col, lit, AggExpr, AggFunc, Provider};
//! use bda::federation::Federation;
//! use bda::lang::{parse_query, Query};
//! use bda::relational::RelationalEngine;
//! use bda::storage::{Column, DataSet};
//!
//! // A back-end server with a table.
//! let rel = RelationalEngine::new("rel");
//! rel.store("sales", DataSet::from_columns(vec![
//!     ("region", Column::from(vec!["west", "east", "west"])),
//!     ("amount", Column::from(vec![120.0f64, 80.0, 45.0])),
//! ]).unwrap()).unwrap();
//!
//! // The federation is the paper's "organizing framework".
//! let mut fed = Federation::new();
//! fed.register(Arc::new(rel));
//!
//! // Build the query with the LINQ-style API ...
//! let q = Query::scan("sales", fed.registry().schema_of("sales").unwrap())
//!     .where_(col("amount").gt(lit(50.0)))
//!     .group_by(vec!["region"],
//!               vec![AggExpr::new(AggFunc::Sum, col("amount"), "total")]);
//! let (result, metrics) = fed.run(q.plan()).unwrap();
//! assert_eq!(result.num_rows(), 2);
//! assert_eq!(metrics.app_tier_bytes(), 0);
//!
//! // ... or as BDL text; both compile to the same algebra.
//! let lookup = |name: &str| fed.registry().schema_of(name).ok();
//! let plan = parse_query(
//!     "scan sales | where amount > 50.0 \
//!      | groupby region: sum(amount) as total",
//!     &lookup,
//! ).unwrap();
//! let (same, _) = fed.run(&plan).unwrap();
//! assert!(result.same_bag(&same).unwrap());
//! ```
//!
//! See `README.md` for the architecture tour, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the measured desiderata results.

pub use bda_array as array;
pub use bda_core as core;
pub use bda_federation as federation;
pub use bda_graph as graph;
pub use bda_lang as lang;
pub use bda_linalg as linalg;
pub use bda_obs as obs;
pub use bda_relational as relational;
pub use bda_storage as storage;
pub use bda_workloads as workloads;
