//! Plan dispatch for the array engine.
//!
//! Dimension-aware operators route to the dense kernels in
//! [`crate::dense_ops`]; the scalar relational core (select / project /
//! aggregate / union / distinct / limit) runs over the coordinate-list
//! view. Joins, sorts, matmul, graph ops and iteration are rejected —
//! they belong to other providers.

use std::collections::{BTreeMap, HashMap};

use bda_core::agg::{Accumulator, AggExpr};
use bda_core::eval::{eval_chunk, infer_expr};
use bda_core::infer::infer_schema;
use bda_core::{CoreError, Plan};
use bda_storage::{Chunk, Column, DataSet, Row, RowsChunk, Value};

use crate::dense_ops;

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Execute a plan against the engine's array map.
pub fn execute(plan: &Plan, arrays: &BTreeMap<String, DataSet>) -> Result<DataSet> {
    // Per-operator tracing when a scope is installed (`execute_traced`);
    // one inert thread-local check otherwise.
    let mut node = bda_obs::scope::enter(|| format!("op:{}", plan.op_kind().name()));
    let out = execute_node(plan, arrays);
    if let (Some(n), Ok(ds)) = (node.as_mut(), &out) {
        n.rows(ds.num_rows());
    }
    out
}

fn execute_node(plan: &Plan, arrays: &BTreeMap<String, DataSet>) -> Result<DataSet> {
    let out_schema = infer_schema(plan)?;
    match plan {
        Plan::Scan { dataset, schema } => {
            let ds = arrays
                .get(dataset)
                .ok_or_else(|| CoreError::UnknownDataset(dataset.clone()))?;
            if ds.schema() != schema {
                return Err(CoreError::Plan(format!(
                    "scan `{dataset}`: bound schema {} does not match stored schema {}",
                    schema,
                    ds.schema()
                )));
            }
            Ok(ds.clone())
        }
        Plan::Values { schema, rows } => {
            DataSet::from_rows(schema.clone(), rows).map_err(Into::into)
        }
        Plan::Range { lo, hi, .. } => {
            let col = Column::from((*lo..*hi).collect::<Vec<i64>>());
            let chunk = RowsChunk::new(vec![col])?;
            Ok(DataSet::new(out_schema, vec![Chunk::Rows(chunk)]))
        }
        // --- native dense operators ---------------------------------------
        Plan::Dice { input, ranges } => {
            let in_ds = execute(input, arrays)?;
            // Grid-stored arrays get box pruning: tiles outside the target
            // range are skipped entirely.
            let all_dense = !in_ds.chunks().is_empty()
                && in_ds.chunks().iter().all(|c| matches!(c, Chunk::Dense(_)));
            if all_dense && in_ds.chunks().len() > 1 {
                let (out, _, _) = dense_ops::dice_pruned(&in_ds, &out_schema)?;
                Ok(out)
            } else {
                dense_ops::dice_dense(&in_ds, ranges, out_schema)
            }
        }
        Plan::SliceAt { input, dim, index } => {
            let in_ds = execute(input, arrays)?;
            dense_ops::slice_dense(&in_ds, dim, *index, out_schema)
        }
        Plan::Permute { input, order } => {
            let in_ds = execute(input, arrays)?;
            dense_ops::permute_dense(&in_ds, order, out_schema)
        }
        Plan::Window { input, radii, aggs } => {
            let in_ds = execute(input, arrays)?;
            dense_ops::window_dense(&in_ds, radii, aggs, out_schema)
        }
        Plan::Fill { input, fill } => {
            let in_ds = execute(input, arrays)?;
            dense_ops::fill_dense(&in_ds, fill, out_schema)
        }
        Plan::ElemWise { op, left, right } => {
            let l = execute(left, arrays)?;
            let r = execute(right, arrays)?;
            dense_ops::elemwise_dense(*op, &l, &r, out_schema)
        }
        // A bare Exchange is a planner marker with bag-identity
        // semantics; the band split happens in the Merge(op(..)) arm.
        Plan::Exchange { input, .. } => execute(input, arrays),
        Plan::Merge { input } => match input.as_ref() {
            Plan::ElemWise { op, left, right }
                if matches!(
                    (left.as_ref(), right.as_ref()),
                    (Plan::Exchange { .. }, Plan::Exchange { .. })
                ) =>
            {
                let (
                    Plan::Exchange {
                        input: li, parts, ..
                    },
                    Plan::Exchange { input: ri, .. },
                ) = (left.as_ref(), right.as_ref())
                else {
                    unreachable!("guarded by matches!");
                };
                let l = execute(li, arrays)?;
                let r = execute(ri, arrays)?;
                dense_ops::elemwise_dense_partitioned(*op, &l, &r, *parts, out_schema)
            }
            _ => execute(input, arrays),
        },
        // --- scalar relational core over the coordinate view --------------
        Plan::Select { input, predicate } => {
            let in_ds = execute(input, arrays)?;
            let in_schema = in_ds.schema().clone();
            let chunk = in_ds.to_rows_chunk()?;
            let mask_col = eval_chunk(predicate, &in_schema, &chunk)?;
            let data = mask_col
                .bool_data()
                .map_err(|e| CoreError::Plan(format!("predicate not bool: {e}")))?;
            let mask: Vec<bool> = match mask_col.validity() {
                None => data.to_vec(),
                Some(bm) => data
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| b && bm.get(i))
                    .collect(),
            };
            Ok(DataSet::new(
                out_schema,
                vec![Chunk::Rows(chunk.filter(&mask))],
            ))
        }
        Plan::Project { input, exprs } => {
            let in_ds = execute(input, arrays)?;
            let in_schema = in_ds.schema().clone();
            let chunk = in_ds.to_rows_chunk()?;
            let mut cols = Vec::with_capacity(exprs.len());
            for (i, (_, e)) in exprs.iter().enumerate() {
                let c = eval_chunk(e, &in_schema, &chunk)?;
                let want = out_schema.field_at(i).dtype;
                cols.push(if c.dtype() == want { c } else { c.cast(want) });
            }
            Ok(DataSet::new(
                out_schema,
                vec![Chunk::Rows(RowsChunk::new(cols)?)],
            ))
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let in_ds = execute(input, arrays)?;
            aggregate_fallback(&in_ds, group_by, aggs, out_schema)
        }
        Plan::Union { left, right } => {
            let l = execute(left, arrays)?;
            let r = execute(right, arrays)?;
            let mut chunk = l.to_rows_chunk()?;
            chunk.extend(&r.to_rows_chunk()?)?;
            Ok(DataSet::new(out_schema, vec![Chunk::Rows(chunk)]))
        }
        Plan::Distinct { input } => {
            let in_ds = execute(input, arrays)?;
            let chunk = in_ds.to_rows_chunk()?;
            let mut seen = std::collections::HashSet::with_capacity(chunk.len());
            let mut keep = Vec::new();
            for i in 0..chunk.len() {
                if seen.insert(chunk.row(i)) {
                    keep.push(i);
                }
            }
            Ok(DataSet::new(
                out_schema,
                vec![Chunk::Rows(chunk.take(&keep))],
            ))
        }
        Plan::Limit { input, skip, fetch } => {
            let in_ds = execute(input, arrays)?;
            let chunk = in_ds.to_rows_chunk()?;
            let n = chunk.len();
            let start = (*skip).min(n);
            let end = match fetch {
                Some(f) => (start + f).min(n),
                None => n,
            };
            let idx: Vec<usize> = (start..end).collect();
            Ok(DataSet::new(
                out_schema,
                vec![Chunk::Rows(chunk.take(&idx))],
            ))
        }
        Plan::Rename { input, .. } | Plan::UntagDims { input } | Plan::TagDims { input, .. } => {
            let in_ds = execute(input, arrays)?;
            let chunk = in_ds.to_rows_chunk()?;
            // Re-densify under the new schema when bounded (validates
            // coordinates as a side effect).
            let ds = DataSet::new(out_schema.clone(), vec![Chunk::Rows(chunk)]);
            if out_schema.ndims() > 0 && out_schema.is_bounded() {
                ds.to_dense().map_err(Into::into)
            } else {
                Ok(ds)
            }
        }
        other => Err(CoreError::Unsupported {
            provider: "array".into(),
            op: other.op_kind().name().into(),
        }),
    }
}

/// Row-hash aggregation (the array engine's relational ops are serviceable,
/// not fast — mirroring how array stores treat non-array workloads).
fn aggregate_fallback(
    input: &DataSet,
    group_by: &[String],
    aggs: &[AggExpr],
    out_schema: bda_storage::Schema,
) -> Result<DataSet> {
    let in_schema = input.schema().clone();
    let chunk = input.to_rows_chunk()?;
    let key_idx: Vec<usize> = group_by
        .iter()
        .map(|g| in_schema.index_of(g))
        .collect::<std::result::Result<_, bda_storage::StorageError>>()?;
    let mut arg_cols: Vec<Option<Column>> = Vec::new();
    let mut arg_types = Vec::new();
    for a in aggs {
        match &a.arg {
            Some(e) => {
                arg_types.push(infer_expr(e, &in_schema)?);
                arg_cols.push(Some(eval_chunk(e, &in_schema, &chunk)?));
            }
            None => {
                arg_types.push(None);
                arg_cols.push(None);
            }
        }
    }
    let mut groups: HashMap<Row, Vec<Accumulator>> = HashMap::new();
    let mut order = Vec::new();
    for i in 0..chunk.len() {
        let key = Row(key_idx.iter().map(|&k| chunk.column(k).get(i)).collect());
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggs.iter()
                .zip(&arg_types)
                .map(|(a, t)| Accumulator::new(a.func, *t))
                .collect()
        });
        for (acc, arg) in accs.iter_mut().zip(&arg_cols) {
            let v = match arg {
                Some(c) => c.get(i),
                None => Value::Bool(true),
            };
            acc.update(&v)?;
        }
    }
    if group_by.is_empty() && groups.is_empty() {
        let accs = aggs
            .iter()
            .zip(&arg_types)
            .map(|(a, t)| Accumulator::new(a.func, *t))
            .collect();
        groups.insert(Row::new(), accs);
        order.push(Row::new());
    }
    let mut cols: Vec<Column> = out_schema
        .fields()
        .iter()
        .map(|f| Column::new_empty(f.dtype))
        .collect();
    for key in &order {
        for (ci, v) in key.0.iter().enumerate() {
            cols[ci].push(v).map_err(CoreError::from)?;
        }
        for (ai, acc) in groups[key].iter().enumerate() {
            let ci = group_by.len() + ai;
            let v = acc.finish();
            let v = match (&v, out_schema.field_at(ci).dtype) {
                (Value::Int(x), bda_storage::DataType::Float64) => Value::Float(*x as f64),
                _ => v,
            };
            cols[ci].push(&v).map_err(CoreError::from)?;
        }
    }
    let chunk = RowsChunk::new(cols).map_err(CoreError::from)?;
    Ok(DataSet::new(out_schema, vec![Chunk::Rows(chunk)]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::reference::evaluate;
    use bda_core::{col, lit, AggFunc};
    use bda_storage::dataset::matrix_dataset;
    use std::collections::HashMap as StdHashMap;

    fn arrays() -> BTreeMap<String, DataSet> {
        let mut m = BTreeMap::new();
        m.insert(
            "m".to_string(),
            matrix_dataset(4, 4, (0..16).map(|i| i as f64).collect()).unwrap(),
        );
        m
    }

    fn check(plan: &Plan) {
        let a = arrays();
        let ours = execute(plan, &a).expect("array engine");
        let oracle_src: StdHashMap<String, DataSet> =
            a.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        let oracle = evaluate(plan, &oracle_src).expect("reference");
        assert_eq!(ours.schema(), oracle.schema());
        assert!(
            ours.same_bag(&oracle).unwrap(),
            "mismatch for plan:\n{plan}\nours:\n{}oracle:\n{}",
            ours.show(30),
            oracle.show(30)
        );
    }

    fn scan_m() -> Plan {
        Plan::scan("m", arrays()["m"].schema().clone())
    }

    #[test]
    fn array_pipeline_matches_reference() {
        let plan = Plan::Window {
            input: Plan::Dice {
                input: scan_m().boxed(),
                ranges: vec![("row".into(), 0, 3)],
            }
            .boxed(),
            radii: vec![("row".into(), 1), ("col".into(), 1)],
            aggs: vec![bda_core::AggExpr::new(AggFunc::Sum, col("v"), "s")],
        };
        check(&plan);
    }

    #[test]
    fn select_project_on_cells_matches_reference() {
        let plan = scan_m()
            .select(col("v").gt(lit(5.0)))
            .project(vec![("row", col("row")), ("vv", col("v").mul(lit(2.0)))]);
        check(&plan);
    }

    #[test]
    fn dim_reduction_via_aggregate_matches_reference() {
        let plan = scan_m().aggregate(
            vec!["row"],
            vec![bda_core::AggExpr::new(AggFunc::Sum, col("v"), "rowsum")],
        );
        check(&plan);
    }

    #[test]
    fn retagging_redensifies() {
        let a = arrays();
        let plan = Plan::TagDims {
            input: Plan::UntagDims {
                input: scan_m().boxed(),
            }
            .boxed(),
            dims: vec![("row".into(), Some((0, 4))), ("col".into(), Some((0, 4)))],
        };
        let out = execute(&plan, &a).unwrap();
        assert!(matches!(out.chunks()[0], Chunk::Dense(_)));
    }

    #[test]
    fn union_distinct_limit_match_reference() {
        check(&scan_m().union(scan_m()));
        check(
            &Plan::UntagDims {
                input: scan_m().boxed(),
            }
            .project(vec![("r", col("row"))])
            .distinct(),
        );
        // Note: limit over an unordered bag is nondeterministic in
        // principle; both implementations enumerate dense cells in
        // row-major order, so compare counts only.
        let a = arrays();
        let out = execute(&scan_m().limit(5), &a).unwrap();
        assert_eq!(out.num_rows(), 5);
    }

    #[test]
    fn unsupported_ops_rejected() {
        let a = arrays();
        let err = execute(&scan_m().sort_by(vec!["row"]), &a).unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { .. }));
    }
}
