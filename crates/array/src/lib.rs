//! # `bda-array`: "ArrayStore", the array back-end Provider
//!
//! A chunked dense-array engine playing the role of SciDB in the paper's
//! multi-server examples. Its native strengths are the dimension-aware
//! operators — `Dice` (with box pruning), `SliceAt`, `Permute`, `Window`
//! stencils, `Fill` densification and cell-wise `ElemWise` — executed
//! directly on dense buffers. It also runs the scalar relational core
//! (select/project/aggregate/union/distinct/limit) so diced-and-reduced
//! results can be post-processed in place, but it has **no** join, sort,
//! matmul, graph or iteration support: those belong to other providers,
//! which is what makes multi-server planning (desideratum 4) necessary.
//!
//! Restriction: the dense operators require every dimension to carry a
//! bounded extent (the engine stores arrays as dense boxes). Plans over
//! unbounded arrays are rejected with `NotDense`, mirroring how a real
//! array store demands declared chunk shapes.

pub mod dense_ops;
pub mod exec;

use bda_core::{CapabilitySet, CoreError, OpKind, Plan, Provider};
use bda_storage::{DataSet, Schema};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// The array engine.
pub struct ArrayEngine {
    name: String,
    arrays: RwLock<BTreeMap<String, DataSet>>,
    /// Tile side length for the chunk grid; `None` stores arrays as one
    /// dense box.
    chunk_side: Option<usize>,
}

impl ArrayEngine {
    /// An empty engine named `name` (monolithic dense storage).
    pub fn new(name: impl Into<String>) -> ArrayEngine {
        ArrayEngine {
            name: name.into(),
            arrays: RwLock::new(BTreeMap::new()),
            chunk_side: None,
        }
    }

    /// An engine that stores arrays as a grid of `chunk_side`-sized tiles,
    /// enabling box pruning in `Dice` (the SciDB chunking model).
    pub fn with_chunking(name: impl Into<String>, chunk_side: usize) -> ArrayEngine {
        assert!(chunk_side > 0, "chunk side must be positive");
        ArrayEngine {
            name: name.into(),
            arrays: RwLock::new(BTreeMap::new()),
            chunk_side: Some(chunk_side),
        }
    }

    /// The capability set of every array engine instance.
    pub fn static_capabilities() -> CapabilitySet {
        CapabilitySet::from_ops(&[
            OpKind::Scan,
            OpKind::Values,
            OpKind::Range,
            OpKind::Select,
            OpKind::Project,
            OpKind::Aggregate,
            OpKind::Union,
            OpKind::Distinct,
            OpKind::Limit,
            OpKind::Rename,
            OpKind::Dice,
            OpKind::SliceAt,
            OpKind::Permute,
            OpKind::Window,
            OpKind::Fill,
            OpKind::TagDims,
            OpKind::UntagDims,
            OpKind::ElemWise,
            // Partition-parallel execution: advertising Exchange/Merge
            // tells the planner this engine runs band-split kernels.
            OpKind::Exchange,
            OpKind::Merge,
        ])
    }

    /// Look up an array (cloned snapshot).
    pub fn array(&self, name: &str) -> Option<DataSet> {
        self.arrays.read().get(name).cloned()
    }
}

impl Provider for ArrayEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> CapabilitySet {
        Self::static_capabilities()
    }

    fn catalog(&self) -> Vec<(String, Schema)> {
        self.arrays
            .read()
            .iter()
            .map(|(n, ds)| (n.clone(), ds.schema().clone()))
            .collect()
    }

    fn execute(&self, plan: &Plan) -> Result<DataSet, CoreError> {
        let unsupported = self.capabilities().unsupported_in(plan);
        if !unsupported.is_empty() {
            return Err(CoreError::Unsupported {
                provider: self.name.clone(),
                op: unsupported
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", "),
            });
        }
        let arrays = self.arrays.read();
        exec::execute(plan, &arrays)
    }

    fn store(&self, name: &str, data: DataSet) -> Result<(), CoreError> {
        // Densify on ingest when possible: the engine's native layout —
        // either one dense box or a tile grid, per configuration.
        let stored = if data.schema().ndims() > 0 && data.schema().is_bounded() {
            match self.chunk_side {
                Some(side) => data.to_dense_grid(side)?,
                None => data.to_dense()?,
            }
        } else {
            data
        };
        self.arrays.write().insert(name.to_string(), stored);
        Ok(())
    }

    fn remove(&self, name: &str) {
        self.arrays.write().remove(name);
    }

    fn row_count_of(&self, name: &str) -> Option<usize> {
        self.arrays.read().get(name).map(|ds| ds.num_rows())
    }

    fn execute_traced(
        &self,
        plan: &Plan,
        ctx: &bda_obs::TraceContext,
    ) -> Result<(DataSet, Vec<bda_obs::Span>), CoreError> {
        let tracer = bda_obs::Tracer::with_trace_id(ctx.trace_id);
        let _scope = bda_obs::scope::install(&tracer, &self.name, None);
        let out = self.execute(plan)?;
        Ok((out, tracer.take_spans()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_storage::dataset::matrix_dataset;
    use bda_storage::Chunk;

    #[test]
    fn stores_densely() {
        let e = ArrayEngine::new("arr");
        let m = matrix_dataset(2, 2, vec![1., 2., 3., 4.]).unwrap();
        let rows_form = m.normalized_rows().unwrap();
        e.store("m", rows_form).unwrap();
        let back = e.array("m").unwrap();
        assert!(matches!(back.chunks()[0], Chunk::Dense(_)));
    }

    #[test]
    fn chunked_storage_builds_a_grid() {
        let e = ArrayEngine::with_chunking("arr", 2);
        let m = matrix_dataset(5, 5, (0..25).map(|i| i as f64).collect()).unwrap();
        e.store("m", m.clone()).unwrap();
        let stored = e.array("m").unwrap();
        assert_eq!(stored.chunks().len(), 9, "ceil(5/2)^2 tiles");
        assert!(stored.same_bag(&m).unwrap());
    }

    #[test]
    fn chunked_dice_prunes_and_matches_monolithic() {
        let m = matrix_dataset(16, 16, (0..256).map(|i| i as f64).collect()).unwrap();
        let chunked = ArrayEngine::with_chunking("c", 4);
        chunked.store("m", m.clone()).unwrap();
        let mono = ArrayEngine::new("m");
        mono.store("m", m.clone()).unwrap();
        let plan = Plan::Dice {
            input: Plan::scan("m", m.schema().clone()).boxed(),
            ranges: vec![("row".into(), 0, 3), ("col".into(), 5, 7)],
        };
        let a = chunked.execute(&plan).unwrap();
        let b = mono.execute(&plan).unwrap();
        assert!(a.same_bag(&b).unwrap());
        // Observe the pruning rate directly.
        let grid = chunked.array("m").unwrap();
        let out_schema = bda_core::infer_schema(&plan).unwrap();
        let (_, visited, total) = crate::dense_ops::dice_pruned(&grid, &out_schema).unwrap();
        assert_eq!(total, 16, "4x4 tile grid");
        assert!(
            visited <= 2,
            "target box touches at most 2 tiles, visited {visited}"
        );
    }

    #[test]
    fn chunked_window_still_correct() {
        // Non-dice operators collapse the grid and stay correct.
        let m = matrix_dataset(6, 6, (0..36).map(|i| i as f64).collect()).unwrap();
        let chunked = ArrayEngine::with_chunking("c", 2);
        chunked.store("m", m.clone()).unwrap();
        let mono = ArrayEngine::new("m");
        mono.store("m", m.clone()).unwrap();
        let plan = Plan::Window {
            input: Plan::scan("m", m.schema().clone()).boxed(),
            radii: vec![("row".into(), 1), ("col".into(), 1)],
            aggs: vec![bda_core::AggExpr::new(
                bda_core::AggFunc::Sum,
                bda_core::col("v"),
                "s",
            )],
        };
        let a = chunked.execute(&plan).unwrap();
        let b = mono.execute(&plan).unwrap();
        assert!(a.same_bag(&b).unwrap());
    }

    #[test]
    fn rejects_join_and_matmul() {
        let e = ArrayEngine::new("arr");
        let m = matrix_dataset(2, 2, vec![1., 2., 3., 4.]).unwrap();
        e.store("m", m.clone()).unwrap();
        let scan = Plan::scan("m", m.schema().clone());
        assert!(matches!(
            e.execute(&scan.clone().matmul(scan.clone())),
            Err(CoreError::Unsupported { .. })
        ));
        assert!(matches!(
            e.execute(&scan.clone().join(scan, vec![("row", "row")])),
            Err(CoreError::Unsupported { .. })
        ));
    }
}
