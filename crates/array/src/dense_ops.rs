//! Native dense-array kernels: the operations this engine exists for.
//!
//! Every function takes datasets already in (or converted to) the dense
//! box layout and works directly on linear buffers — no coordinate rows,
//! no hash tables. Semantics match the reference evaluator exactly; the
//! unit tests below assert that on every kernel.

use bda_core::agg::{Accumulator, AggExpr};
use bda_core::eval::{binary_scalar, eval_chunk, infer_expr};
use bda_core::{BinOp, CoreError};
use bda_storage::{Bitmap, Chunk, Column, DataSet, DenseChunk, DimBox, Schema, Value};

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Extract the single dense chunk of a densified dataset.
fn dense_of(ds: &DataSet) -> Result<(DenseChunk, Schema)> {
    let dense = ds.to_dense()?;
    let schema = dense.schema().clone();
    match dense.chunks() {
        [Chunk::Dense(d)] => Ok((d.clone(), schema)),
        _ => Err(CoreError::Plan("expected a single dense chunk".into())),
    }
}

/// Dice: restrict to coordinate ranges. Pure box arithmetic — cells are
/// copied from the intersected sub-box, absent chunks pruned for free.
pub fn dice_dense(
    input: &DataSet,
    ranges: &[(String, i64, i64)],
    out_schema: Schema,
) -> Result<DataSet> {
    let (chunk, in_schema) = dense_of(input)?;
    let in_bounds = chunk.bounds().clone();
    // Target box: the output schema's extents.
    let mut lo = Vec::new();
    let mut hi = Vec::new();
    for f in out_schema.dimensions() {
        let (l, h) = f.extent().ok_or_else(|| {
            CoreError::Plan(format!("dice output dimension `{}` unbounded", f.name))
        })?;
        lo.push(l);
        hi.push(h);
    }
    let _ = ranges; // ranges are already folded into out_schema by infer
    let target = DimBox::new(lo, hi)?;
    let sub = in_bounds
        .intersect(&target)
        .ok_or_else(|| CoreError::Plan("dice result is empty".into()))?;

    let vol = sub.volume();
    let mut cols: Vec<Column> = in_schema
        .values()
        .iter()
        .map(|f| Column::nulls(f.dtype, vol))
        .collect();
    let mut present = Bitmap::filled(vol, false);
    for (out_idx, coords) in sub.iter_coords().enumerate() {
        let in_idx = in_bounds.linearize(&coords);
        if !chunk.is_present(in_idx) {
            continue;
        }
        present.set(out_idx, true);
        for (c, col) in cols.iter_mut().enumerate() {
            set_dense_slot(col, out_idx, &chunk.columns()[c].get(in_idx))?;
        }
    }
    let present = if present.all_set() {
        None
    } else {
        Some(present)
    };
    let out_chunk = DenseChunk::new(sub, cols, present)?;
    Ok(DataSet::new(out_schema, vec![Chunk::Dense(out_chunk)]))
}

/// Dice over a chunked (grid) dataset with **box pruning**: tiles whose
/// boxes miss the target range are skipped without touching their cells.
/// Returns `(result, tiles_visited, tiles_total)` so callers and tests can
/// observe the pruning rate.
pub fn dice_pruned(input: &DataSet, out_schema: &Schema) -> Result<(DataSet, usize, usize)> {
    // Target box from the output schema's (already tightened) extents.
    let mut lo = Vec::new();
    let mut hi = Vec::new();
    for f in out_schema.dimensions() {
        let (l, h) = f.extent().ok_or_else(|| {
            CoreError::Plan(format!("dice output dimension `{}` unbounded", f.name))
        })?;
        lo.push(l);
        hi.push(h);
    }
    let target = DimBox::new(lo, hi)?;
    let in_schema = input.schema().clone();
    let nvals = in_schema.values().len();
    let mut out_chunks = Vec::new();
    let mut visited = 0usize;
    let mut total = 0usize;
    for chunk in input.chunks() {
        let Chunk::Dense(d) = chunk else {
            return Err(CoreError::Plan(
                "dice_pruned requires dense (grid) chunks".into(),
            ));
        };
        total += 1;
        let Some(sub) = d.bounds().intersect(&target) else {
            continue; // pruned: the tile cannot contribute
        };
        visited += 1;
        let vol = sub.volume();
        let mut cols: Vec<Column> = in_schema
            .values()
            .iter()
            .map(|f| Column::nulls(f.dtype, vol))
            .collect();
        let mut present = Bitmap::filled(vol, false);
        for (out_idx, coords) in sub.iter_coords().enumerate() {
            let in_idx = d.bounds().linearize(&coords);
            if !d.is_present(in_idx) {
                continue;
            }
            present.set(out_idx, true);
            for (col, src) in cols.iter_mut().zip(d.columns()).take(nvals) {
                set_dense_slot(col, out_idx, &src.get(in_idx))?;
            }
        }
        if present.count_ones() == 0 {
            continue; // intersected but empty tile
        }
        let present = if present.all_set() {
            None
        } else {
            Some(present)
        };
        out_chunks.push(Chunk::Dense(DenseChunk::new(sub, cols, present)?));
    }
    Ok((DataSet::new(out_schema.clone(), out_chunks), visited, total))
}

/// Slice: fix one dimension, dropping it.
pub fn slice_dense(input: &DataSet, dim: &str, index: i64, out_schema: Schema) -> Result<DataSet> {
    let (chunk, in_schema) = dense_of(input)?;
    let bounds = chunk.bounds().clone();
    let dim_pos = in_schema
        .dimensions()
        .iter()
        .position(|f| f.name == dim)
        .ok_or_else(|| CoreError::Plan(format!("slice unknown dimension `{dim}`")))?;
    if bounds.ndims() == 1 {
        // Slicing the last dimension yields a relation of at most one row.
        let mut out = bda_storage::RowsChunk::empty(&out_schema);
        if index >= bounds.lo[0] && index < bounds.hi[0] {
            if let Some(cell) = chunk.cell(&[index]) {
                out.push_row(&cell).map_err(CoreError::from)?;
            }
        }
        return Ok(DataSet::new(out_schema, vec![Chunk::Rows(out)]));
    }
    if index < bounds.lo[dim_pos] || index >= bounds.hi[dim_pos] {
        // Outside the array: empty result over the remaining box.
        let (sub, _) = drop_axis(&bounds, dim_pos);
        let cols = in_schema
            .values()
            .iter()
            .map(|f| Column::nulls(f.dtype, sub.volume()))
            .collect();
        let out_chunk =
            DenseChunk::new(sub.clone(), cols, Some(Bitmap::filled(sub.volume(), false)))?;
        return Ok(DataSet::new(out_schema, vec![Chunk::Dense(out_chunk)]));
    }
    let (sub, _) = drop_axis(&bounds, dim_pos);
    let vol = sub.volume();
    let mut cols: Vec<Column> = in_schema
        .values()
        .iter()
        .map(|f| Column::nulls(f.dtype, vol))
        .collect();
    let mut present = Bitmap::filled(vol, false);
    for (out_idx, sub_coords) in sub.iter_coords().enumerate() {
        let mut coords = sub_coords.clone();
        coords.insert(dim_pos, index);
        let in_idx = bounds.linearize(&coords);
        if !chunk.is_present(in_idx) {
            continue;
        }
        present.set(out_idx, true);
        for (c, col) in cols.iter_mut().enumerate() {
            set_dense_slot(col, out_idx, &chunk.columns()[c].get(in_idx))?;
        }
    }
    let present = if present.all_set() {
        None
    } else {
        Some(present)
    };
    let out_chunk = DenseChunk::new(sub, cols, present)?;
    Ok(DataSet::new(out_schema, vec![Chunk::Dense(out_chunk)]))
}

fn drop_axis(b: &DimBox, axis: usize) -> (DimBox, usize) {
    let mut lo = b.lo.clone();
    let mut hi = b.hi.clone();
    lo.remove(axis);
    hi.remove(axis);
    (DimBox::new(lo, hi).expect("non-empty sub-box"), axis)
}

/// Permute: reorder the axes.
pub fn permute_dense(input: &DataSet, order: &[String], out_schema: Schema) -> Result<DataSet> {
    let (chunk, in_schema) = dense_of(input)?;
    let bounds = chunk.bounds().clone();
    let dim_names: Vec<&str> = in_schema
        .dimensions()
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    let perm: Vec<usize> = order
        .iter()
        .map(|d| {
            dim_names
                .iter()
                .position(|n| n == d)
                .ok_or_else(|| CoreError::Plan(format!("permute unknown dimension `{d}`")))
        })
        .collect::<Result<_>>()?;
    let new_bounds = DimBox::new(
        perm.iter().map(|&p| bounds.lo[p]).collect(),
        perm.iter().map(|&p| bounds.hi[p]).collect(),
    )?;
    let vol = new_bounds.volume();
    let mut cols: Vec<Column> = in_schema
        .values()
        .iter()
        .map(|f| Column::nulls(f.dtype, vol))
        .collect();
    let mut present = Bitmap::filled(vol, false);
    let mut old_coords = vec![0i64; perm.len()];
    for (out_idx, new_coords) in new_bounds.iter_coords().enumerate() {
        for (axis, &p) in perm.iter().enumerate() {
            old_coords[p] = new_coords[axis];
        }
        let in_idx = bounds.linearize(&old_coords);
        if !chunk.is_present(in_idx) {
            continue;
        }
        present.set(out_idx, true);
        for (c, col) in cols.iter_mut().enumerate() {
            set_dense_slot(col, out_idx, &chunk.columns()[c].get(in_idx))?;
        }
    }
    let present = if present.all_set() {
        None
    } else {
        Some(present)
    };
    let out_chunk = DenseChunk::new(new_bounds, cols, present)?;
    Ok(DataSet::new(out_schema, vec![Chunk::Dense(out_chunk)]))
}

/// Fill: make every cell present, writing `fill` into absent cells.
pub fn fill_dense(input: &DataSet, fill: &Value, out_schema: Schema) -> Result<DataSet> {
    let (chunk, in_schema) = dense_of(input)?;
    let bounds = chunk.bounds().clone();
    let vol = bounds.volume();
    let mut cols = chunk.columns().to_vec();
    for (c, f) in in_schema.values().iter().enumerate() {
        let fill_v = fill.cast(f.dtype);
        for idx in 0..vol {
            if !chunk.is_present(idx) {
                set_dense_slot(&mut cols[c], idx, &fill_v)?;
            }
        }
    }
    let out_chunk = DenseChunk::new(bounds, cols, None)?;
    Ok(DataSet::new(out_schema, vec![Chunk::Dense(out_chunk)]))
}

/// Cell-wise binary operation between two aligned arrays.
pub fn elemwise_dense(
    op: BinOp,
    left: &DataSet,
    right: &DataSet,
    out_schema: Schema,
) -> Result<DataSet> {
    let (l, _) = dense_of(left)?;
    let (r, _) = dense_of(right)?;
    if l.bounds() != r.bounds() {
        return Err(CoreError::Plan(format!(
            "elemwise bounds mismatch: {:?} vs {:?}",
            l.bounds(),
            r.bounds()
        )));
    }
    let vol = l.bounds().volume();
    let out_t = out_schema.values()[0].dtype;

    // Fast path: f64 ⊕ f64, fully present, no nulls, arithmetic op.
    let fully_present = l.present().is_none() && r.present().is_none();
    if fully_present && op.is_arithmetic() && op != BinOp::Mod {
        if let (Ok(a), Ok(b)) = (l.columns()[0].f64_data(), r.columns()[0].f64_data()) {
            if l.columns()[0].validity().is_none() && r.columns()[0].validity().is_none() {
                let data: Vec<f64> = a
                    .iter()
                    .zip(b)
                    .map(|(x, y)| match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => x / y,
                        _ => unreachable!(),
                    })
                    .collect();
                let out_chunk =
                    DenseChunk::new(l.bounds().clone(), vec![Column::from(data)], None)?;
                return Ok(DataSet::new(out_schema, vec![Chunk::Dense(out_chunk)]));
            }
        }
    }

    // General path: per-cell scalar semantics; output present where both
    // sides are present (inner-join semantics, matching the reference).
    let mut col = Column::nulls(out_t, vol);
    let mut present = Bitmap::filled(vol, false);
    for idx in 0..vol {
        if !l.is_present(idx) || !r.is_present(idx) {
            continue;
        }
        present.set(idx, true);
        let v = binary_scalar(op, &l.columns()[0].get(idx), &r.columns()[0].get(idx))?;
        let v = match (&v, out_t) {
            (Value::Int(x), bda_storage::DataType::Float64) => Value::Float(*x as f64),
            _ => v,
        };
        set_dense_slot(&mut col, idx, &v)?;
    }
    let present = if present.all_set() {
        None
    } else {
        Some(present)
    };
    let out_chunk = DenseChunk::new(l.bounds().clone(), vec![col], present)?;
    Ok(DataSet::new(out_schema, vec![Chunk::Dense(out_chunk)]))
}

/// Partition-parallel element-wise combination: band-split the flat
/// cell index space into `parts` contiguous ranges, compute each band on
/// the worker pool (recording a `partition:{i}` span each), and
/// reassemble in band order. The output is bitwise identical to
/// [`elemwise_dense`] because every cell runs the same scalar code; only
/// the fully-dense f64 fast path is banded — anything else falls back to
/// the sequential kernel.
pub fn elemwise_dense_partitioned(
    op: BinOp,
    left: &DataSet,
    right: &DataSet,
    parts: usize,
    out_schema: Schema,
) -> Result<DataSet> {
    let (l, _) = dense_of(left)?;
    let (r, _) = dense_of(right)?;
    if l.bounds() != r.bounds() {
        return Err(CoreError::Plan(format!(
            "elemwise bounds mismatch: {:?} vs {:?}",
            l.bounds(),
            r.bounds()
        )));
    }
    let fully_present = l.present().is_none() && r.present().is_none();
    let fast = fully_present
        && op.is_arithmetic()
        && op != BinOp::Mod
        && l.columns()[0].f64_data().is_ok()
        && r.columns()[0].f64_data().is_ok()
        && l.columns()[0].validity().is_none()
        && r.columns()[0].validity().is_none();
    if !fast || parts <= 1 {
        return elemwise_dense(op, left, right, out_schema);
    }

    let a = l.columns()[0].f64_data().expect("checked above");
    let b = r.columns()[0].f64_data().expect("checked above");
    let vol = l.bounds().volume();
    let parts = parts.clamp(1, vol.max(1));
    let base = vol / parts;
    let extra = vol % parts;
    let mut bands = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        bands.push((start, start + len));
        start += len;
    }

    let snap = bda_obs::scope::snapshot();
    let tasks: Vec<Box<dyn FnOnce() -> Vec<f64> + Send + '_>> = bands
        .into_iter()
        .enumerate()
        .map(|(i, (s, e))| {
            let snap = snap.clone();
            Box::new(move || {
                let mut guard = snap.as_ref().map(|sc| {
                    sc.tracer
                        .start(sc.parent, || format!("partition:{i}"), &sc.site)
                });
                let band: Vec<f64> = a[s..e]
                    .iter()
                    .zip(&b[s..e])
                    .map(|(x, y)| match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => x / y,
                        _ => unreachable!("gated on arithmetic non-mod op"),
                    })
                    .collect();
                if let Some(g) = guard.as_mut() {
                    g.set_rows(band.len());
                }
                band
            }) as Box<dyn FnOnce() -> Vec<f64> + Send + '_>
        })
        .collect();
    let mut data = Vec::with_capacity(vol);
    for band in bda_core::pool::run_with(bda_core::pool::workers(), tasks) {
        data.extend(band);
    }
    let out_chunk = DenseChunk::new(l.bounds().clone(), vec![Column::from(data)], None)?;
    Ok(DataSet::new(out_schema, vec![Chunk::Dense(out_chunk)]))
}

/// Moving-window (stencil) aggregation over the dense box.
pub fn window_dense(
    input: &DataSet,
    radii: &[(String, i64)],
    aggs: &[AggExpr],
    out_schema: Schema,
) -> Result<DataSet> {
    let (chunk, in_schema) = dense_of(input)?;
    let bounds = chunk.bounds().clone();
    let vol = bounds.volume();
    let ndims = bounds.ndims();
    let radius: Vec<i64> = in_schema
        .dimensions()
        .iter()
        .map(|f| {
            radii
                .iter()
                .find(|(d, _)| *d == f.name)
                .map(|(_, r)| *r)
                .ok_or_else(|| CoreError::Plan(format!("window missing dim `{}`", f.name)))
        })
        .collect::<Result<_>>()?;

    // Evaluate aggregate arguments once over all present cells, aligned
    // with the rows view (which enumerates present cells in linear order).
    let rows = chunk.to_rows(&in_schema)?;
    let mut arg_cols: Vec<Option<Column>> = Vec::with_capacity(aggs.len());
    let mut arg_types = Vec::with_capacity(aggs.len());
    for a in aggs {
        match &a.arg {
            Some(e) => {
                arg_types.push(infer_expr(e, &in_schema)?);
                arg_cols.push(Some(eval_chunk(e, &in_schema, &rows)?));
            }
            None => {
                arg_types.push(None);
                arg_cols.push(None);
            }
        }
    }
    // Map linear cell index -> row position among present cells.
    let mut row_of: Vec<u32> = vec![u32::MAX; vol];
    let mut row = 0u32;
    for (idx, slot) in row_of.iter_mut().enumerate() {
        if chunk.is_present(idx) {
            *slot = row;
            row += 1;
        }
    }

    let dim_count = out_schema.ndims();
    let mut out_cols: Vec<Column> = out_schema
        .fields()
        .iter()
        .map(|f| Column::new_empty(f.dtype))
        .collect();
    let mut neighbor = vec![0i64; ndims];
    for idx in 0..vol {
        if !chunk.is_present(idx) {
            continue;
        }
        let coords = bounds.delinearize(idx);
        let mut accs: Vec<Accumulator> = aggs
            .iter()
            .zip(&arg_types)
            .map(|(a, t)| Accumulator::new(a.func, *t))
            .collect();
        // Iterate the window box clipped to the array bounds.
        let lo: Vec<i64> = (0..ndims)
            .map(|d| (coords[d] - radius[d]).max(bounds.lo[d]))
            .collect();
        let hi: Vec<i64> = (0..ndims)
            .map(|d| (coords[d] + radius[d] + 1).min(bounds.hi[d]))
            .collect();
        neighbor.copy_from_slice(&lo);
        'outer: loop {
            let n_idx = bounds.linearize(&neighbor);
            if chunk.is_present(n_idx) {
                let r = row_of[n_idx] as usize;
                for (acc, arg) in accs.iter_mut().zip(&arg_cols) {
                    let v = match arg {
                        Some(c) => c.get(r),
                        None => Value::Bool(true),
                    };
                    acc.update(&v)?;
                }
            }
            // Odometer increment over the clipped window box.
            let mut d = ndims;
            loop {
                if d == 0 {
                    break 'outer;
                }
                d -= 1;
                neighbor[d] += 1;
                if neighbor[d] < hi[d] {
                    break;
                }
                neighbor[d] = lo[d];
            }
        }
        for (c, coord) in coords.iter().enumerate() {
            out_cols[c]
                .push(&Value::Int(*coord))
                .map_err(CoreError::from)?;
        }
        for (a, acc) in accs.iter().enumerate() {
            let ci = dim_count + a;
            let v = acc.finish();
            let v = match (&v, out_schema.field_at(ci).dtype) {
                (Value::Int(x), bda_storage::DataType::Float64) => Value::Float(*x as f64),
                _ => v,
            };
            out_cols[ci].push(&v).map_err(CoreError::from)?;
        }
    }
    let out_chunk = bda_storage::RowsChunk::new(out_cols).map_err(CoreError::from)?;
    Ok(DataSet::new(out_schema, vec![Chunk::Rows(out_chunk)]))
}

/// Overwrite one slot of a pre-sized dense column.
fn set_dense_slot(col: &mut Column, idx: usize, v: &Value) -> Result<()> {
    match (col, v) {
        (Column::Int64(d, bm), Value::Int(x)) => {
            d[idx] = *x;
            if let Some(bm) = bm {
                bm.set(idx, true);
            }
        }
        (Column::Float64(d, bm), Value::Float(x)) => {
            d[idx] = *x;
            if let Some(bm) = bm {
                bm.set(idx, true);
            }
        }
        (Column::Bool(d, bm), Value::Bool(x)) => {
            d[idx] = *x;
            if let Some(bm) = bm {
                bm.set(idx, true);
            }
        }
        (Column::Utf8(d, bm), Value::Str(x)) => {
            d[idx] = x.clone();
            if let Some(bm) = bm {
                bm.set(idx, true);
            }
        }
        (col, Value::Null) => match col.validity() {
            Some(_) => {
                if let Column::Int64(_, Some(bm))
                | Column::Float64(_, Some(bm))
                | Column::Bool(_, Some(bm))
                | Column::Utf8(_, Some(bm)) = col
                {
                    bm.set(idx, false);
                }
            }
            None => {
                return Err(CoreError::Plan(
                    "cannot write null into non-nullable dense column".into(),
                ))
            }
        },
        (col, v) => {
            return Err(CoreError::Plan(format!(
                "dense slot type mismatch: column {} vs value {v}",
                col.dtype()
            )))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::infer_schema;
    use bda_core::reference::evaluate;
    use bda_core::{col, AggFunc, Plan};
    use bda_storage::dataset::matrix_dataset;
    use bda_storage::{Field, Row};
    use std::collections::HashMap;

    fn src(name: &str, ds: &DataSet) -> HashMap<String, DataSet> {
        let mut m = HashMap::new();
        m.insert(name.to_string(), ds.clone());
        m
    }

    fn m44() -> DataSet {
        matrix_dataset(4, 4, (0..16).map(|i| i as f64).collect()).unwrap()
    }

    #[test]
    fn dice_matches_reference_and_stays_dense() {
        let m = m44();
        let plan = Plan::Dice {
            input: Plan::scan("m", m.schema().clone()).boxed(),
            ranges: vec![("row".into(), 1, 3), ("col".into(), 2, 4)],
        };
        let schema = infer_schema(&plan).unwrap();
        let ours = dice_dense(&m, &[("row".into(), 1, 3), ("col".into(), 2, 4)], schema).unwrap();
        let oracle = evaluate(&plan, &src("m", &m)).unwrap();
        assert!(ours.same_bag(&oracle).unwrap());
        assert!(matches!(ours.chunks()[0], Chunk::Dense(_)));
    }

    #[test]
    fn slice_matches_reference() {
        let m = m44();
        let plan = Plan::SliceAt {
            input: Plan::scan("m", m.schema().clone()).boxed(),
            dim: "row".into(),
            index: 2,
        };
        let schema = infer_schema(&plan).unwrap();
        let ours = slice_dense(&m, "row", 2, schema).unwrap();
        let oracle = evaluate(&plan, &src("m", &m)).unwrap();
        assert!(ours.same_bag(&oracle).unwrap());
    }

    #[test]
    fn permute_matches_reference() {
        let m = matrix_dataset(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let plan = Plan::Permute {
            input: Plan::scan("m", m.schema().clone()).boxed(),
            order: vec!["col".into(), "row".into()],
        };
        let schema = infer_schema(&plan).unwrap();
        let ours = permute_dense(&m, &["col".into(), "row".into()], schema).unwrap();
        let oracle = evaluate(&plan, &src("m", &m)).unwrap();
        assert!(ours.same_bag(&oracle).unwrap());
        // Transposed dense layout: first axis is now col with extent 3.
        if let Chunk::Dense(d) = &ours.chunks()[0] {
            assert_eq!(d.bounds().extent(0), 3);
            assert_eq!(d.bounds().extent(1), 2);
        } else {
            panic!("expected dense output");
        }
    }

    fn sparse_1d() -> DataSet {
        let schema = Schema::new(vec![
            Field::dimension_bounded("i", 0, 6),
            Field::value("v", bda_storage::DataType::Float64),
        ])
        .unwrap();
        DataSet::from_rows(
            schema,
            &[
                Row(vec![Value::Int(0), Value::Float(1.0)]),
                Row(vec![Value::Int(2), Value::Float(10.0)]),
                Row(vec![Value::Int(3), Value::Null]),
                Row(vec![Value::Int(5), Value::Float(100.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn fill_matches_reference() {
        let ds = sparse_1d();
        let plan = Plan::Fill {
            input: Plan::scan("x", ds.schema().clone()).boxed(),
            fill: Value::Float(-1.0),
        };
        let schema = infer_schema(&plan).unwrap();
        let ours = fill_dense(&ds, &Value::Float(-1.0), schema).unwrap();
        let oracle = evaluate(&plan, &src("x", &ds)).unwrap();
        assert!(ours.same_bag(&oracle).unwrap());
        assert_eq!(ours.num_rows(), 6);
    }

    #[test]
    fn elemwise_matches_reference_dense_and_sparse() {
        let m = m44();
        for op in [BinOp::Add, BinOp::Mul, BinOp::Div, BinOp::Ge] {
            let plan = Plan::scan("m", m.schema().clone())
                .elemwise(op, Plan::scan("m", m.schema().clone()));
            let schema = infer_schema(&plan).unwrap();
            let ours = elemwise_dense(op, &m, &m, schema).unwrap();
            let oracle = evaluate(&plan, &src("m", &m)).unwrap();
            assert!(ours.same_bag(&oracle).unwrap(), "op {op:?}");
        }
        // Sparse with nulls: inner-join presence semantics.
        let s = sparse_1d();
        let plan = Plan::scan("x", s.schema().clone())
            .elemwise(BinOp::Add, Plan::scan("x", s.schema().clone()));
        let schema = infer_schema(&plan).unwrap();
        let ours = elemwise_dense(BinOp::Add, &s, &s, schema).unwrap();
        let oracle = evaluate(&plan, &src("x", &s)).unwrap();
        assert!(ours.same_bag(&oracle).unwrap());
    }

    #[test]
    fn window_matches_reference() {
        let m = m44();
        let plan = Plan::Window {
            input: Plan::scan("m", m.schema().clone()).boxed(),
            radii: vec![("row".into(), 1), ("col".into(), 1)],
            aggs: vec![
                bda_core::AggExpr::new(AggFunc::Avg, col("v"), "mean"),
                bda_core::AggExpr::count_star("n"),
            ],
        };
        let schema = infer_schema(&plan).unwrap();
        let ours = window_dense(
            &m,
            &[("row".into(), 1), ("col".into(), 1)],
            &[
                bda_core::AggExpr::new(AggFunc::Avg, col("v"), "mean"),
                bda_core::AggExpr::count_star("n"),
            ],
            schema,
        )
        .unwrap();
        let oracle = evaluate(&plan, &src("m", &m)).unwrap();
        assert!(ours.same_bag(&oracle).unwrap());
    }

    #[test]
    fn window_on_sparse_input_matches_reference() {
        let s = sparse_1d();
        let aggs = vec![bda_core::AggExpr::new(AggFunc::Sum, col("v"), "s")];
        let plan = Plan::Window {
            input: Plan::scan("x", s.schema().clone()).boxed(),
            radii: vec![("i".into(), 2)],
            aggs: aggs.clone(),
        };
        let schema = infer_schema(&plan).unwrap();
        let ours = window_dense(&s, &[("i".into(), 2)], &aggs, schema).unwrap();
        let oracle = evaluate(&plan, &src("x", &s)).unwrap();
        assert!(ours.same_bag(&oracle).unwrap());
    }

    #[test]
    fn slice_outside_bounds_is_empty() {
        let m = m44();
        let plan = Plan::SliceAt {
            input: Plan::scan("m", m.schema().clone()).boxed(),
            dim: "row".into(),
            index: 99,
        };
        let schema = infer_schema(&plan).unwrap();
        let ours = slice_dense(&m, "row", 99, schema).unwrap();
        assert_eq!(ours.num_rows(), 0);
    }
}
