//! Full-catalog snapshots: the compaction target of the WAL.
//!
//! A snapshot is one file holding every durable dataset a provider
//! serves, together with the WAL sequence number it covers. Once a
//! snapshot is on disk (written to a temp name, fsynced, renamed into
//! place, directory fsynced), every WAL segment at or below its
//! sequence number is garbage and gets deleted; recovery becomes
//! "load newest snapshot, replay the WAL tail over it".
//!
//! ## On-disk format
//!
//! ```text
//! [ 8 bytes magic "BDASNAP1" ][ u64 LE covered_seq ][ u32 LE count ]
//! count × entries:
//!   [ u32 LE name_len ][ name ][ u32 LE data_len ][ BDA1 dataset bytes ]
//!   [ u32 LE crc32(name ‖ dataset bytes) ]
//! ```
//!
//! Dataset bytes reuse the columnar `BDA1` wire codec. Each entry
//! carries its own checksum; the entry count up front makes any
//! truncation detectable. A snapshot that fails validation is **never**
//! silently skipped: the newest snapshot is the only one recovery will
//! accept, because falling back to an older one would resurrect deleted
//! data and roll back acknowledged writes without telling anyone.
//!
//! After the entries an optional **index trailer** records the secondary
//! index specs in force at snapshot time (`[u32 LE count]` then per spec
//! `[u32 LE name_len][name][u8 kind][u32 LE column_len][column]`).
//! Recovery rebuilds the indexes from the recovered datasets — the
//! trailer carries specs, not index bytes, because an index is a
//! deterministic function of its dataset. Snapshots written before the
//! trailer existed simply end after the last entry and load with no
//! specs.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use bda_core::CoreError;
use bda_storage::wire::{decode_dataset, encode_dataset, Reader};
use bda_storage::{DataSet, IndexKind, IndexSpec};

use crate::crc::Hasher;
use crate::faults::DiskFaults;
use crate::Result;

const SNAP_MAGIC: &[u8; 8] = b"BDASNAP1";

fn dur_err(what: impl std::fmt::Display, e: std::io::Error) -> CoreError {
    CoreError::Durability(format!("{what}: {e}"))
}

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq:020}.snap"))
}

/// A loaded snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// Highest WAL sequence number whose effects are included.
    pub covered_seq: u64,
    /// The full durable catalog at that point.
    pub datasets: Vec<(String, DataSet)>,
    /// Secondary-index specs in force at snapshot time, `(dataset,
    /// spec)`. Empty for snapshots written before the trailer existed.
    pub indexes: Vec<(String, IndexSpec)>,
}

/// Write the catalog as the snapshot covering `covered_seq`, atomically,
/// with the current secondary-index specs in the trailer. Returns the
/// number of bytes written.
pub fn write_snapshot(
    dir: &Path,
    covered_seq: u64,
    datasets: &[(String, DataSet)],
    indexes: &[(String, IndexSpec)],
    faults: &DiskFaults,
) -> Result<u64> {
    fs::create_dir_all(dir).map_err(|e| dur_err(format!("create {}", dir.display()), e))?;
    let mut buf = Vec::new();
    buf.extend_from_slice(SNAP_MAGIC);
    buf.extend_from_slice(&covered_seq.to_le_bytes());
    buf.extend_from_slice(&(datasets.len() as u32).to_le_bytes());
    for (name, data) in datasets {
        let bytes = encode_dataset(data);
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        buf.extend_from_slice(&bytes);
        let mut h = Hasher::new();
        h.update(name.as_bytes());
        h.update(&bytes);
        buf.extend_from_slice(&h.finish().to_le_bytes());
    }
    buf.extend_from_slice(&(indexes.len() as u32).to_le_bytes());
    for (name, spec) in indexes {
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.push(spec.kind.as_u8());
        buf.extend_from_slice(&(spec.column.len() as u32).to_le_bytes());
        buf.extend_from_slice(spec.column.as_bytes());
    }
    let tmp = dir.join(format!("snap-{covered_seq:020}.tmp"));
    let final_path = snapshot_path(dir, covered_seq);
    let mut file =
        File::create(&tmp).map_err(|e| dur_err(format!("create {}", tmp.display()), e))?;
    file.write_all(&buf)
        .and_then(|_| file.sync_all())
        .map_err(|e| dur_err(format!("write {}", tmp.display()), e))?;
    drop(file);
    fs::rename(&tmp, &final_path).map_err(|e| {
        dur_err(
            format!("rename {} -> {}", tmp.display(), final_path.display()),
            e,
        )
    })?;
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| dur_err(format!("fsync dir {}", dir.display()), e))?;
    if faults.truncate_snapshot {
        // Injected misbehaving disk: the file loses its tail after the
        // rename. Recovery must refuse it loudly.
        let f = OpenOptions::new()
            .write(true)
            .open(&final_path)
            .map_err(|e| dur_err(format!("open {}", final_path.display()), e))?;
        f.set_len(buf.len() as u64 / 2)
            .map_err(|e| dur_err(format!("truncate {}", final_path.display()), e))?;
    }
    Ok(buf.len() as u64)
}

/// List `(covered_seq, path)` of snapshots in `dir`, ascending.
fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    let entries = fs::read_dir(dir).map_err(|e| dur_err(format!("read {}", dir.display()), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| dur_err("read snapshot dir entry", e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("snap-")
            .and_then(|s| s.strip_suffix(".snap"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Load the newest snapshot in `dir`, validating every checksum.
/// `Ok(None)` when no snapshot exists; a corrupt newest snapshot is a
/// loud error, never a silent fallback to an older file.
pub fn load_latest(dir: &Path) -> Result<Option<Snapshot>> {
    let Some((seq, path)) = list_snapshots(dir)?.pop() else {
        return Ok(None);
    };
    let mut bytes = Vec::new();
    File::open(&path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| dur_err(format!("read {}", path.display()), e))?;
    parse_snapshot(&bytes, seq).map(Some).map_err(|msg| {
        CoreError::Durability(format!(
            "snapshot {} is corrupt ({msg}); refusing to start from damaged state — \
             restore the file or move it aside to rebuild from a replica",
            path.display()
        ))
    })
}

fn parse_snapshot(bytes: &[u8], expect_seq: u64) -> std::result::Result<Snapshot, String> {
    if bytes.len() < 20 {
        return Err(format!(
            "only {} bytes, shorter than the header",
            bytes.len()
        ));
    }
    if &bytes[..8] != SNAP_MAGIC {
        return Err("bad magic".into());
    }
    let covered_seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if covered_seq != expect_seq {
        return Err(format!(
            "file named for seq {expect_seq} claims seq {covered_seq}"
        ));
    }
    let count = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    let mut r = Reader::new(&bytes[20..]);
    let mut datasets = Vec::with_capacity(count);
    for i in 0..count {
        let entry = (|| -> std::result::Result<(String, DataSet), String> {
            let name = r.string("snapshot entry name").map_err(|e| e.to_string())?;
            let n = r.u32("snapshot entry length").map_err(|e| e.to_string())? as usize;
            let raw = r
                .bytes(n, "snapshot entry bytes")
                .map_err(|e| e.to_string())?
                .to_vec();
            let stored_crc = r.u32("snapshot entry crc").map_err(|e| e.to_string())?;
            let mut h = Hasher::new();
            h.update(name.as_bytes());
            h.update(&raw);
            if h.finish() != stored_crc {
                return Err(format!("checksum mismatch on dataset {name:?}"));
            }
            let data = decode_dataset(&raw).map_err(|e| e.to_string())?;
            Ok((name, data))
        })()
        .map_err(|e| format!("entry {i} of {count}: {e}"))?;
        datasets.push(entry);
    }
    // Optional index trailer; pre-trailer snapshots end right here.
    let mut indexes = Vec::new();
    if r.remaining() != 0 {
        let n = r.u32("snapshot index count").map_err(|e| e.to_string())? as usize;
        for i in 0..n {
            let entry = (|| -> std::result::Result<(String, IndexSpec), String> {
                let name = r.string("snapshot index dataset").map_err(|e| e.to_string())?;
                let kind_byte = r.u8("snapshot index kind").map_err(|e| e.to_string())?;
                let kind = IndexKind::from_u8(kind_byte)
                    .ok_or_else(|| format!("bad index kind {kind_byte}"))?;
                let column = r.string("snapshot index column").map_err(|e| e.to_string())?;
                Ok((name, IndexSpec { column, kind }))
            })()
            .map_err(|e| format!("index spec {i} of {n}: {e}"))?;
            indexes.push(entry);
        }
    }
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after last entry", r.remaining()));
    }
    Ok(Snapshot {
        covered_seq,
        datasets,
        indexes,
    })
}

/// Delete all but the newest `keep` snapshots. Returns how many were
/// removed.
pub fn prune(dir: &Path, keep: usize) -> Result<usize> {
    let snaps = list_snapshots(dir)?;
    let mut removed = 0;
    if snaps.len() > keep {
        for (_, path) in &snaps[..snaps.len() - keep] {
            fs::remove_file(path).map_err(|e| dur_err(format!("remove {}", path.display()), e))?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_storage::Column;

    fn tmp() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bda-snap-test-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ds(k: i64) -> DataSet {
        DataSet::from_columns(vec![("k", Column::from(vec![k, k * 2]))]).unwrap()
    }

    #[test]
    fn write_load_roundtrip_and_prune() {
        let dir = tmp();
        assert!(load_latest(&dir).unwrap().is_none());
        let cat1 = vec![("a".to_string(), ds(1))];
        write_snapshot(&dir, 3, &cat1, &[], &DiskFaults::default()).unwrap();
        let cat2 = vec![("a".to_string(), ds(1)), ("b".to_string(), ds(9))];
        write_snapshot(&dir, 7, &cat2, &[], &DiskFaults::default()).unwrap();
        let snap = load_latest(&dir).unwrap().unwrap();
        assert_eq!(snap.covered_seq, 7);
        assert_eq!(snap.datasets.len(), 2);
        assert!(snap.datasets[1].1.same_bag(&ds(9)).unwrap());
        assert_eq!(prune(&dir, 1).unwrap(), 1);
        assert_eq!(list_snapshots(&dir).unwrap().len(), 1);
        assert_eq!(load_latest(&dir).unwrap().unwrap().covered_seq, 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_catalog_snapshot_roundtrips() {
        let dir = tmp();
        write_snapshot(&dir, 1, &[], &[], &DiskFaults::default()).unwrap();
        let snap = load_latest(&dir).unwrap().unwrap();
        assert_eq!(snap.covered_seq, 1);
        assert!(snap.datasets.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_specs_roundtrip_through_the_trailer() {
        let dir = tmp();
        let specs = vec![
            (
                "a".to_string(),
                IndexSpec {
                    column: "k".into(),
                    kind: IndexKind::Hash,
                },
            ),
            (
                "a".to_string(),
                IndexSpec {
                    column: "v".into(),
                    kind: IndexKind::Sorted,
                },
            ),
        ];
        write_snapshot(
            &dir,
            4,
            &[("a".to_string(), ds(1))],
            &specs,
            &DiskFaults::default(),
        )
        .unwrap();
        let snap = load_latest(&dir).unwrap().unwrap();
        assert_eq!(snap.indexes.len(), 2);
        assert_eq!(snap.indexes[0].1.column, "k");
        assert_eq!(snap.indexes[0].1.kind, IndexKind::Hash);
        assert_eq!(snap.indexes[1].1.kind, IndexKind::Sorted);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_trailer_snapshot_loads_with_no_specs() {
        // A file ending right after the last entry (the format before the
        // index trailer) must still load.
        let dir = tmp();
        write_snapshot(&dir, 9, &[("a".to_string(), ds(2))], &[], &DiskFaults::default()).unwrap();
        let path = snapshot_path(&dir, 9);
        let bytes = fs::read(&path).unwrap();
        // Strip the empty trailer (its u32 count).
        fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let snap = load_latest(&dir).unwrap().unwrap();
        assert_eq!(snap.datasets.len(), 1);
        assert!(snap.indexes.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_snapshot_is_refused_loudly() {
        let dir = tmp();
        write_snapshot(
            &dir,
            2,
            &[("a".to_string(), ds(4))], &[], &DiskFaults {
                truncate_snapshot: true,
                ..DiskFaults::default()
            },
        )
        .unwrap();
        let err = load_latest(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("refusing to start"), "{msg}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_in_entry_is_refused() {
        let dir = tmp();
        write_snapshot(&dir, 5, &[("a".to_string(), ds(4))], &[], &DiskFaults::default()).unwrap();
        let path = snapshot_path(&dir, 5);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = load_latest(&dir).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newer_corrupt_snapshot_shadows_older_good_one() {
        // Policy: never silently fall back to an older snapshot.
        let dir = tmp();
        write_snapshot(&dir, 2, &[("a".to_string(), ds(1))], &[], &DiskFaults::default()).unwrap();
        write_snapshot(
            &dir,
            6,
            &[("a".to_string(), ds(2))], &[], &DiskFaults {
                truncate_snapshot: true,
                ..DiskFaults::default()
            },
        )
        .unwrap();
        assert!(load_latest(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
