//! Deterministic disk-fault injection for the durability layer.
//!
//! The chaos suite already injects transport faults
//! (`bda_net::serve_with_faults`) and provider faults
//! (`bda_federation::fault`); this module adds the *disk* failure modes
//! recovery must survive, keyed off the same `BDA_FAULT_SEED`
//! convention so a failing CI run replays bit-for-bit:
//!
//! * **Torn tail** — a crash mid-append leaves the final WAL record half
//!   written. Injected by writing only the first half of one record's
//!   bytes and then poisoning the writer (the simulated process is dead).
//! * **ENOSPC-style append failure** — appends past a budget fail
//!   cleanly; the mutation is refused *before* it is acknowledged.
//! * **Truncated snapshot** — the snapshot file loses its tail after
//!   being renamed into place, as a misbehaving disk would; recovery
//!   must refuse it loudly instead of serving partial data.

use bda_obs::splitmix64;

/// Which disk faults to inject, and when. `Default` injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskFaults {
    /// The 1-based WAL append that is torn: half its bytes reach disk,
    /// the append reports failure, and every later append fails too
    /// (the "process" died mid-write). Recovery must truncate the torn
    /// record and keep everything before it.
    pub torn_append_at: Option<u64>,
    /// Appends after this many successes fail with an ENOSPC-style
    /// error. The failed mutation is never acknowledged.
    pub append_fail_after: Option<u64>,
    /// Truncate every written snapshot file to half its length after it
    /// is renamed into place. Recovery must detect the damage and fail
    /// loudly rather than replay partial state.
    pub truncate_snapshot: bool,
}

impl DiskFaults {
    /// Derive a fault plan from a chaos seed: a torn append at a small
    /// seed-dependent position. Combine with the other fields as the
    /// test requires.
    pub fn torn_tail_from_seed(seed: u64) -> DiskFaults {
        DiskFaults {
            // 2..=9: always after at least one durable record, so
            // recovery has something to keep.
            torn_append_at: Some(2 + splitmix64(seed) % 8),
            ..DiskFaults::default()
        }
    }

    /// Derive an append-budget fault plan from a chaos seed.
    pub fn enospc_from_seed(seed: u64) -> DiskFaults {
        DiskFaults {
            append_fail_after: Some(1 + splitmix64(seed ^ 0xD15C) % 8),
            ..DiskFaults::default()
        }
    }

    /// One full fault plan per chaos seed, rotating across the three
    /// disk failure modes so the CI seed matrix covers all of them.
    pub fn plan_from_seed(seed: u64) -> DiskFaults {
        match splitmix64(seed ^ 0xD15C_FA17) % 3 {
            0 => DiskFaults::torn_tail_from_seed(seed),
            1 => DiskFaults::enospc_from_seed(seed),
            _ => DiskFaults {
                truncate_snapshot: true,
                ..DiskFaults::default()
            },
        }
    }
}

/// Mutable injection state carried by the WAL writer.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    pub(crate) faults: DiskFaults,
    /// Appends attempted so far (1-based at decision time).
    pub(crate) appends: u64,
    /// Set once a torn append fired: the writer is dead.
    pub(crate) poisoned: bool,
}

/// What the injector decided for one append.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum AppendFate {
    /// Write the record normally.
    Write,
    /// Write only the first half of the record's bytes, then poison.
    Tear,
    /// Refuse the append with an ENOSPC-style error.
    Refuse,
}

impl FaultState {
    pub(crate) fn new(faults: DiskFaults) -> FaultState {
        FaultState {
            faults,
            ..FaultState::default()
        }
    }

    pub(crate) fn decide(&mut self) -> AppendFate {
        if self.poisoned {
            return AppendFate::Refuse;
        }
        self.appends += 1;
        if self.faults.torn_append_at == Some(self.appends) {
            self.poisoned = true;
            return AppendFate::Tear;
        }
        if let Some(budget) = self.faults.append_fail_after {
            if self.appends > budget {
                return AppendFate::Refuse;
            }
        }
        AppendFate::Write
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_always_write() {
        let mut s = FaultState::new(DiskFaults::default());
        for _ in 0..64 {
            assert_eq!(s.decide(), AppendFate::Write);
        }
    }

    #[test]
    fn torn_append_fires_once_then_poisons() {
        let mut s = FaultState::new(DiskFaults {
            torn_append_at: Some(3),
            ..DiskFaults::default()
        });
        assert_eq!(s.decide(), AppendFate::Write);
        assert_eq!(s.decide(), AppendFate::Write);
        assert_eq!(s.decide(), AppendFate::Tear);
        assert_eq!(s.decide(), AppendFate::Refuse);
        assert_eq!(s.decide(), AppendFate::Refuse);
    }

    #[test]
    fn append_budget_refuses_after_n() {
        let mut s = FaultState::new(DiskFaults {
            append_fail_after: Some(2),
            ..DiskFaults::default()
        });
        assert_eq!(s.decide(), AppendFate::Write);
        assert_eq!(s.decide(), AppendFate::Write);
        assert_eq!(s.decide(), AppendFate::Refuse);
        assert_eq!(s.decide(), AppendFate::Refuse);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        for seed in 0..32 {
            let a = DiskFaults::torn_tail_from_seed(seed);
            assert_eq!(a, DiskFaults::torn_tail_from_seed(seed));
            let at = a.torn_append_at.unwrap();
            assert!((2..=9).contains(&at), "torn at {at}");
            let b = DiskFaults::enospc_from_seed(seed);
            let after = b.append_fail_after.unwrap();
            assert!((1..=8).contains(&after), "budget {after}");
        }
    }

    #[test]
    fn seed_rotation_covers_every_failure_mode() {
        let mut torn = 0;
        let mut enospc = 0;
        let mut snap = 0;
        for seed in 0..64 {
            let p = DiskFaults::plan_from_seed(seed);
            assert_eq!(p, DiskFaults::plan_from_seed(seed), "deterministic");
            if p.torn_append_at.is_some() {
                torn += 1;
            } else if p.append_fail_after.is_some() {
                enospc += 1;
            } else {
                assert!(p.truncate_snapshot);
                snap += 1;
            }
        }
        assert!(torn > 0 && enospc > 0 && snap > 0, "{torn}/{enospc}/{snap}");
    }
}
