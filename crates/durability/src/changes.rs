//! Change streams: committed WAL deltas as an iterator.
//!
//! `subscribe(dataset)` returns a [`ChangeStream`] that yields every
//! mutation committed *after* the subscription, in WAL sequence order.
//! Deltas are published under the provider's commit lock immediately
//! after the WAL append succeeds, so the stream sees exactly the
//! committed history — never a mutation that failed its append, never
//! out of order, never a gap.
//!
//! Streams are pull-based and buffered: a slow consumer queues deltas
//! (unbounded channel) rather than stalling ingest; a dropped consumer
//! is pruned at the next publish.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::time::Duration;

use bda_storage::DataSet;

use crate::record::WalOp;

/// One committed mutation, as seen by subscribers.
#[derive(Debug, Clone)]
pub struct Delta {
    /// The WAL sequence number that committed this change.
    pub seq: u64,
    /// Catalog name the change touches.
    pub name: String,
    /// What happened.
    pub change: Change,
}

/// The mutation payload of a [`Delta`].
#[derive(Debug, Clone)]
pub enum Change {
    /// The dataset was stored (insert or full replace) with this content.
    Stored(DataSet),
    /// The dataset was removed from the catalog.
    Removed,
}

impl Delta {
    /// `None` for ops that do not change dataset contents (index
    /// builds): change streams carry data, not metadata.
    pub(crate) fn from_op(seq: u64, op: &WalOp) -> Option<Delta> {
        match op {
            WalOp::Store { name, data } => Some(Delta {
                seq,
                name: name.clone(),
                change: Change::Stored(data.clone()),
            }),
            WalOp::Remove { name } => Some(Delta {
                seq,
                name: name.clone(),
                change: Change::Removed,
            }),
            WalOp::BuildIndex { .. } => None,
        }
    }
}

struct Subscriber {
    /// `None`: all datasets; `Some(name)`: that catalog entry only.
    filter: Option<String>,
    tx: Sender<Delta>,
}

/// Fan-out point for committed deltas. One per durable provider.
#[derive(Default)]
pub struct ChangeHub {
    subs: Mutex<Vec<Subscriber>>,
}

impl ChangeHub {
    /// A hub with no subscribers.
    pub fn new() -> ChangeHub {
        ChangeHub::default()
    }

    /// Subscribe to committed changes of one dataset.
    pub fn subscribe(&self, dataset: &str) -> ChangeStream {
        self.attach(Some(dataset.to_string()))
    }

    /// Subscribe to every committed change.
    pub fn subscribe_all(&self) -> ChangeStream {
        self.attach(None)
    }

    fn attach(&self, filter: Option<String>) -> ChangeStream {
        let (tx, rx) = channel();
        self.subs
            .lock()
            .expect("change hub lock poisoned")
            .push(Subscriber { filter, tx });
        ChangeStream { rx }
    }

    /// Deliver a committed delta to matching subscribers, pruning the
    /// ones whose streams were dropped.
    pub(crate) fn publish(&self, delta: &Delta) {
        let mut subs = self.subs.lock().expect("change hub lock poisoned");
        subs.retain(|s| {
            if s.filter.as_deref().is_some_and(|f| f != delta.name) {
                return true; // not interested, but still alive
            }
            s.tx.send(delta.clone()).is_ok()
        });
    }

    /// Number of live subscribers (observability).
    pub fn subscriber_count(&self) -> usize {
        self.subs.lock().expect("change hub lock poisoned").len()
    }
}

/// A subscription handle: an iterator of committed [`Delta`]s.
pub struct ChangeStream {
    rx: Receiver<Delta>,
}

impl ChangeStream {
    /// The next delta if one is already queued (non-blocking). `None`
    /// means "nothing queued right now" — the stream may still be live.
    pub fn try_next(&self) -> Option<Delta> {
        self.rx.try_recv().ok()
    }

    /// Wait up to `timeout` for the next delta. `None` on timeout or
    /// when the provider (and with it the hub) has shut down.
    pub fn next_timeout(&self, timeout: Duration) -> Option<Delta> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Drain everything currently queued.
    pub fn drain(&self) -> Vec<Delta> {
        let mut out = Vec::new();
        while let Some(d) = self.try_next() {
            out.push(d);
        }
        out
    }
}

impl Iterator for ChangeStream {
    type Item = Delta;

    /// Blocks until the next committed delta, ending when the provider
    /// is dropped.
    fn next(&mut self) -> Option<Delta> {
        self.rx.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_storage::Column;

    fn op(name: &str, k: i64) -> WalOp {
        WalOp::Store {
            name: name.into(),
            data: DataSet::from_columns(vec![("k", Column::from(vec![k]))]).unwrap(),
        }
    }

    #[test]
    fn filtered_subscription_sees_only_its_dataset() {
        let hub = ChangeHub::new();
        let a = hub.subscribe("a");
        let all = hub.subscribe_all();
        hub.publish(&Delta::from_op(1, &op("a", 1)).unwrap());
        hub.publish(&Delta::from_op(2, &op("b", 2)).unwrap());
        hub.publish(&Delta::from_op(3, &WalOp::Remove { name: "a".into() }).unwrap());
        let got: Vec<u64> = a.drain().iter().map(|d| d.seq).collect();
        assert_eq!(got, [1, 3]);
        assert!(a.try_next().is_none());
        let everything: Vec<u64> = all.drain().iter().map(|d| d.seq).collect();
        assert_eq!(everything, [1, 2, 3]);
    }

    #[test]
    fn dropped_streams_are_pruned() {
        let hub = ChangeHub::new();
        let s = hub.subscribe_all();
        assert_eq!(hub.subscriber_count(), 1);
        drop(s);
        hub.publish(&Delta::from_op(1, &op("a", 1)).unwrap());
        assert_eq!(hub.subscriber_count(), 0);
    }

    #[test]
    fn timeout_returns_none_without_a_delta() {
        let hub = ChangeHub::new();
        let s = hub.subscribe_all();
        assert!(s.next_timeout(Duration::from_millis(10)).is_none());
        hub.publish(&Delta::from_op(1, &op("a", 1)).unwrap());
        assert_eq!(s.next_timeout(Duration::from_millis(10)).unwrap().seq, 1);
    }

    #[test]
    fn stored_delta_carries_the_dataset() {
        let hub = ChangeHub::new();
        let s = hub.subscribe("t");
        hub.publish(&Delta::from_op(5, &op("t", 42)).unwrap());
        let d = s.try_next().unwrap();
        assert_eq!(d.name, "t");
        match d.change {
            Change::Stored(ds) => assert_eq!(ds.num_rows(), 1),
            Change::Removed => panic!("expected a store"),
        }
    }
}
