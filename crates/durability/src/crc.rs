//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.
//!
//! Every WAL record and snapshot entry carries one of these checksums so
//! recovery can tell a torn tail from silent corruption. Hand-rolled
//! because the build environment vendors no checksum crate; the table is
//! built once at first use.

use std::sync::OnceLock;

/// The reflected polynomial for CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `bytes` in one shot.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(bytes);
    h.finish()
}

/// Incremental CRC-32, for checksumming a record without concatenating
/// its header and payload into one buffer.
pub struct Hasher {
    state: u32,
}

impl Hasher {
    /// A fresh hasher (initial state all-ones, per the standard).
    pub fn new() -> Hasher {
        Hasher { state: !0 }
    }

    /// Feed bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The final checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"incremental checksumming must match the one-shot path";
        for split in [0, 1, 7, data.len() / 2, data.len()] {
            let mut h = Hasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = b"bit flips must never go unnoticed".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}.{bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
