//! The write-ahead log: checksummed, length-prefixed records in
//! append-only segment files.
//!
//! ## On-disk format
//!
//! A WAL directory holds numbered segments (`seg-0000000001.wal`, …).
//! Each segment starts with an 16-byte header:
//!
//! ```text
//! [ 8 bytes magic "BDAWSEG1" ][ u64 LE first_seq ]
//! ```
//!
//! followed by records:
//!
//! ```text
//! [ u32 LE payload_len ][ u32 LE crc32(seq ‖ payload) ][ u64 LE seq ][ payload ]
//! ```
//!
//! The payload is a [`crate::record::WalOp`] encoding, which in turn
//! reuses the columnar `BDA1` dataset codec. Sequence numbers are
//! assigned at append time, start at 1, and are strictly consecutive
//! across the whole log — a gap or regression can only mean corruption.
//!
//! ## Torn tails vs interior corruption
//!
//! A crash mid-append leaves a *torn tail*: the final record is
//! truncated or fails its checksum, and nothing follows it. Replay
//! tolerates this — the record was never acknowledged — by truncating
//! the segment at the last valid boundary. Any failed record that has a
//! checksum-valid record *after* it (in the same segment, found by a
//! bounded forward scan, or in a later segment) is **interior**
//! corruption: acknowledged data is damaged, and replay refuses with a
//! loud error instead of silently dropping committed writes.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bda_core::CoreError;
use bda_obs::MetricsHub;

use crate::crc::Hasher;
use crate::faults::{AppendFate, DiskFaults, FaultState};
use crate::record::{decode_op, encode_op, WalOp};
use crate::Result;

/// Segment file magic.
const SEG_MAGIC: &[u8; 8] = b"BDAWSEG1";
/// Bytes of segment header (magic + first_seq).
const SEG_HEADER: u64 = 16;
/// Bytes of record header (len + crc + seq).
const REC_HEADER: u64 = 16;
/// How far past a failed record replay scans for a later valid record
/// before concluding the failure is a tolerable torn tail. Records can
/// be far larger than this window, so in addition to the byte-wise scan
/// replay probes the boundary the failed record's own length field
/// points at — a corrupted record followed by committed data is interior
/// corruption no matter how large it is.
const SCAN_WINDOW: u64 = 1 << 20;

/// When the WAL writer calls `fdatasync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Sync after every appended record before acknowledging — survives
    /// both process kill and OS crash.
    #[default]
    Always,
    /// Never sync explicitly; the OS flushes when it pleases. Survives
    /// process kill (the bytes are in the page cache) but not power
    /// loss. The F9 experiment measures what this buys.
    Never,
}

impl FsyncPolicy {
    /// Parse a CLI value.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" | "on" => Some(FsyncPolicy::Always),
            "never" | "off" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }
}

fn dur_err(what: impl std::fmt::Display, e: std::io::Error) -> CoreError {
    CoreError::Durability(format!("{what}: {e}"))
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:010}.wal"))
}

/// Sync a directory so a create/rename inside it is durable.
fn sync_dir(dir: &Path) -> Result<()> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| dur_err(format!("fsync dir {}", dir.display()), e))
}

/// List `(index, path)` of the segments in `dir`, ascending.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| dur_err(format!("read {}", dir.display()), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| dur_err("read wal dir entry", e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(idx) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".wal"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((idx, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// Everything replay learned from the log.
#[derive(Debug)]
pub struct ReplayedWal {
    /// Committed records, in sequence order.
    pub records: Vec<(u64, WalOp)>,
    /// Whether a torn final record was truncated away.
    pub torn_tail: bool,
    /// Highest committed sequence number (0 when the log is empty).
    pub last_seq: u64,
    /// Sequence number the next append must use. This is **not** always
    /// `last_seq + 1`: after a snapshot rotates the log and drops the
    /// covered segments, the surviving tail segment holds no records but
    /// its header still carries the next sequence — losing it would
    /// restart numbering at 1, making every later recovery refuse on a
    /// sequence jump and every later snapshot sort below the old one.
    pub next_seq: u64,
    /// Index of the newest segment (0 when none exist yet).
    pub(crate) last_segment_index: u64,
    /// Valid byte length of the newest segment (`None`: no segments).
    pub(crate) last_segment_valid_len: Option<u64>,
}

/// How reading one segment ended.
enum SegmentEnd {
    /// All bytes consumed cleanly.
    Clean,
    /// A final record is torn; valid bytes end here.
    Torn { valid_len: u64, reason: String },
}

/// Read one segment; records append into `out`, sequences validated
/// against `next_seq` (0 = accept any start).
fn read_segment(
    path: &Path,
    first_expected_seq: &mut u64,
    out: &mut Vec<(u64, WalOp)>,
) -> Result<SegmentEnd> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| dur_err(format!("read {}", path.display()), e))?;
    let corrupt = |off: u64, reason: &str| {
        CoreError::Durability(format!(
            "wal segment {} corrupt at offset {off}: {reason}; \
             refusing to replay past interior corruption",
            path.display()
        ))
    };
    if bytes.len() < SEG_HEADER as usize {
        // A header-less segment can only be a crash during rotation:
        // nothing was ever committed into it.
        return Ok(SegmentEnd::Torn {
            valid_len: 0,
            reason: "segment shorter than its header".into(),
        });
    }
    if &bytes[..8] != SEG_MAGIC {
        return Err(corrupt(0, "bad segment magic"));
    }
    let first_seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if *first_expected_seq != 0 && first_seq != *first_expected_seq {
        return Err(corrupt(
            8,
            &format!("segment claims first seq {first_seq}, expected {first_expected_seq}"),
        ));
    }
    let mut expected = first_seq;
    let mut pos = SEG_HEADER;
    let len = bytes.len() as u64;
    while pos < len {
        match parse_record(&bytes, pos, expected) {
            RecordParse::Ok { seq, op, end } => {
                out.push((seq, op));
                expected = seq + 1;
                pos = end;
            }
            RecordParse::SeqJump { reason } => return Err(corrupt(pos, &reason)),
            RecordParse::Bad { reason, next_hint } => {
                // Tail or interior? A checksum-valid record anywhere
                // after the failure point means committed data follows.
                // The bounded scan catches shifted/garbled framing; the
                // hint probe catches a corrupted record whose successor
                // starts beyond the scan window (large payloads).
                let later = scan_for_valid_record(&bytes, pos + 1).or_else(|| {
                    next_hint
                        .filter(|&at| matches!(parse_record(&bytes, at, 0), RecordParse::Ok { .. }))
                });
                if let Some(at) = later {
                    return Err(corrupt(
                        pos,
                        &format!("{reason}, but a valid record follows at offset {at}"),
                    ));
                }
                *first_expected_seq = expected;
                return Ok(SegmentEnd::Torn {
                    valid_len: pos,
                    reason,
                });
            }
        }
    }
    *first_expected_seq = expected;
    Ok(SegmentEnd::Clean)
}

enum RecordParse {
    Ok {
        seq: u64,
        op: WalOp,
        end: u64,
    },
    /// Framing or checksum failure — a candidate torn tail. When the
    /// record's length field was in bounds, `next_hint` is the offset
    /// where the next record would start if that length is trusted;
    /// replay probes it so a valid record past the scan window still
    /// flags interior corruption.
    Bad {
        reason: String,
        next_hint: Option<u64>,
    },
    /// Checksum-valid record with the wrong sequence number. The frame
    /// is intact, so a torn append cannot produce this; it can only be
    /// logical corruption (e.g. a damaged segment header) and must be
    /// refused rather than truncated away.
    SeqJump {
        reason: String,
    },
}

/// Try to parse the record at `pos`; `expected` is the required sequence
/// number (0 = any).
fn parse_record(bytes: &[u8], pos: u64, expected: u64) -> RecordParse {
    let len = bytes.len() as u64;
    if len - pos < REC_HEADER {
        return RecordParse::Bad {
            reason: format!("{} trailing bytes, less than a record header", len - pos),
            next_hint: None,
        };
    }
    let p = pos as usize;
    let payload_len = u32::from_le_bytes(bytes[p..p + 4].try_into().unwrap()) as u64;
    let stored_crc = u32::from_le_bytes(bytes[p + 4..p + 8].try_into().unwrap());
    let seq = u64::from_le_bytes(bytes[p + 8..p + 16].try_into().unwrap());
    if len - pos - REC_HEADER < payload_len {
        return RecordParse::Bad {
            reason: format!(
                "record claims {payload_len} payload bytes, only {} remain",
                len - pos - REC_HEADER
            ),
            next_hint: None,
        };
    }
    let payload = &bytes[p + 16..p + 16 + payload_len as usize];
    let mut h = Hasher::new();
    h.update(&bytes[p + 8..p + 16]);
    h.update(payload);
    if h.finish() != stored_crc {
        return RecordParse::Bad {
            reason: format!("checksum mismatch on record seq {seq}"),
            next_hint: Some(pos + REC_HEADER + payload_len),
        };
    }
    if expected != 0 && seq != expected {
        return RecordParse::SeqJump {
            reason: format!("sequence jump: record says {seq}, expected {expected}"),
        };
    }
    match decode_op(payload) {
        Ok(op) => RecordParse::Ok {
            seq,
            op,
            end: pos + REC_HEADER + payload_len,
        },
        Err(e) => RecordParse::Bad {
            reason: format!("checksummed payload failed to decode: {e}"),
            next_hint: Some(pos + REC_HEADER + payload_len),
        },
    }
}

/// Scan forward from `from` for any checksum-valid record, bounded by
/// [`SCAN_WINDOW`]. Used to tell interior corruption from a torn tail.
fn scan_for_valid_record(bytes: &[u8], from: u64) -> Option<u64> {
    let len = bytes.len() as u64;
    let stop = len.min(from.saturating_add(SCAN_WINDOW));
    let mut pos = from;
    while pos + REC_HEADER <= stop {
        if let RecordParse::Ok { .. } = parse_record(bytes, pos, 0) {
            return Some(pos);
        }
        pos += 1;
    }
    None
}

/// Replay every segment in `dir` (which may not exist yet). Torn tails
/// are tolerated only on the final segment; corruption with committed
/// data after it is refused.
pub fn replay_dir(dir: &Path) -> Result<ReplayedWal> {
    let mut replayed = ReplayedWal {
        records: Vec::new(),
        torn_tail: false,
        last_seq: 0,
        next_seq: 1,
        last_segment_index: 0,
        last_segment_valid_len: None,
    };
    if !dir.exists() {
        return Ok(replayed);
    }
    let segments = list_segments(dir)?;
    let last_pos = segments.len().saturating_sub(1);
    let mut expected_seq = 0u64;
    for (i, (index, path)) in segments.iter().enumerate() {
        match read_segment(path, &mut expected_seq, &mut replayed.records)? {
            SegmentEnd::Clean => {
                if i == last_pos {
                    replayed.last_segment_valid_len = Some(
                        fs::metadata(path)
                            .map_err(|e| dur_err(format!("stat {}", path.display()), e))?
                            .len(),
                    );
                }
            }
            SegmentEnd::Torn { valid_len, reason } => {
                if i != last_pos {
                    return Err(CoreError::Durability(format!(
                        "wal segment {} is torn ({reason}) but later segments exist; \
                         refusing to replay past interior corruption",
                        path.display()
                    )));
                }
                replayed.torn_tail = true;
                replayed.last_segment_valid_len = Some(valid_len);
            }
        }
        replayed.last_segment_index = *index;
    }
    replayed.last_seq = replayed.records.last().map(|(s, _)| *s).unwrap_or(0);
    // `expected_seq` carries the position even through record-less
    // segments (read_segment seeds it from the segment header), so a
    // freshly rotated, empty tail still yields the right next sequence.
    replayed.next_seq = expected_seq.max(replayed.last_seq + 1);
    Ok(replayed)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// The append side of the log. One per provider, behind a mutex in
/// [`crate::DurableProvider`]; appends assign sequence numbers, so the
/// lock order *is* the commit order.
pub struct Wal {
    dir: PathBuf,
    file: File,
    segment_index: u64,
    next_seq: u64,
    fsync: FsyncPolicy,
    faults: FaultState,
    metrics: MetricsHub,
}

impl Wal {
    /// Open the log for appending, positioned after `replayed`'s last
    /// valid record (truncating a torn tail if one was found). Creates
    /// the directory and first segment as needed.
    pub fn open(
        dir: &Path,
        replayed: &ReplayedWal,
        fsync: FsyncPolicy,
        faults: DiskFaults,
        metrics: MetricsHub,
    ) -> Result<Wal> {
        fs::create_dir_all(dir).map_err(|e| dur_err(format!("create {}", dir.display()), e))?;
        let next_seq = replayed.next_seq;
        let (segment_index, file) = match replayed.last_segment_valid_len {
            Some(valid_len) if valid_len < SEG_HEADER => {
                // The tear hit the segment header itself (a crash during
                // rotation): nothing in this segment ever committed, so
                // recreate it wholesale rather than truncating.
                let index = replayed.last_segment_index;
                let path = segment_path(dir, index);
                fs::remove_file(&path)
                    .map_err(|e| dur_err(format!("remove torn {}", path.display()), e))?;
                let file = create_segment(dir, index, next_seq)?;
                (index, file)
            }
            Some(valid_len) => {
                let index = replayed.last_segment_index;
                let path = segment_path(dir, index);
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&path)
                    .map_err(|e| dur_err(format!("open {}", path.display()), e))?;
                if replayed.torn_tail {
                    file.set_len(valid_len)
                        .map_err(|e| dur_err(format!("truncate {}", path.display()), e))?;
                    file.sync_data()
                        .map_err(|e| dur_err(format!("fsync {}", path.display()), e))?;
                }
                let mut file = file;
                file.seek(SeekFrom::Start(valid_len))
                    .map_err(|e| dur_err(format!("seek {}", path.display()), e))?;
                (index, file)
            }
            None => {
                let index = 1;
                let file = create_segment(dir, index, next_seq)?;
                (index, file)
            }
        };
        Ok(Wal {
            dir: dir.to_path_buf(),
            file,
            segment_index,
            next_seq,
            fsync,
            faults: FaultState::new(faults),
            metrics,
        })
    }

    /// The sequence number the next committed append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append one record, fsync per policy, and return `(seq, bytes)`.
    /// On error nothing was committed and no sequence number was spent.
    pub fn append(&mut self, op: &WalOp) -> Result<(u64, u64)> {
        let seq = self.next_seq;
        let payload = encode_op(op);
        let mut rec = Vec::with_capacity(REC_HEADER as usize + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut h = Hasher::new();
        h.update(&seq.to_le_bytes());
        h.update(&payload);
        rec.extend_from_slice(&h.finish().to_le_bytes());
        rec.extend_from_slice(&seq.to_le_bytes());
        rec.extend_from_slice(&payload);
        match self.faults.decide() {
            AppendFate::Write => {}
            AppendFate::Tear => {
                // Simulated crash mid-append: half the record reaches
                // disk, the writer is dead from here on.
                let _ = self.file.write_all(&rec[..rec.len() / 2]);
                let _ = self.file.sync_data();
                return Err(CoreError::Durability(
                    "injected torn append: wal writer crashed mid-record".into(),
                ));
            }
            AppendFate::Refuse => {
                return Err(CoreError::Durability(
                    "injected append failure: no space left on wal device".into(),
                ));
            }
        }
        self.file
            .write_all(&rec)
            .map_err(|e| dur_err("wal append", e))?;
        if self.fsync == FsyncPolicy::Always {
            self.file.sync_data().map_err(|e| dur_err("wal fsync", e))?;
            self.metrics
                .counter("bda_durability_fsyncs_total", "WAL fsync calls.")
                .inc();
        }
        self.next_seq += 1;
        self.metrics
            .counter(
                "bda_durability_wal_records_total",
                "Records appended to the WAL.",
            )
            .inc();
        self.metrics
            .counter(
                "bda_durability_wal_bytes_total",
                "Bytes appended to the WAL.",
            )
            .add(rec.len() as u64);
        Ok((seq, rec.len() as u64))
    }

    /// Start a fresh segment; subsequent appends land there. Returns
    /// `(covered, new_index)`: the highest sequence number covered by
    /// the *previous* segments — the snapshot that triggers a rotation
    /// covers exactly those records — and the index of the new segment.
    /// The caller must pass that recorded index to
    /// [`Wal::drop_segments_below`], not re-read the current index: a
    /// concurrent rotation may have advanced it past segments whose
    /// covering snapshot is not on disk yet.
    pub fn rotate(&mut self) -> Result<(u64, u64)> {
        self.file
            .sync_data()
            .map_err(|e| dur_err("wal fsync before rotate", e))?;
        let covered = self.next_seq - 1;
        self.segment_index += 1;
        self.file = create_segment(&self.dir, self.segment_index, self.next_seq)?;
        Ok((covered, self.segment_index))
    }

    /// Delete every segment with an index below `index` (their records
    /// are covered by a durable snapshot).
    pub fn drop_segments_below(&self, index: u64) -> Result<usize> {
        let mut dropped = 0;
        for (seg_index, path) in list_segments(&self.dir)? {
            if seg_index < index {
                fs::remove_file(&path)
                    .map_err(|e| dur_err(format!("remove {}", path.display()), e))?;
                dropped += 1;
            }
        }
        if dropped > 0 {
            sync_dir(&self.dir)?;
        }
        Ok(dropped)
    }
}

/// Create segment `index` with its header, fsynced, directory synced.
fn create_segment(dir: &Path, index: u64, first_seq: u64) -> Result<File> {
    let path = segment_path(dir, index);
    let mut file = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&path)
        .map_err(|e| dur_err(format!("create {}", path.display()), e))?;
    file.write_all(SEG_MAGIC)
        .and_then(|_| file.write_all(&first_seq.to_le_bytes()))
        .and_then(|_| file.sync_data())
        .map_err(|e| dur_err(format!("write header {}", path.display()), e))?;
    sync_dir(dir)?;
    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_storage::{Column, DataSet};

    fn tmp() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bda-wal-test-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ds(k: i64) -> DataSet {
        DataSet::from_columns(vec![("k", Column::from(vec![k, k + 1]))]).unwrap()
    }

    fn store(name: &str, k: i64) -> WalOp {
        WalOp::Store {
            name: name.into(),
            data: ds(k),
        }
    }

    fn open_empty(dir: &Path) -> Wal {
        let replayed = replay_dir(dir).unwrap();
        Wal::open(
            dir,
            &replayed,
            FsyncPolicy::Always,
            DiskFaults::default(),
            MetricsHub::new(),
        )
        .unwrap()
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = tmp();
        let mut wal = open_empty(&dir);
        assert_eq!(wal.append(&store("a", 1)).unwrap().0, 1);
        assert_eq!(
            wal.append(&WalOp::Remove { name: "a".into() }).unwrap().0,
            2
        );
        assert_eq!(wal.append(&store("b", 5)).unwrap().0, 3);
        drop(wal);
        let replayed = replay_dir(&dir).unwrap();
        assert!(!replayed.torn_tail);
        assert_eq!(replayed.last_seq, 3);
        let kinds: Vec<&str> = replayed.records.iter().map(|(_, op)| op.kind()).collect();
        assert_eq!(kinds, ["store", "remove", "store"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_sequence_continues() {
        let dir = tmp();
        let mut wal = open_empty(&dir);
        wal.append(&store("a", 1)).unwrap();
        wal.append(&store("b", 2)).unwrap();
        drop(wal);
        // Chop bytes off the final record: a crash mid-append.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let replayed = replay_dir(&dir).unwrap();
        assert!(replayed.torn_tail);
        assert_eq!(replayed.last_seq, 1, "only the intact record survives");
        // Re-open and append: the torn bytes are gone, seq continues at 2.
        let mut wal = Wal::open(
            &dir,
            &replayed,
            FsyncPolicy::Always,
            DiskFaults::default(),
            MetricsHub::new(),
        )
        .unwrap();
        assert_eq!(wal.append(&store("c", 3)).unwrap().0, 2);
        drop(wal);
        let replayed = replay_dir(&dir).unwrap();
        assert!(!replayed.torn_tail);
        assert_eq!(replayed.last_seq, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_corruption_is_refused() {
        let dir = tmp();
        let mut wal = open_empty(&dir);
        wal.append(&store("a", 1)).unwrap();
        let (_, first_end) = (
            0,
            fs::metadata(&list_segments(&dir).unwrap()[0].1)
                .unwrap()
                .len(),
        );
        wal.append(&store("b", 2)).unwrap();
        drop(wal);
        // Flip a byte inside the *first* record's payload: a valid
        // record follows, so this must be refused, not truncated.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let victim = (first_end - 3) as usize;
        bytes[victim] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let err = replay_dir(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("interior corruption"), "{msg}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_drops_covered_segments() {
        let dir = tmp();
        let mut wal = open_empty(&dir);
        wal.append(&store("a", 1)).unwrap();
        wal.append(&store("b", 2)).unwrap();
        let (covered, new_index) = wal.rotate().unwrap();
        assert_eq!(covered, 2);
        wal.append(&store("c", 3)).unwrap();
        assert_eq!(wal.drop_segments_below(new_index).unwrap(), 1);
        drop(wal);
        // Only the post-rotation record remains in the log.
        let replayed = replay_dir(&dir).unwrap();
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.last_seq, 3);
        assert_eq!(replayed.records[0].0, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_tail_segment_preserves_next_seq_across_reopen() {
        // snapshot -> restart -> ingest -> restart: the tail segment
        // holds no records, but its header must carry the sequence
        // forward or the next recovery refuses on a sequence jump.
        let dir = tmp();
        let mut wal = open_empty(&dir);
        wal.append(&store("a", 1)).unwrap();
        wal.append(&store("b", 2)).unwrap();
        let (covered, new_index) = wal.rotate().unwrap();
        assert_eq!(covered, 2);
        wal.drop_segments_below(new_index).unwrap();
        drop(wal);

        let replayed = replay_dir(&dir).unwrap();
        assert_eq!(replayed.last_seq, 0, "tail segment has no records");
        assert_eq!(replayed.next_seq, 3, "segment header carries the seq");
        let mut wal = Wal::open(
            &dir,
            &replayed,
            FsyncPolicy::Always,
            DiskFaults::default(),
            MetricsHub::new(),
        )
        .unwrap();
        assert_eq!(wal.append(&store("c", 3)).unwrap().0, 3);
        drop(wal);

        // The log replays cleanly — no SeqJump refusal on restart.
        let replayed = replay_dir(&dir).unwrap();
        assert_eq!(replayed.last_seq, 3);
        assert_eq!(replayed.next_seq, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_corruption_beyond_scan_window_is_refused() {
        // A corrupted record larger than SCAN_WINDOW: the next valid
        // record starts past the byte-wise scan, so only the length-field
        // boundary probe can tell interior corruption from a torn tail.
        let dir = tmp();
        let mut wal = open_empty(&dir);
        let big: Vec<i64> = (0..200_000).collect(); // ~1.6 MiB payload
        wal.append(&WalOp::Store {
            name: "big".into(),
            data: DataSet::from_columns(vec![("k", Column::from(big))]).unwrap(),
        })
        .unwrap();
        wal.append(&store("small", 2)).unwrap();
        drop(wal);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte early in the big record, > SCAN_WINDOW
        // before the small record that follows it.
        bytes[(SEG_HEADER + REC_HEADER) as usize + 64] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let err = replay_dir(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("interior corruption"), "{msg}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_fault_refuses_without_spending_a_seq() {
        let dir = tmp();
        let replayed = replay_dir(&dir).unwrap();
        let mut wal = Wal::open(
            &dir,
            &replayed,
            FsyncPolicy::Always,
            DiskFaults {
                append_fail_after: Some(1),
                ..DiskFaults::default()
            },
            MetricsHub::new(),
        )
        .unwrap();
        wal.append(&store("a", 1)).unwrap();
        let err = wal.append(&store("b", 2)).unwrap_err();
        assert!(err.to_string().contains("no space left"), "{err}");
        assert_eq!(wal.next_seq(), 2, "failed append spends no sequence");
        drop(wal);
        let replayed = replay_dir(&dir).unwrap();
        assert_eq!(replayed.last_seq, 1);
        assert!(!replayed.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_append_fault_recovers_to_last_commit() {
        let dir = tmp();
        let replayed = replay_dir(&dir).unwrap();
        let mut wal = Wal::open(
            &dir,
            &replayed,
            FsyncPolicy::Always,
            DiskFaults {
                torn_append_at: Some(2),
                ..DiskFaults::default()
            },
            MetricsHub::new(),
        )
        .unwrap();
        wal.append(&store("a", 1)).unwrap();
        let err = wal.append(&store("b", 2)).unwrap_err();
        assert!(err.to_string().contains("torn append"), "{err}");
        drop(wal);
        let replayed = replay_dir(&dir).unwrap();
        assert!(replayed.torn_tail);
        assert_eq!(replayed.last_seq, 1);
        assert_eq!(replayed.records.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
