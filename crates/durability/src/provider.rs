//! [`DurableProvider`]: a [`Provider`] decorator that makes every
//! acknowledged mutation crash-safe.
//!
//! ## Commit protocol
//!
//! `store`/`remove` take the WAL lock, apply to the wrapped engine (so
//! shape validation happens before anything touches disk), append a WAL
//! record and fsync per policy, publish the change delta, and only then
//! release the lock and return. Engine apply, log order, and change
//! streams therefore always agree on which of two racing mutations won,
//! and the acknowledgement the caller sees implies the record is
//! durable: *never ack-then-lose*. The failure window is the converse —
//! a mutation that reached memory but whose append failed is reported
//! as an error (or, for `remove`, rescued by an immediate snapshot),
//! may still be present until restart, and may become durable at the
//! next snapshot; that is at-least-once, which the idempotent record
//! design (full-dataset stores, plain removes) makes harmless on
//! replay.
//!
//! ## Recovery sequence (on [`DurableProvider::open`])
//!
//! 1. Load the newest snapshot (checksums verified; corruption is a
//!    loud, refusing error — see [`crate::snapshot`]).
//! 2. Replay the WAL in sequence order over it, truncating a torn
//!    final record, refusing interior corruption (see [`crate::wal`]).
//! 3. Open the log for appending at the next sequence number.
//!
//! The report of what happened — and per-dataset `recovery:{name}`
//! spans when a tracer is supplied — comes back in
//! [`RecoveryReport`].
//!
//! ## Ephemeral names
//!
//! Datasets whose name starts with the configured ephemeral prefix
//! (the federation's staged-fragment prefix by default) are never
//! logged or snapshotted: they are scratch space for in-flight queries.
//! The background thread garbage-collects any that outlive their TTL —
//! the leak path is a query that died permanently between staging and
//! cleanup.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bda_core::{CapabilitySet, CoreError, Plan, Provider};
use bda_obs::{MetricsHub, Tracer};
use bda_storage::{DataSet, IndexKind, Schema};

use crate::changes::{ChangeHub, ChangeStream, Delta};
use crate::record::WalOp;
use crate::snapshot;
use crate::wal::{self, Wal};
use crate::{Options, Result};

/// What recovery found and did, for logs, tests, and the readiness gate.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Sequence number the loaded snapshot covered (0: none found).
    pub snapshot_seq: u64,
    /// Datasets restored from the snapshot.
    pub snapshot_datasets: usize,
    /// WAL records replayed over the snapshot.
    pub wal_records_replayed: usize,
    /// Whether a torn final record was truncated away.
    pub torn_tail_truncated: bool,
    /// Names now present in the durable catalog, sorted.
    pub datasets: Vec<String>,
    /// Wall time the whole recovery took.
    pub elapsed: Duration,
}

struct Shared {
    inner: Arc<dyn Provider>,
    options: Options,
    metrics: MetricsHub,
    changes: ChangeHub,
    /// Orders commits: engine apply, appends, delta publication,
    /// rotation.
    wal: Mutex<Wal>,
    /// Serializes whole snapshot cycles (background thread + public
    /// API). Without it, two concurrent cycles could interleave so that
    /// one deletes a segment whose records are covered only by the
    /// other's snapshot — which may not be on disk yet. Never acquired
    /// while holding the WAL lock.
    snapshots: Mutex<()>,
    /// WAL bytes appended since the last snapshot (the snapshot trigger).
    bytes_since_snapshot: AtomicU64,
    /// Live ephemeral names and when they appeared, for TTL GC.
    staged: Mutex<HashMap<String, Instant>>,
}

impl Shared {
    fn is_ephemeral(&self, name: &str) -> bool {
        name.starts_with(&self.options.ephemeral_prefix)
    }

    /// The durable (non-ephemeral) catalog, read back through the engine.
    fn durable_catalog(&self) -> Result<Vec<(String, DataSet)>> {
        let mut out = Vec::new();
        for (name, schema) in self.inner.catalog() {
            if self.is_ephemeral(&name) {
                continue;
            }
            let data = self.inner.execute(&Plan::scan(&name, schema))?;
            out.push((name, data));
        }
        Ok(out)
    }

    /// Compact the WAL into a snapshot and drop covered segments.
    fn snapshot_now(&self) -> Result<u64> {
        // One snapshot cycle at a time: rotate, read, write, and drop
        // must see a consistent segment layout end to end.
        let _cycle = self.snapshots.lock().expect("snapshot lock poisoned");
        // Rotation is the cut point: everything at or below `covered`
        // will be represented by the snapshot. The WAL lock is released
        // while the catalog is read and written out — concurrent commits
        // land in the new segment, and because records are idempotent
        // full-dataset ops, replaying them over a snapshot that already
        // includes their effects converges.
        let (covered, new_index) = self.wal.lock().expect("wal lock poisoned").rotate()?;
        let datasets = self.durable_catalog()?;
        // Index *specs* ride along in the snapshot trailer so recovery
        // can rebuild without replaying the original BuildIndex record
        // (which the rotation above just retired).
        let mut indexes = Vec::new();
        for (name, _) in &datasets {
            for spec in self.inner.index_specs(name) {
                indexes.push((name.clone(), spec));
            }
        }
        let bytes = snapshot::write_snapshot(
            &self.options.snapshot_dir(),
            covered,
            &datasets,
            &indexes,
            &self.options.faults,
        )?;
        snapshot::prune(&self.options.snapshot_dir(), self.options.keep_snapshots)?;
        // Drop only below the index recorded at *our* rotation — the
        // current index may already belong to a later cycle.
        self.wal
            .lock()
            .expect("wal lock poisoned")
            .drop_segments_below(new_index)?;
        self.bytes_since_snapshot.store(0, Ordering::Relaxed);
        self.metrics
            .counter("bda_durability_snapshots_total", "Snapshots written.")
            .inc();
        self.metrics
            .counter(
                "bda_durability_snapshot_bytes_total",
                "Bytes written into snapshot files.",
            )
            .add(bytes);
        Ok(covered)
    }

    /// Drop ephemeral datasets older than the staged TTL. Returns the
    /// names collected.
    fn gc_staged(&self) -> Vec<String> {
        let ttl = self.options.staged_ttl;
        let expired: Vec<String> = {
            let staged = self.staged.lock().expect("staged lock poisoned");
            staged
                .iter()
                .filter(|(_, born)| born.elapsed() >= ttl)
                .map(|(name, _)| name.clone())
                .collect()
        };
        for name in &expired {
            self.inner.remove(name);
            self.staged
                .lock()
                .expect("staged lock poisoned")
                .remove(name);
            self.metrics
                .counter(
                    "bda_durability_staged_gc_total",
                    "Leaked staged datasets garbage-collected.",
                )
                .inc();
        }
        expired
    }
}

/// The durable decorator. Construct with [`DurableProvider::open`];
/// dropping it stops the background snapshotter (flushing nothing —
/// every acknowledged mutation is already on disk).
pub struct DurableProvider {
    shared: Arc<Shared>,
    report: RecoveryReport,
    stop: Sender<()>,
    snapshotter: Option<JoinHandle<()>>,
}

impl DurableProvider {
    /// Recover state from `options.dir` into `inner`, then wrap it so
    /// every later mutation is logged. `tracer` (optional) receives one
    /// `recovery:{dataset}` span per restored dataset plus a parent
    /// `recovery` span.
    pub fn open(inner: Arc<dyn Provider>, options: Options) -> Result<DurableProvider> {
        DurableProvider::open_traced(inner, options, &Tracer::disabled())
    }

    /// [`DurableProvider::open`] with recovery spans.
    pub fn open_traced(
        inner: Arc<dyn Provider>,
        options: Options,
        tracer: &Tracer,
    ) -> Result<DurableProvider> {
        let started = Instant::now();
        let metrics = options.metrics.clone().unwrap_or_default();
        let site = inner.name().to_string();
        let mut root = tracer.start(None, || "recovery".to_string(), &site);

        // 1. Snapshot.
        let snap = snapshot::load_latest(&options.snapshot_dir())?;
        let (snapshot_seq, snapshot_datasets) = match &snap {
            Some(s) => (s.covered_seq, s.datasets.len()),
            None => (0, 0),
        };
        if let Some(s) = snap {
            for (name, data) in s.datasets {
                let mut span = tracer.start(root.id(), || format!("recovery:{name}"), &site);
                span.set_rows(data.num_rows());
                inner.store(&name, data)?;
                span.finish();
            }
            // Rebuild snapshotted index specs from the recovered data;
            // the bytes are deterministic, so this matches the
            // pre-crash index exactly.
            for (name, spec) in s.indexes {
                inner.build_index(&name, &spec.column, spec.kind)?;
            }
        }

        // 2. WAL replay.
        let mut replayed = wal::replay_dir(&options.wal_dir())?;
        // A snapshot proves sequences up to covered_seq were committed,
        // even if the WAL tail no longer shows them (e.g. the log
        // directory was lost while snapshots survived) — never let the
        // writer re-issue a sequence number a snapshot already covers.
        replayed.next_seq = replayed.next_seq.max(snapshot_seq + 1);
        let wal_records_replayed = replayed.records.len();
        for (_, op) in &replayed.records {
            let mut span = tracer.start(root.id(), || format!("recovery:{}", op.name()), &site);
            match op {
                WalOp::Store { name, data } => {
                    span.set_rows(data.num_rows());
                    inner.store(name, data.clone())?;
                }
                WalOp::Remove { name } => inner.remove(name),
                WalOp::BuildIndex { name, column, kind } => {
                    inner.build_index(name, column, *kind)?;
                }
            }
            span.finish();
        }

        // 3. Open for appending.
        let wal = Wal::open(
            &options.wal_dir(),
            &replayed,
            options.fsync,
            options.faults,
            metrics.clone(),
        )?;

        let elapsed = started.elapsed();
        metrics
            .histogram(
                "bda_durability_replay_seconds",
                "Recovery (snapshot load + WAL replay) wall time.",
            )
            .observe_s(elapsed.as_secs_f64());
        metrics
            .counter(
                "bda_durability_replayed_records_total",
                "WAL records applied during recovery.",
            )
            .add(wal_records_replayed as u64);
        root.event(|| {
            format!(
                "snapshot seq {snapshot_seq} ({snapshot_datasets} datasets), \
                 {wal_records_replayed} wal records, torn tail: {}",
                replayed.torn_tail
            )
        });
        root.finish();

        let report = RecoveryReport {
            snapshot_seq,
            snapshot_datasets,
            wal_records_replayed,
            torn_tail_truncated: replayed.torn_tail,
            datasets: {
                let mut names: Vec<String> = inner.catalog().into_iter().map(|(n, _)| n).collect();
                names.sort();
                names
            },
            elapsed,
        };

        let shared = Arc::new(Shared {
            inner,
            options,
            metrics,
            changes: ChangeHub::new(),
            wal: Mutex::new(wal),
            snapshots: Mutex::new(()),
            bytes_since_snapshot: AtomicU64::new(0),
            staged: Mutex::new(HashMap::new()),
        });
        let (stop, stop_rx) = channel();
        let snapshotter = Some(spawn_snapshotter(Arc::clone(&shared), stop_rx));
        Ok(DurableProvider {
            shared,
            report,
            stop,
            snapshotter,
        })
    }

    /// What recovery found and did.
    pub fn report(&self) -> &RecoveryReport {
        &self.report
    }

    /// Subscribe to committed changes of one dataset.
    pub fn subscribe(&self, dataset: &str) -> ChangeStream {
        self.shared.changes.subscribe(dataset)
    }

    /// Subscribe to every committed change.
    pub fn subscribe_all(&self) -> ChangeStream {
        self.shared.changes.subscribe_all()
    }

    /// Force a snapshot + WAL truncation now (the background thread does
    /// this on its own when the log outgrows the configured threshold).
    /// Returns the covered sequence number.
    pub fn snapshot_now(&self) -> Result<u64> {
        self.shared.snapshot_now()
    }

    /// Force a staged-dataset GC sweep now; returns collected names.
    pub fn gc_staged_now(&self) -> Vec<String> {
        self.shared.gc_staged()
    }

    /// Ephemeral names currently staged (tests assert leak-freedom).
    pub fn staged_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shared
            .staged
            .lock()
            .expect("staged lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &Arc<dyn Provider> {
        &self.shared.inner
    }
}

impl Drop for DurableProvider {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(handle) = self.snapshotter.take() {
            let _ = handle.join();
        }
    }
}

fn spawn_snapshotter(shared: Arc<Shared>, stop: Receiver<()>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("bda-snapshotter".into())
        .spawn(move || loop {
            match stop.recv_timeout(shared.options.snapshot_interval) {
                Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {}
            }
            shared.gc_staged();
            let due = shared.bytes_since_snapshot.load(Ordering::Relaxed)
                >= shared.options.snapshot_every_bytes;
            if due {
                if let Err(e) = shared.snapshot_now() {
                    // A failed snapshot loses nothing (the WAL still has
                    // everything); count it and keep serving.
                    shared
                        .metrics
                        .counter_labeled(
                            "bda_durability_snapshot_errors_total",
                            &[("error", &e.to_string())],
                            "Background snapshot attempts that failed.",
                        )
                        .inc();
                }
            }
        })
        .expect("spawn snapshotter thread")
}

impl Provider for DurableProvider {
    fn name(&self) -> &str {
        self.shared.inner.name()
    }

    fn capabilities(&self) -> CapabilitySet {
        self.shared.inner.capabilities()
    }

    fn catalog(&self) -> Vec<(String, Schema)> {
        self.shared.inner.catalog()
    }

    fn execute(&self, plan: &Plan) -> Result<DataSet> {
        self.shared.inner.execute(plan)
    }

    fn store(&self, name: &str, data: DataSet) -> Result<()> {
        if self.shared.is_ephemeral(name) {
            // Scratch space for in-flight queries: engine-only, tracked
            // for TTL GC, never logged.
            self.shared.inner.store(name, data)?;
            self.shared
                .staged
                .lock()
                .expect("staged lock poisoned")
                .insert(name.to_string(), Instant::now());
            return Ok(());
        }
        // Engine apply, WAL append, and delta publication all happen
        // under the WAL lock: the lock order *is* the commit order, so
        // live state, the log, and change streams can never disagree
        // about which of two racing stores won. Apply still precedes
        // append (shape validation — an engine that refuses the dataset
        // must not leave a log record); the ack below implies the
        // record is on disk.
        let mut wal = self.shared.wal.lock().expect("wal lock poisoned");
        self.shared.inner.store(name, data.clone())?;
        let op = WalOp::Store {
            name: name.to_string(),
            data,
        };
        let (seq, bytes) = wal.append(&op)?;
        self.shared
            .bytes_since_snapshot
            .fetch_add(bytes, Ordering::Relaxed);
        if let Some(d) = Delta::from_op(seq, &op) {
            self.shared.changes.publish(&d);
        }
        Ok(())
    }

    fn remove(&self, name: &str) {
        if self.shared.is_ephemeral(name) {
            self.shared.inner.remove(name);
            self.shared
                .staged
                .lock()
                .expect("staged lock poisoned")
                .remove(name);
            return;
        }
        let op = WalOp::Remove {
            name: name.to_string(),
        };
        let append_failed = {
            // Engine apply under the WAL lock, like store: apply order
            // must match commit order.
            let mut wal = self.shared.wal.lock().expect("wal lock poisoned");
            self.shared.inner.remove(name);
            match wal.append(&op) {
                Ok((seq, bytes)) => {
                    self.shared
                        .bytes_since_snapshot
                        .fetch_add(bytes, Ordering::Relaxed);
                    if let Some(d) = Delta::from_op(seq, &op) {
                        self.shared.changes.publish(&d);
                    }
                    false
                }
                Err(_) => {
                    // `remove` has no error channel (trait signature),
                    // and the engine-side delete already happened — live
                    // clients observe the dataset gone. Count the miss
                    // so operators see it.
                    self.shared
                        .metrics
                        .counter(
                            "bda_durability_unlogged_removes_total",
                            "Removes whose WAL append failed (made durable by a rescue snapshot).",
                        )
                        .inc();
                    true
                }
            }
        };
        if append_failed {
            // Make the unlogged delete durable *now* instead of waiting
            // for the next scheduled snapshot: until one lands, a crash
            // would resurrect a dataset clients already saw removed.
            if let Err(e) = self.shared.snapshot_now() {
                self.shared
                    .metrics
                    .counter_labeled(
                        "bda_durability_snapshot_errors_total",
                        &[("error", &e.to_string())],
                        "Background snapshot attempts that failed.",
                    )
                    .inc();
            }
        }
    }

    fn schema_of(&self, name: &str) -> Option<Schema> {
        self.shared.inner.schema_of(name)
    }

    fn table_stats(&self, name: &str) -> Option<bda_storage::TableStats> {
        self.shared.inner.table_stats(name)
    }

    fn build_index(&self, dataset: &str, column: &str, kind: IndexKind) -> Result<()> {
        if self.shared.is_ephemeral(dataset) {
            return self.shared.inner.build_index(dataset, column, kind);
        }
        // Same commit protocol as `store`: apply under the WAL lock,
        // then log the spec (not the bytes — replay rebuilds). No delta:
        // change streams carry data, and an index changes none.
        let mut wal = self.shared.wal.lock().expect("wal lock poisoned");
        self.shared.inner.build_index(dataset, column, kind)?;
        let op = WalOp::BuildIndex {
            name: dataset.to_string(),
            column: column.to_string(),
            kind,
        };
        let (_, bytes) = wal.append(&op)?;
        self.shared
            .bytes_since_snapshot
            .fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }

    fn index_specs(&self, dataset: &str) -> Vec<bda_storage::IndexSpec> {
        self.shared.inner.index_specs(dataset)
    }

    fn index_fingerprint(&self, dataset: &str, column: &str) -> Option<u64> {
        self.shared.inner.index_fingerprint(dataset, column)
    }

    fn row_count_of(&self, name: &str) -> Option<usize> {
        self.shared.inner.row_count_of(name)
    }

    fn endpoint(&self) -> Option<String> {
        self.shared.inner.endpoint()
    }

    fn execute_push(&self, plan: &Plan, peer_addr: &str, dest_name: &str) -> Option<Result<u64>> {
        self.shared.inner.execute_push(plan, peer_addr, dest_name)
    }

    fn wire_bytes(&self) -> (u64, u64) {
        self.shared.inner.wire_bytes()
    }

    fn execute_traced(
        &self,
        plan: &Plan,
        ctx: &bda_obs::TraceContext,
    ) -> Result<(DataSet, Vec<bda_obs::Span>)> {
        self.shared.inner.execute_traced(plan, ctx)
    }

    fn execute_push_traced(
        &self,
        plan: &Plan,
        peer_addr: &str,
        dest_name: &str,
        ctx: &bda_obs::TraceContext,
    ) -> Option<Result<(u64, Vec<bda_obs::Span>)>> {
        self.shared
            .inner
            .execute_push_traced(plan, peer_addr, dest_name, ctx)
    }
}

/// Convenience for tests and tools: a `CoreError::Durability` check.
pub fn is_durability_error(e: &CoreError) -> bool {
    matches!(e, CoreError::Durability(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::DiskFaults;
    use bda_core::ReferenceProvider;
    use bda_storage::Column;
    use std::path::PathBuf;

    fn tmp() -> PathBuf {
        std::env::temp_dir().join(format!(
            "bda-durable-test-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ))
    }

    fn ds(k: i64) -> DataSet {
        DataSet::from_columns(vec![("k", Column::from(vec![k, k + 10]))]).unwrap()
    }

    fn open(dir: &std::path::Path) -> DurableProvider {
        DurableProvider::open(Arc::new(ReferenceProvider::new("p")), Options::new(dir)).unwrap()
    }

    #[test]
    fn mutations_survive_reopen() {
        let dir = tmp();
        {
            let p = open(&dir);
            p.store("a", ds(1)).unwrap();
            p.store("b", ds(2)).unwrap();
            p.store("a", ds(3)).unwrap(); // replace
            p.remove("b");
        }
        let p = open(&dir);
        assert_eq!(p.report().wal_records_replayed, 4);
        assert_eq!(p.report().datasets, ["a"]);
        let got = p
            .execute(&Plan::scan("a", p.schema_of("a").unwrap()))
            .unwrap();
        assert!(got.same_bag(&ds(3)).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn indexes_survive_reopen_via_wal_and_snapshot() {
        use bda_relational::RelationalEngine;
        let dir = tmp();
        let data = DataSet::from_columns(vec![
            ("k", Column::from(vec![3i64, 1, 2, 1, 3])),
            ("v", Column::from(vec![0.5f64, -1.0, 2.5, 0.0, 9.0])),
        ])
        .unwrap();
        // From-scratch build on an identical engine: the fingerprint the
        // recovered index must reproduce.
        let oracle = RelationalEngine::new("oracle");
        oracle.store("t", data.clone()).unwrap();
        oracle.build_index("t", "k", IndexKind::Hash).unwrap();
        oracle.build_index("t", "v", IndexKind::Sorted).unwrap();
        let want_k = oracle.index_fingerprint("t", "k").unwrap();
        let want_v = oracle.index_fingerprint("t", "v").unwrap();

        let reopen = |dir: &std::path::Path| {
            DurableProvider::open(Arc::new(RelationalEngine::new("p")), Options::new(dir)).unwrap()
        };
        {
            let p = reopen(&dir);
            p.store("t", data.clone()).unwrap();
            p.build_index("t", "k", IndexKind::Hash).unwrap();
            p.build_index("t", "v", IndexKind::Sorted).unwrap();
        }
        // WAL-replay path: the BuildIndex records rebuild both indexes.
        {
            let p = reopen(&dir);
            let mut specs = p.index_specs("t");
            specs.sort_by(|a, b| a.column.cmp(&b.column));
            assert_eq!(specs.len(), 2, "both specs must survive replay");
            assert_eq!(p.index_fingerprint("t", "k"), Some(want_k));
            assert_eq!(p.index_fingerprint("t", "v"), Some(want_v));
            // Compact: specs must move into the snapshot trailer.
            p.snapshot_now().unwrap();
        }
        // Snapshot path: the WAL was compacted away, so the trailer is
        // the only record of the specs.
        let p = reopen(&dir);
        assert_eq!(p.report().wal_records_replayed, 0);
        assert_eq!(p.index_fingerprint("t", "k"), Some(want_k));
        assert_eq!(p.index_fingerprint("t", "v"), Some(want_v));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compacts_and_recovery_uses_it() {
        let dir = tmp();
        {
            let p = open(&dir);
            for i in 0..5 {
                p.store(&format!("d{i}"), ds(i)).unwrap();
            }
            let covered = p.snapshot_now().unwrap();
            assert_eq!(covered, 5);
            p.store("after", ds(99)).unwrap(); // lands in the WAL tail
        }
        let p = open(&dir);
        assert_eq!(p.report().snapshot_seq, 5);
        assert_eq!(p.report().snapshot_datasets, 5);
        assert_eq!(p.report().wal_records_replayed, 1, "only the tail replays");
        assert_eq!(p.report().datasets.len(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_survives_snapshot_then_reopen_then_ingest() {
        // snapshot -> restart -> ingest -> restart: the empty WAL tail
        // after a snapshot must not reset the sequence, or the second
        // restart refuses on a sequence jump and later snapshots sort
        // below the pre-restart one.
        let dir = tmp();
        {
            let p = open(&dir);
            p.store("a", ds(1)).unwrap();
            p.store("b", ds(2)).unwrap();
            assert_eq!(p.snapshot_now().unwrap(), 2);
        }
        {
            let p = open(&dir);
            assert_eq!(p.report().snapshot_seq, 2);
            p.store("c", ds(3)).unwrap();
        }
        let p = open(&dir);
        assert_eq!(p.report().wal_records_replayed, 1);
        assert_eq!(p.report().datasets, ["a", "b", "c"]);
        // A fresh snapshot covers a *higher* sequence than the old one,
        // so load_latest keeps picking the newest state.
        assert_eq!(p.snapshot_now().unwrap(), 3);
        drop(p);
        let p = open(&dir);
        assert_eq!(p.report().snapshot_seq, 3);
        assert_eq!(p.report().datasets, ["a", "b", "c"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_remove_append_is_rescued_by_immediate_snapshot() {
        let dir = tmp();
        let mut options = Options::new(dir.clone());
        options.faults = DiskFaults {
            append_fail_after: Some(1),
            ..DiskFaults::default()
        };
        {
            let p = DurableProvider::open(Arc::new(ReferenceProvider::new("p")), options).unwrap();
            p.store("gone", ds(1)).unwrap(); // spends the append budget
            p.remove("gone"); // WAL append fails -> rescue snapshot
        }
        // Without the rescue, recovery replays the store and resurrects
        // a dataset live clients already observed removed.
        let p = open(&dir);
        assert!(
            p.report().datasets.is_empty(),
            "unlogged remove survives restart: {:?}",
            p.report().datasets
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ephemeral_names_skip_the_log_and_snapshots() {
        let dir = tmp();
        {
            let p = open(&dir);
            p.store("real", ds(1)).unwrap();
            p.store("__bda_frag_q1_s0.p3", ds(2)).unwrap();
            assert_eq!(p.staged_names(), ["__bda_frag_q1_s0.p3"]);
            p.snapshot_now().unwrap();
        }
        let p = open(&dir);
        assert_eq!(
            p.report().datasets,
            ["real"],
            "staged fragment neither logged nor snapshotted"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn staged_ttl_gc_collects_leaks() {
        let dir = tmp();
        let mut options = Options::new(dir.clone());
        options.staged_ttl = Duration::from_millis(0);
        let p = DurableProvider::open(Arc::new(ReferenceProvider::new("p")), options).unwrap();
        p.store("__bda_frag_dead.p0", ds(1)).unwrap();
        assert_eq!(p.gc_staged_now(), ["__bda_frag_dead.p0"]);
        assert!(p.staged_names().is_empty());
        assert!(p.catalog().is_empty(), "engine-side copy collected too");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn change_stream_sees_commit_order_only_for_committed_ops() {
        let dir = tmp();
        let p = open(&dir);
        let stream = p.subscribe_all();
        let one = p.subscribe("t");
        p.store("t", ds(1)).unwrap();
        p.store("u", ds(2)).unwrap();
        p.remove("t");
        p.store("__bda_frag_x", ds(3)).unwrap(); // ephemeral: no delta
        let seqs: Vec<u64> = stream.drain().iter().map(|d| d.seq).collect();
        assert_eq!(seqs, [1, 2, 3]);
        let t_only: Vec<u64> = one.drain().iter().map(|d| d.seq).collect();
        assert_eq!(t_only, [1, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_append_is_not_acked() {
        let dir = tmp();
        let mut options = Options::new(dir.clone());
        options.faults = DiskFaults {
            append_fail_after: Some(1),
            ..DiskFaults::default()
        };
        {
            let p = DurableProvider::open(Arc::new(ReferenceProvider::new("p")), options).unwrap();
            p.store("ok", ds(1)).unwrap();
            let err = p.store("lost", ds(2)).unwrap_err();
            assert!(is_durability_error(&err), "{err}");
        }
        // Only the acknowledged mutation survives.
        let p = open(&dir);
        assert_eq!(p.report().datasets, ["ok"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_append_fault_then_reopen_keeps_acked_prefix() {
        let dir = tmp();
        let mut options = Options::new(dir.clone());
        options.faults = DiskFaults::torn_tail_from_seed(7);
        let torn_at = options.faults.torn_append_at.unwrap();
        {
            let p = DurableProvider::open(Arc::new(ReferenceProvider::new("p")), options).unwrap();
            let mut acked = 0;
            for i in 0..torn_at + 2 {
                if p.store(&format!("d{i}"), ds(i as i64)).is_ok() {
                    acked += 1;
                }
            }
            assert_eq!(acked as u64, torn_at - 1, "everything before the tear acks");
        }
        let p = open(&dir);
        assert!(p.report().torn_tail_truncated);
        assert_eq!(p.report().datasets.len() as u64, torn_at - 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
