//! # `bda-durability`: crash-safe providers
//!
//! The paper's providers are long-lived servers, but until this crate
//! everything they held lived in memory: a crashed `bda-served` forgot
//! its catalog and rejoined the federation empty. This crate adds the
//! missing robustness layer as a *decorator* — [`DurableProvider`]
//! wraps any [`bda_core::Provider`] and makes every acknowledged
//! mutation survive `kill -9`:
//!
//! * **Write-ahead log** ([`wal`]): every `store`/`remove` appends a
//!   checksummed, length-prefixed record (the dataset bytes reuse the
//!   columnar `BDA1` wire codec) and fsyncs per policy *before* the
//!   call returns. See DESIGN.md § Durability for the format.
//! * **Snapshots** ([`snapshot`]): a background thread compacts the log
//!   into full-catalog snapshot files and truncates covered segments,
//!   bounding replay time.
//! * **Recovery** ([`DurableProvider::open`]): newest snapshot + WAL
//!   tail, tolerating a torn final record, refusing interior corruption
//!   loudly — recovered-or-error, never silently partial.
//! * **Change streams** ([`changes`]): `subscribe(dataset)` yields
//!   committed deltas in WAL order, published at commit points.
//! * **Disk-fault injection** ([`faults`]): torn appends, ENOSPC-style
//!   refusals, and truncated snapshots, deterministic under
//!   `BDA_FAULT_SEED`, so the chaos suite can exercise all of the above.
//!
//! Only real catalog entries are durable: names under the federation's
//! staged-fragment prefix are query scratch space, excluded from log
//! and snapshots and TTL-garbage-collected.

pub mod changes;
pub mod crc;
pub mod faults;
pub mod provider;
pub mod record;
pub mod snapshot;
pub mod wal;

pub use changes::{Change, ChangeHub, ChangeStream, Delta};
pub use faults::DiskFaults;
pub use provider::{is_durability_error, DurableProvider, RecoveryReport};
pub use record::WalOp;
pub use wal::FsyncPolicy;

use std::path::{Path, PathBuf};
use std::time::Duration;

use bda_obs::MetricsHub;

/// Result alias: durability failures are [`bda_core::CoreError::Durability`].
pub type Result<T> = bda_core::provider::Result<T>;

/// The name federation staging uses for shipped fragments — kept in sync
/// with `bda_federation::planner` by a cross-crate test there.
pub const DEFAULT_EPHEMERAL_PREFIX: &str = "__bda_frag_";

/// Configuration for a [`DurableProvider`].
#[derive(Clone)]
pub struct Options {
    /// Data directory; WAL segments live in `wal/`, snapshots in
    /// `snapshots/` beneath it.
    pub dir: PathBuf,
    /// When appends reach the disk ([`FsyncPolicy::Always`] by default).
    pub fsync: FsyncPolicy,
    /// Snapshot once this many WAL bytes accumulate (64 MiB default).
    pub snapshot_every_bytes: u64,
    /// How often the background thread checks the threshold and sweeps
    /// staged datasets.
    pub snapshot_interval: Duration,
    /// Keep this many snapshot generations (the newest is the only one
    /// recovery reads; older ones are manual-restore spares).
    pub keep_snapshots: usize,
    /// Names with this prefix are query scratch: never logged or
    /// snapshotted, TTL-collected.
    pub ephemeral_prefix: String,
    /// How long a staged dataset may live before the GC assumes its
    /// query died and collects it.
    pub staged_ttl: Duration,
    /// Metrics sink (a private hub when `None`).
    pub metrics: Option<MetricsHub>,
    /// Disk-fault injection plan (none by default).
    pub faults: DiskFaults,
}

impl Options {
    /// Defaults for a data directory: always-fsync, 64 MiB snapshot
    /// threshold checked every 2 s, 2 snapshot generations, the
    /// federation staging prefix, 5-minute staged TTL.
    pub fn new(dir: impl Into<PathBuf>) -> Options {
        Options {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            snapshot_every_bytes: 64 << 20,
            snapshot_interval: Duration::from_secs(2),
            keep_snapshots: 2,
            ephemeral_prefix: DEFAULT_EPHEMERAL_PREFIX.to_string(),
            staged_ttl: Duration::from_secs(300),
            metrics: None,
            faults: DiskFaults::default(),
        }
    }

    /// The WAL directory under [`Options::dir`].
    pub fn wal_dir(&self) -> PathBuf {
        self.dir.join("wal")
    }

    /// The snapshot directory under [`Options::dir`].
    pub fn snapshot_dir(&self) -> PathBuf {
        self.dir.join("snapshots")
    }

    /// Builder-style metrics hub.
    pub fn with_metrics(mut self, hub: MetricsHub) -> Options {
        self.metrics = Some(hub);
        self
    }

    /// Builder-style fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Options {
        self.fsync = fsync;
        self
    }

    /// Builder-style fault plan.
    pub fn with_faults(mut self, faults: DiskFaults) -> Options {
        self.faults = faults;
        self
    }
}

/// Does `dir` look like a durability data directory with prior state
/// (any WAL segment or snapshot)?
pub fn has_prior_state(dir: &Path) -> bool {
    let non_empty = |p: PathBuf| {
        std::fs::read_dir(p)
            .map(|mut d| d.next().is_some())
            .unwrap_or(false)
    };
    non_empty(dir.join("wal")) || non_empty(dir.join("snapshots"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_paths_and_builders() {
        let o = Options::new("/tmp/x")
            .with_fsync(FsyncPolicy::Never)
            .with_faults(DiskFaults::enospc_from_seed(1));
        assert_eq!(o.wal_dir(), PathBuf::from("/tmp/x/wal"));
        assert_eq!(o.snapshot_dir(), PathBuf::from("/tmp/x/snapshots"));
        assert_eq!(o.fsync, FsyncPolicy::Never);
        assert!(o.faults.append_fail_after.is_some());
        assert_eq!(o.ephemeral_prefix, "__bda_frag_");
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }

    #[test]
    fn prior_state_detection() {
        let dir = std::env::temp_dir().join(format!(
            "bda-prior-state-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        assert!(!has_prior_state(&dir));
        std::fs::create_dir_all(dir.join("wal")).unwrap();
        assert!(!has_prior_state(&dir), "empty wal dir is not prior state");
        std::fs::write(dir.join("wal/seg-0000000001.wal"), b"x").unwrap();
        assert!(has_prior_state(&dir));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
