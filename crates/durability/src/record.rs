//! WAL record payloads: the logical mutations a provider acknowledges.
//!
//! A record is one committed mutation — a full-dataset store or a
//! removal. Dataset bytes reuse the columnar wire codec
//! ([`bda_storage::wire`]), so the on-disk format is the same `BDA1`
//! encoding every inter-server transfer already speaks, and replay is
//! exercised by the same decode paths the network is.
//!
//! Records are *idempotent by construction*: `Store` carries the whole
//! dataset (not a diff) and `Remove` is a plain delete, so replaying a
//! suffix of the log over a snapshot that already contains some of its
//! effects converges to the same catalog.

use bytes::{BufMut, BytesMut};

use bda_storage::wire::{decode_dataset, encode_dataset, Reader};
use bda_storage::{DataSet, IndexKind, StorageError};

/// Result alias over storage errors (corruption is a [`StorageError`]).
pub type Result<T> = std::result::Result<T, StorageError>;

/// One logical mutation, as logged.
#[derive(Debug, Clone)]
pub enum WalOp {
    /// A full-dataset store under `name` (insert or replace).
    Store {
        /// Catalog name.
        name: String,
        /// The complete dataset.
        data: DataSet,
    },
    /// Removal of `name` from the catalog.
    Remove {
        /// Catalog name.
        name: String,
    },
    /// A secondary-index build on `name.column`. The log carries the
    /// *spec*, not the index bytes — indexes are deterministic functions
    /// of the dataset, so replay rebuilds them from the recovered data
    /// (and the kill-9 fingerprint test holds the rebuild to that).
    BuildIndex {
        /// Catalog name of the indexed dataset.
        name: String,
        /// Indexed column.
        column: String,
        /// Hash or sorted.
        kind: IndexKind,
    },
}

impl WalOp {
    /// The catalog name this mutation touches.
    pub fn name(&self) -> &str {
        match self {
            WalOp::Store { name, .. } | WalOp::Remove { name } | WalOp::BuildIndex { name, .. } => {
                name
            }
        }
    }

    /// Short label for metrics and log lines.
    pub fn kind(&self) -> &'static str {
        match self {
            WalOp::Store { .. } => "store",
            WalOp::Remove { .. } => "remove",
            WalOp::BuildIndex { .. } => "build-index",
        }
    }
}

const TAG_STORE: u8 = 1;
const TAG_REMOVE: u8 = 2;
const TAG_BUILD_INDEX: u8 = 3;

/// Encode one record payload (without the record header — the WAL frame
/// adds length, checksum, and sequence number).
pub fn encode_op(op: &WalOp) -> Vec<u8> {
    let mut buf = BytesMut::new();
    match op {
        WalOp::Store { name, data } => {
            buf.put_u8(TAG_STORE);
            buf.put_u32_le(name.len() as u32);
            buf.put_slice(name.as_bytes());
            let bytes = encode_dataset(data);
            buf.put_u32_le(bytes.len() as u32);
            buf.put_slice(&bytes);
        }
        WalOp::Remove { name } => {
            buf.put_u8(TAG_REMOVE);
            buf.put_u32_le(name.len() as u32);
            buf.put_slice(name.as_bytes());
        }
        WalOp::BuildIndex { name, column, kind } => {
            buf.put_u8(TAG_BUILD_INDEX);
            buf.put_u32_le(name.len() as u32);
            buf.put_slice(name.as_bytes());
            buf.put_u8(kind.as_u8());
            buf.put_u32_le(column.len() as u32);
            buf.put_slice(column.as_bytes());
        }
    }
    buf.to_vec()
}

/// Decode one record payload; the entire input must be consumed.
pub fn decode_op(payload: &[u8]) -> Result<WalOp> {
    let mut r = Reader::new(payload);
    let tag = r.u8("wal op tag")?;
    let name = r.string("wal op name")?;
    let op = match tag {
        TAG_STORE => {
            let n = r.u32("wal dataset length")? as usize;
            let raw = r.bytes(n, "wal dataset bytes")?;
            WalOp::Store {
                name,
                data: decode_dataset(raw)?,
            }
        }
        TAG_REMOVE => WalOp::Remove { name },
        TAG_BUILD_INDEX => {
            let kind_byte = r.u8("wal index kind")?;
            let kind = IndexKind::from_u8(kind_byte)
                .ok_or_else(|| StorageError::Corrupt(format!("bad index kind {kind_byte}")))?;
            let column = r.string("wal index column")?;
            WalOp::BuildIndex { name, column, kind }
        }
        t => return Err(StorageError::Corrupt(format!("bad wal op tag {t}"))),
    };
    if r.remaining() != 0 {
        return Err(StorageError::Corrupt(format!(
            "{} trailing bytes after wal op",
            r.remaining()
        )));
    }
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_storage::Column;

    fn sample() -> DataSet {
        DataSet::from_columns(vec![
            ("k", Column::from(vec![1i64, 2, 3])),
            ("v", Column::from(vec![0.5f64, -1.0, f64::NAN])),
        ])
        .unwrap()
    }

    #[test]
    fn store_roundtrip() {
        let op = WalOp::Store {
            name: "metrics.p3".into(),
            data: sample(),
        };
        let bytes = encode_op(&op);
        match decode_op(&bytes).unwrap() {
            WalOp::Store { name, data } => {
                assert_eq!(name, "metrics.p3");
                assert!(data.same_bag(&sample()).unwrap());
            }
            other => panic!("expected store, got {other:?}"),
        }
    }

    #[test]
    fn remove_roundtrip() {
        let bytes = encode_op(&WalOp::Remove { name: "t".into() });
        match decode_op(&bytes).unwrap() {
            WalOp::Remove { name } => assert_eq!(name, "t"),
            other => panic!("expected remove, got {other:?}"),
        }
    }

    #[test]
    fn build_index_roundtrip() {
        let bytes = encode_op(&WalOp::BuildIndex {
            name: "t".into(),
            column: "k".into(),
            kind: IndexKind::Sorted,
        });
        match decode_op(&bytes).unwrap() {
            WalOp::BuildIndex { name, column, kind } => {
                assert_eq!(name, "t");
                assert_eq!(column, "k");
                assert_eq!(kind, IndexKind::Sorted);
            }
            other => panic!("expected build-index, got {other:?}"),
        }
        // A bad kind byte is corruption, not a silent default.
        let mut bad = bytes.clone();
        bad[6] = 0xEE;
        assert!(decode_op(&bad).is_err());
    }

    #[test]
    fn truncation_and_garbage_rejected() {
        let bytes = encode_op(&WalOp::Store {
            name: "t".into(),
            data: sample(),
        });
        for cut in [0, 1, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_op(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
        let mut padded = bytes.clone();
        padded.push(7);
        assert!(decode_op(&padded).is_err(), "trailing bytes must fail");
        assert!(decode_op(&[9]).is_err(), "bad tag must fail");
    }
}
