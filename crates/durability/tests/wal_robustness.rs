//! Property tests for the WAL: the log is the durability contract, so
//! its replay must honour two promises under *any* damage pattern —
//! recover exactly the acknowledged prefix when the damage is a torn
//! tail, and refuse loudly (never silently drop committed records) when
//! the damage is interior.
//!
//! Damage is modelled the way real crashes and disk faults produce it:
//! truncation at an arbitrary byte (crash mid-append), a single
//! corrupted byte anywhere in the file (bit rot, bad sector), and
//! trailing garbage past the last commit (recycled blocks).

use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bda_durability::record::{decode_op, encode_op, WalOp};
use bda_durability::wal::{replay_dir, FsyncPolicy, Wal};
use bda_durability::DiskFaults;
use bda_obs::MetricsHub;
use bda_storage::{Column, DataSet};
use proptest::prelude::*;

/// Bytes of segment header (magic + first_seq) — mirrors `wal::SEG_HEADER`.
const SEG_HEADER: u64 = 16;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bda-wal-prop-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn seg1(dir: &Path) -> PathBuf {
    dir.join("seg-0000000001.wal")
}

fn open_wal(dir: &Path) -> Wal {
    let replayed = replay_dir(dir).unwrap();
    Wal::open(
        dir,
        &replayed,
        FsyncPolicy::Never,
        DiskFaults::default(),
        MetricsHub::new(),
    )
    .unwrap()
}

/// Append `ops` into a fresh log; returns the byte offset where each
/// record *ends* in the (single) segment file.
fn write_ops(dir: &Path, ops: &[WalOp]) -> Vec<u64> {
    let mut wal = open_wal(dir);
    let mut ends = Vec::with_capacity(ops.len());
    let mut off = SEG_HEADER;
    for op in ops {
        let (_, bytes) = wal.append(op).unwrap();
        off += bytes;
        ends.push(off);
    }
    ends
}

fn same_op(a: &WalOp, b: &WalOp) -> bool {
    match (a, b) {
        (WalOp::Store { name: an, data: ad }, WalOp::Store { name: bn, data: bd }) => {
            an == bn && ad.same_bag(bd).unwrap_or(false)
        }
        (WalOp::Remove { name: an }, WalOp::Remove { name: bn }) => an == bn,
        _ => false,
    }
}

/// Assert that replay recovered exactly `want` (in order, seqs 1..=n).
fn assert_prefix(dir: &Path, want: &[WalOp]) {
    let replayed = replay_dir(dir).unwrap();
    assert_eq!(replayed.records.len(), want.len());
    for (i, ((seq, got), expected)) in replayed.records.iter().zip(want).enumerate() {
        assert_eq!(*seq, i as u64 + 1, "sequence numbers are consecutive");
        assert!(same_op(got, expected), "record {i} mismatch: {got:?}");
    }
}

fn name_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("alpha".to_string()),
        Just("beta".to_string()),
        Just("gamma".to_string()),
    ]
}

fn op_strategy() -> impl Strategy<Value = WalOp> {
    prop_oneof![
        3 => (name_strategy(), prop::collection::vec(any::<i64>(), 1..6)).prop_map(
            |(name, ks)| WalOp::Store {
                name,
                data: DataSet::from_columns(vec![("k", Column::from(ks))]).unwrap(),
            }
        ),
        1 => name_strategy().prop_map(|name| WalOp::Remove { name }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Undamaged logs replay every acknowledged op, byte-faithfully and
    /// in commit order.
    #[test]
    fn random_ops_replay_faithfully(ops in prop::collection::vec(op_strategy(), 1..16)) {
        let dir = tmp();
        write_ops(&dir, &ops);
        assert_prefix(&dir, &ops);
        let replayed = replay_dir(&dir).unwrap();
        prop_assert!(!replayed.torn_tail);
        prop_assert_eq!(replayed.last_seq, ops.len() as u64);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Cutting the segment at *any* byte — even inside the header —
    /// replays the committed prefix, and the log accepts new appends
    /// with consecutive sequence numbers afterwards.
    #[test]
    fn any_truncation_recovers_the_committed_prefix(
        ops in prop::collection::vec(op_strategy(), 1..10),
        frac in 0.0f64..1.0,
    ) {
        let dir = tmp();
        let ends = write_ops(&dir, &ops);
        let len = *ends.last().unwrap();
        let cut = ((len as f64) * frac) as u64; // always < len
        let f = OpenOptions::new().write(true).open(seg1(&dir)).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        // Exactly the records wholly under the cut survive.
        let survivors = ends.iter().filter(|e| **e <= cut).count();
        assert_prefix(&dir, &ops[..survivors]);
        let clean_cut = cut == SEG_HEADER || ends.contains(&cut);
        prop_assert_eq!(replay_dir(&dir).unwrap().torn_tail, !clean_cut);

        // The writer reopens over the damage and the sequence continues.
        let mut wal = open_wal(&dir);
        let extra = WalOp::Remove { name: "tail".into() };
        let (seq, _) = wal.append(&extra).unwrap();
        prop_assert_eq!(seq, survivors as u64 + 1);
        drop(wal);
        let mut want: Vec<WalOp> = ops[..survivors].to_vec();
        want.push(extra);
        assert_prefix(&dir, &want);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// One corrupted byte anywhere: damage confined to the *final*
    /// record is a torn tail (replay the prefix before it); damage to
    /// anything earlier — committed records or the segment header — is
    /// refused with a loud interior-corruption error.
    #[test]
    fn single_byte_corruption_is_prefix_or_loud_refusal(
        ops in prop::collection::vec(op_strategy(), 1..10),
        frac in 0.0f64..1.0,
        xor in 1u16..256,
    ) {
        let dir = tmp();
        let ends = write_ops(&dir, &ops);
        let len = *ends.last().unwrap();
        let pos = ((len as f64) * frac) as u64;
        let path = seg1(&dir);
        let mut bytes = fs::read(&path).unwrap();
        bytes[pos as usize] ^= xor as u8;
        fs::write(&path, &bytes).unwrap();

        let last_start = if ops.len() == 1 { SEG_HEADER } else { ends[ops.len() - 2] };
        if pos >= last_start {
            // Tail damage: the final record is gone, everything before
            // it survives.
            let replayed = replay_dir(&dir).unwrap();
            prop_assert!(replayed.torn_tail);
            assert_prefix(&dir, &ops[..ops.len() - 1]);
        } else {
            // Interior damage: committed data follows the failure
            // point, so replay must refuse, not truncate.
            let err = replay_dir(&dir).unwrap_err().to_string();
            prop_assert!(
                err.contains("interior corruption") || err.contains("bad segment magic"),
                "pos {} of {}: {}", pos, len, err
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Garbage past the last commit (recycled disk blocks) is classified
    /// as a torn tail: every committed record replays, and reopening the
    /// writer truncates the junk away for good.
    #[test]
    fn trailing_garbage_is_a_torn_tail(
        ops in prop::collection::vec(op_strategy(), 1..8),
        garbage in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let dir = tmp();
        write_ops(&dir, &ops);
        let mut f = OpenOptions::new().append(true).open(seg1(&dir)).unwrap();
        std::io::Write::write_all(&mut f, &garbage).unwrap();
        drop(f);

        let replayed = replay_dir(&dir).unwrap();
        prop_assert!(replayed.torn_tail);
        assert_prefix(&dir, &ops);

        let wal = open_wal(&dir); // truncates the garbage
        drop(wal);
        prop_assert!(!replay_dir(&dir).unwrap().torn_tail);
        assert_prefix(&dir, &ops);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The record codec never panics: arbitrary bytes and single-byte
    /// mutations of valid payloads decode to `Ok` or `Err`, nothing else.
    #[test]
    fn record_decode_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
        ks in prop::collection::vec(any::<i64>(), 1..6),
        frac in 0.0f64..1.0,
        xor in 1u16..256,
    ) {
        let _ = decode_op(&bytes);
        let mut valid = encode_op(&WalOp::Store {
            name: "t".into(),
            data: DataSet::from_columns(vec![("k", Column::from(ks))]).unwrap(),
        });
        let pos = ((valid.len() as f64) * frac) as usize;
        valid[pos] ^= xor as u8;
        let _ = decode_op(&valid);
    }
}
