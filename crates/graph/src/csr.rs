//! Compressed-sparse-row graphs and the native graph algorithms.
//!
//! Semantics match `bda_core::reference`'s defining implementations
//! exactly (same formulas, same distinct-edge canonicalization); only the
//! data structures differ — CSR adjacency instead of row scans.

use std::collections::HashMap;

/// A directed graph in CSR form over a compacted vertex id space.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// Sorted original vertex ids; position = compact id.
    verts: Vec<i64>,
    /// Out-edge offsets, length `verts.len() + 1`.
    offsets: Vec<usize>,
    /// Out-edge targets (compact ids), sorted within each vertex's range.
    targets: Vec<u32>,
    /// In-edge offsets (reverse graph).
    rev_offsets: Vec<usize>,
    /// In-edge sources (compact ids).
    rev_sources: Vec<u32>,
}

impl CsrGraph {
    /// Build from an edge list. Edges are deduplicated (the canonical
    /// distinct-edge set every graph operator is defined on).
    pub fn from_edges(edges: &[(i64, i64)]) -> CsrGraph {
        let mut es: Vec<(i64, i64)> = edges.to_vec();
        es.sort_unstable();
        es.dedup();
        let mut verts: Vec<i64> = es.iter().flat_map(|&(s, d)| [s, d]).collect();
        verts.sort_unstable();
        verts.dedup();
        let idx: HashMap<i64, u32> = verts
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let n = verts.len();

        let mut out_deg = vec![0usize; n];
        let mut in_deg = vec![0usize; n];
        for &(s, d) in &es {
            out_deg[idx[&s] as usize] += 1;
            in_deg[idx[&d] as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        let mut rev_offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + out_deg[i];
            rev_offsets[i + 1] = rev_offsets[i] + in_deg[i];
        }
        let mut targets = vec![0u32; es.len()];
        let mut rev_sources = vec![0u32; es.len()];
        let mut cur = offsets.clone();
        let mut rev_cur = rev_offsets.clone();
        for &(s, d) in &es {
            let (si, di) = (idx[&s] as usize, idx[&d] as usize);
            targets[cur[si]] = di as u32;
            cur[si] += 1;
            rev_sources[rev_cur[di]] = si as u32;
            rev_cur[di] += 1;
        }
        // `es` is sorted, so each vertex's targets are already sorted.
        CsrGraph {
            verts,
            offsets,
            targets,
            rev_offsets,
            rev_sources,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.verts.len()
    }

    /// Number of (distinct) edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// The original vertex ids, sorted (compact id = position).
    pub fn vertices(&self) -> &[i64] {
        &self.verts
    }

    /// Out-neighbours of compact vertex `v` (sorted compact ids).
    pub fn out_neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// In-neighbours of compact vertex `v` (compact ids).
    pub fn in_neighbors(&self, v: usize) -> &[u32] {
        &self.rev_sources[self.rev_offsets[v]..self.rev_offsets[v + 1]]
    }

    /// Out-degree of compact vertex `v`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// True when the directed edge `u -> v` (compact ids) exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.out_neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// PageRank over the distinct edge set; identical semantics to
    /// `bda_core::reference::pagerank_semantics` (no dangling
    /// redistribution, L1 convergence, last iterate at the bound).
    /// Returns `(ranks, iterations_run)` aligned with [`CsrGraph::vertices`].
    #[allow(clippy::needless_range_loop)] // CSR walk indexes several arrays
    pub fn pagerank(&self, damping: f64, max_iters: usize, epsilon: f64) -> (Vec<f64>, usize) {
        let n = self.num_vertices();
        if n == 0 {
            return (Vec::new(), 0);
        }
        let mut rank = vec![1.0 / n as f64; n];
        let mut iters = 0;
        for it in 0..max_iters {
            iters = it + 1;
            let base = (1.0 - damping) / n as f64;
            let mut next = vec![base; n];
            // Push contributions along out-edges (cache-friendly CSR walk).
            for u in 0..n {
                let deg = self.out_degree(u);
                if deg == 0 {
                    continue;
                }
                let share = damping * rank[u] / deg as f64;
                for &v in self.out_neighbors(u) {
                    next[v as usize] += share;
                }
            }
            let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            rank = next;
            if delta < epsilon {
                break;
            }
        }
        (rank, iters)
    }

    /// Connected components of the undirected view via union-find with
    /// min-id roots; always exact (equivalent to the reference's label
    /// propagation run to fixpoint). Returns the component label (minimum
    /// original vertex id in the component) per vertex.
    pub fn connected_components(&self) -> Vec<i64> {
        let n = self.num_vertices();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            // Path compression.
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for u in 0..n {
            for &v in self.out_neighbors(u) {
                let (ru, rv) = (find(&mut parent, u), find(&mut parent, v as usize));
                if ru != rv {
                    // Smaller compact id (= smaller original id, since
                    // verts are sorted) becomes the root.
                    let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
                    parent[hi] = lo;
                }
            }
        }
        (0..n).map(|v| self.verts[find(&mut parent, v)]).collect()
    }

    /// Directed 3-cycle count (each cycle counted once); identical to
    /// `bda_core::reference::triangles_semantics`.
    pub fn triangle_count(&self) -> i64 {
        let mut count = 0i64;
        for a in 0..self.num_vertices() {
            for &b in self.out_neighbors(a) {
                for &c in self.out_neighbors(b as usize) {
                    if self.has_edge(c as usize, a) {
                        count += 1;
                    }
                }
            }
        }
        count / 3
    }

    /// Breadth-first levels from an original vertex id; `None` per vertex
    /// when unreachable. Returns pairs `(vertex, Option<level>)`.
    pub fn bfs_levels(&self, source: i64) -> Vec<(i64, Option<u32>)> {
        let n = self.num_vertices();
        let src = match self.verts.binary_search(&source) {
            Ok(i) => i,
            Err(_) => return self.verts.iter().map(|&v| (v, None)).collect(),
        };
        let mut level: Vec<Option<u32>> = vec![None; n];
        level[src] = Some(0);
        let mut frontier = vec![src];
        let mut depth = 0u32;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in self.out_neighbors(u) {
                    let v = v as usize;
                    if level[v].is_none() {
                        level[v] = Some(depth);
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        self.verts.iter().zip(level).map(|(&v, l)| (v, l)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::reference::{components_semantics, pagerank_semantics, triangles_semantics};

    fn sample_edges() -> Vec<(i64, i64)> {
        vec![
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 2),
            (0, 1), // duplicate
            (10, 11),
            (11, 10),
        ]
    }

    #[test]
    fn construction_dedups_and_compacts() {
        let g = CsrGraph::from_edges(&sample_edges());
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 7);
        assert_eq!(g.vertices(), &[0, 1, 2, 3, 10, 11]);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(2), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.in_neighbors(0), &[2]);
    }

    #[test]
    fn pagerank_matches_reference_semantics() {
        let edges = sample_edges();
        let g = CsrGraph::from_edges(&edges);
        let (ours, _) = g.pagerank(0.85, 100, 1e-12);
        let mut es = edges.clone();
        es.sort_unstable();
        es.dedup();
        let oracle = pagerank_semantics(&es, g.vertices(), 0.85, 100, 1e-12);
        for (a, b) in ours.iter().zip(&oracle) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        let total: f64 = ours.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn components_match_reference_semantics() {
        let edges = sample_edges();
        let g = CsrGraph::from_edges(&edges);
        let ours = g.connected_components();
        let mut es = edges.clone();
        es.sort_unstable();
        es.dedup();
        let oracle = components_semantics(&es, g.vertices(), 100);
        assert_eq!(ours, oracle);
        assert_eq!(ours, vec![0, 0, 0, 0, 10, 10]);
    }

    #[test]
    fn triangles_match_reference_semantics() {
        let edges = sample_edges();
        let g = CsrGraph::from_edges(&edges);
        let mut es = edges.clone();
        es.sort_unstable();
        es.dedup();
        assert_eq!(g.triangle_count(), triangles_semantics(&es));
        assert_eq!(g.triangle_count(), 1);
    }

    #[test]
    fn bfs_levels_and_unreachable() {
        let g = CsrGraph::from_edges(&sample_edges());
        let levels: HashMap<i64, Option<u32>> = g.bfs_levels(0).into_iter().collect();
        assert_eq!(levels[&0], Some(0));
        assert_eq!(levels[&1], Some(1));
        assert_eq!(levels[&2], Some(2));
        assert_eq!(levels[&3], Some(3));
        assert_eq!(levels[&10], None);
        // Unknown source: everything unreachable.
        assert!(g.bfs_levels(999).iter().all(|(_, l)| l.is_none()));
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(&[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.pagerank(0.85, 10, 1e-6).0, Vec::<f64>::new());
        assert_eq!(g.connected_components(), Vec::<i64>::new());
        assert_eq!(g.triangle_count(), 0);
    }

    #[test]
    fn self_loops_and_negative_ids() {
        let g = CsrGraph::from_edges(&[(-5, -5), (-5, 3)]);
        assert_eq!(g.vertices(), &[-5, 3]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.connected_components(), vec![-5, -5]);
    }
}
