//! # `bda-graph`: "GraphStore", the graph-analytics back-end Provider
//!
//! A vertex-centric graph engine: edge lists compile to CSR adjacency and
//! the graph *intent* operators (`PageRank`, `ConnectedComponents`,
//! `TriangleCount`, `Degrees`) run natively — including the paper's
//! "control iteration" executed **inside** the server, so a federated
//! PageRank costs one round trip instead of one per iteration
//! (experiment F4).
//!
//! Deliberately narrow capabilities: scans, literal edge lists, and the
//! graph intents. Everything else must come from (or go to) another
//! provider.

pub mod csr;

use bda_core::infer::{
    bfs_schema, components_schema, degrees_schema, pagerank_schema, triangles_schema,
};
use bda_core::reference::edge_list;
use bda_core::{CapabilitySet, CoreError, GraphOp, OpKind, Plan, Provider};
use bda_storage::{DataSet, Row, Schema, Value};
use parking_lot::RwLock;
use std::collections::BTreeMap;

pub use csr::CsrGraph;

/// The graph engine.
pub struct GraphEngine {
    name: String,
    datasets: RwLock<BTreeMap<String, DataSet>>,
}

impl GraphEngine {
    /// An empty engine named `name`.
    pub fn new(name: impl Into<String>) -> GraphEngine {
        GraphEngine {
            name: name.into(),
            datasets: RwLock::new(BTreeMap::new()),
        }
    }

    /// The capability set of every graph engine instance.
    pub fn static_capabilities() -> CapabilitySet {
        CapabilitySet::from_ops(&[
            OpKind::Scan,
            OpKind::Values,
            OpKind::PageRank,
            OpKind::ConnectedComponents,
            OpKind::TriangleCount,
            OpKind::Degrees,
            OpKind::BfsLevels,
        ])
    }

    fn eval(&self, plan: &Plan) -> Result<DataSet, CoreError> {
        // Per-operator tracing when a scope is installed
        // (`execute_traced`); one inert thread-local check otherwise.
        let mut node = bda_obs::scope::enter(|| format!("op:{}", plan.op_kind().name()));
        let out = self.eval_node(plan);
        if let (Some(n), Ok(ds)) = (node.as_mut(), &out) {
            n.rows(ds.num_rows());
        }
        out
    }

    fn eval_node(&self, plan: &Plan) -> Result<DataSet, CoreError> {
        match plan {
            Plan::Scan { dataset, schema } => {
                let map = self.datasets.read();
                let ds = map
                    .get(dataset)
                    .ok_or_else(|| CoreError::UnknownDataset(dataset.clone()))?;
                if ds.schema() != schema {
                    return Err(CoreError::Plan(format!(
                        "scan `{dataset}`: bound schema {} does not match stored schema {}",
                        schema,
                        ds.schema()
                    )));
                }
                Ok(ds.clone())
            }
            Plan::Values { schema, rows } => {
                DataSet::from_rows(schema.clone(), rows).map_err(Into::into)
            }
            Plan::Graph(g) => {
                bda_core::infer_schema(plan)?;
                let edges = self.eval(g.edges())?;
                let (es, _) = edge_list(&edges)?;
                let graph = CsrGraph::from_edges(&es);
                self.run_graph_op(g, &graph)
            }
            other => Err(CoreError::Unsupported {
                provider: self.name.clone(),
                op: other.op_kind().name().into(),
            }),
        }
    }

    fn run_graph_op(&self, g: &GraphOp, graph: &CsrGraph) -> Result<DataSet, CoreError> {
        match g {
            GraphOp::PageRank {
                damping,
                max_iters,
                epsilon,
                ..
            } => {
                let (ranks, _) = graph.pagerank(*damping, *max_iters, *epsilon);
                let rows: Vec<Row> = graph
                    .vertices()
                    .iter()
                    .zip(ranks)
                    .map(|(&v, r)| Row(vec![Value::Int(v), Value::Float(r)]))
                    .collect();
                DataSet::from_rows(pagerank_schema(), &rows).map_err(Into::into)
            }
            GraphOp::ConnectedComponents { .. } => {
                let comp = graph.connected_components();
                let rows: Vec<Row> = graph
                    .vertices()
                    .iter()
                    .zip(comp)
                    .map(|(&v, c)| Row(vec![Value::Int(v), Value::Int(c)]))
                    .collect();
                DataSet::from_rows(components_schema(), &rows).map_err(Into::into)
            }
            GraphOp::TriangleCount { .. } => {
                let n = graph.triangle_count();
                DataSet::from_rows(triangles_schema(), &[Row(vec![Value::Int(n)])])
                    .map_err(Into::into)
            }
            GraphOp::Degrees { .. } => {
                let rows: Vec<Row> = (0..graph.num_vertices())
                    .map(|v| {
                        Row(vec![
                            Value::Int(graph.vertices()[v]),
                            Value::Int(graph.out_degree(v) as i64),
                        ])
                    })
                    .collect();
                DataSet::from_rows(degrees_schema(), &rows).map_err(Into::into)
            }
            GraphOp::BfsLevels { source, .. } => {
                let rows: Vec<Row> = graph
                    .bfs_levels(*source)
                    .into_iter()
                    .filter_map(|(v, l)| l.map(|l| Row(vec![Value::Int(v), Value::Int(l as i64)])))
                    .collect();
                DataSet::from_rows(bfs_schema(), &rows).map_err(Into::into)
            }
        }
    }
}

impl Provider for GraphEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> CapabilitySet {
        Self::static_capabilities()
    }

    fn catalog(&self) -> Vec<(String, Schema)> {
        self.datasets
            .read()
            .iter()
            .map(|(n, ds)| (n.clone(), ds.schema().clone()))
            .collect()
    }

    fn execute(&self, plan: &Plan) -> Result<DataSet, CoreError> {
        let unsupported = self.capabilities().unsupported_in(plan);
        if !unsupported.is_empty() {
            return Err(CoreError::Unsupported {
                provider: self.name.clone(),
                op: unsupported
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", "),
            });
        }
        self.eval(plan)
    }

    fn store(&self, name: &str, data: DataSet) -> Result<(), CoreError> {
        self.datasets.write().insert(name.to_string(), data);
        Ok(())
    }

    fn remove(&self, name: &str) {
        self.datasets.write().remove(name);
    }

    fn row_count_of(&self, name: &str) -> Option<usize> {
        self.datasets.read().get(name).map(|ds| ds.num_rows())
    }

    fn execute_traced(
        &self,
        plan: &Plan,
        ctx: &bda_obs::TraceContext,
    ) -> Result<(DataSet, Vec<bda_obs::Span>), CoreError> {
        let tracer = bda_obs::Tracer::with_trace_id(ctx.trace_id);
        let _scope = bda_obs::scope::install(&tracer, &self.name, None);
        let out = self.execute(plan)?;
        Ok((out, tracer.take_spans()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::infer::edge_schema;
    use bda_core::reference::evaluate;
    use std::collections::HashMap;

    fn edges() -> DataSet {
        let rows: Vec<Row> = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 2), (4, 0), (0, 4)]
            .iter()
            .map(|&(s, d)| Row(vec![Value::Int(s), Value::Int(d)]))
            .collect();
        DataSet::from_rows(edge_schema(), &rows).unwrap()
    }

    fn engine() -> GraphEngine {
        let e = GraphEngine::new("graph");
        e.store("edges", edges()).unwrap();
        e
    }

    fn check_against_reference(g: GraphOp) {
        let e = engine();
        let plan = Plan::Graph(g);
        let ours = e.execute(&plan).unwrap();
        let mut src = HashMap::new();
        src.insert("edges".to_string(), edges());
        let oracle = evaluate(&plan, &src).unwrap();
        assert_eq!(ours.schema(), oracle.schema());
        // Float tolerance for pagerank, exact otherwise.
        let a = ours.sorted_rows().unwrap();
        let b = oracle.sorted_rows().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            for (vx, vy) in x.0.iter().zip(&y.0) {
                match (vx, vy) {
                    (Value::Float(fx), Value::Float(fy)) => {
                        assert!((fx - fy).abs() < 1e-9, "{fx} vs {fy}")
                    }
                    _ => assert_eq!(vx, vy),
                }
            }
        }
    }

    #[test]
    fn pagerank_matches_reference() {
        check_against_reference(GraphOp::PageRank {
            edges: Plan::scan("edges", edge_schema()).boxed(),
            damping: 0.85,
            max_iters: 100,
            epsilon: 1e-12,
        });
    }

    #[test]
    fn components_match_reference() {
        check_against_reference(GraphOp::ConnectedComponents {
            edges: Plan::scan("edges", edge_schema()).boxed(),
            max_iters: 50,
        });
    }

    #[test]
    fn triangles_and_degrees_match_reference() {
        check_against_reference(GraphOp::TriangleCount {
            edges: Plan::scan("edges", edge_schema()).boxed(),
        });
        check_against_reference(GraphOp::Degrees {
            edges: Plan::scan("edges", edge_schema()).boxed(),
        });
    }

    #[test]
    fn bfs_levels_match_reference() {
        check_against_reference(GraphOp::BfsLevels {
            edges: Plan::scan("edges", edge_schema()).boxed(),
            source: 4,
        });
        // Unreachable source yields an empty result on both paths.
        check_against_reference(GraphOp::BfsLevels {
            edges: Plan::scan("edges", edge_schema()).boxed(),
            source: 12345,
        });
    }

    #[test]
    fn rejects_relational_plans() {
        let e = engine();
        let plan =
            Plan::scan("edges", edge_schema()).select(bda_core::col("src").gt(bda_core::lit(0i64)));
        assert!(matches!(
            e.execute(&plan),
            Err(CoreError::Unsupported { .. })
        ));
    }
}
