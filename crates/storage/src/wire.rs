//! The wire codec: a compact hand-rolled binary encoding for every storage
//! type.
//!
//! Every inter-server transfer in the federation layer serializes through
//! this module, so the byte counts the experiments report (desideratum 4,
//! "Server Interoperation") are the bytes this codec actually produces —
//! not estimates.
//!
//! Format notes: little-endian fixed-width integers, `u32` length prefixes,
//! one-byte type tags. Decoding is fully checked and returns
//! [`StorageError::Corrupt`] on malformed input, never panics.

use bytes::{BufMut, BytesMut};

use crate::bitmap::Bitmap;
use crate::chunk::{Chunk, RowsChunk};
use crate::column::Column;
use crate::dataset::DataSet;
use crate::dense::{DenseChunk, DimBox};
use crate::error::StorageError;
use crate::schema::{Field, Role, Schema};
use crate::types::DataType;
use crate::value::Value;
use crate::Result;

/// A checked, position-tracking reader over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn need(&self, n: usize, what: &str) -> Result<()> {
        if self.remaining() < n {
            Err(StorageError::Corrupt(format!(
                "unexpected end of input reading {what}: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )))
        } else {
            Ok(())
        }
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8> {
        self.need(1, what)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self, what: &str) -> Result<u32> {
        self.need(4, what)?;
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        Ok(v)
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self, what: &str) -> Result<u64> {
        self.need(8, what)?;
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(v)
    }

    /// Read a little-endian i64.
    pub fn i64(&mut self, what: &str) -> Result<i64> {
        Ok(self.u64(what)? as i64)
    }

    /// Read a little-endian f64.
    pub fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        self.need(n, what)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self, what: &str) -> Result<String> {
        let n = self.u32(what)? as usize;
        let raw = self.bytes(n, what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| StorageError::Corrupt(format!("invalid UTF-8 in {what}")))
    }

    /// A sanity bound on decoded collection lengths: no single collection
    /// may claim more elements than there are remaining bytes (every
    /// element costs at least one byte in this format). Guards against
    /// allocation bombs from corrupt length prefixes.
    pub fn checked_len(&self, n: u32, what: &str) -> Result<usize> {
        let n = n as usize;
        // Bools are the densest element at 1 byte each; bitmap words are 8.
        if n > self.remaining().saturating_mul(64).saturating_add(64) {
            return Err(StorageError::Corrupt(format!(
                "implausible length {n} for {what} with {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

/// Encode a scalar value.
pub fn encode_value(v: &Value, buf: &mut BytesMut) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Int(x) => {
            buf.put_u8(1);
            buf.put_i64_le(*x);
        }
        Value::Float(x) => {
            buf.put_u8(2);
            buf.put_u64_le(x.to_bits());
        }
        Value::Bool(x) => {
            buf.put_u8(3);
            buf.put_u8(*x as u8);
        }
        Value::Str(x) => {
            buf.put_u8(4);
            put_string(buf, x);
        }
    }
}

/// Decode a scalar value.
pub fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    match r.u8("value tag")? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Int(r.i64("int value")?)),
        2 => Ok(Value::Float(r.f64("float value")?)),
        3 => Ok(Value::Bool(r.u8("bool value")? != 0)),
        4 => Ok(Value::Str(r.string("string value")?)),
        t => Err(StorageError::Corrupt(format!("bad value tag {t}"))),
    }
}

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

fn encode_opt_i64(v: Option<i64>, buf: &mut BytesMut) {
    match v {
        Some(x) => {
            buf.put_u8(1);
            buf.put_i64_le(x);
        }
        None => buf.put_u8(0),
    }
}

fn decode_opt_i64(r: &mut Reader<'_>, what: &str) -> Result<Option<i64>> {
    match r.u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(r.i64(what)?)),
        t => Err(StorageError::Corrupt(format!(
            "bad option tag {t} in {what}"
        ))),
    }
}

/// Encode a schema.
pub fn encode_schema(s: &Schema, buf: &mut BytesMut) {
    buf.put_u32_le(s.len() as u32);
    for f in s.fields() {
        put_string(buf, &f.name);
        buf.put_u8(f.dtype.wire_tag());
        match f.role {
            Role::Value => buf.put_u8(0),
            Role::Dimension { lo, hi } => {
                buf.put_u8(1);
                encode_opt_i64(lo, buf);
                encode_opt_i64(hi, buf);
            }
        }
    }
}

/// Decode a schema.
pub fn decode_schema(r: &mut Reader<'_>) -> Result<Schema> {
    let raw = r.u32("schema field count")?;
    let n = r.checked_len(raw, "schema fields")?;
    let mut fields = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = r.string("field name")?;
        let dtype = DataType::from_wire_tag(r.u8("field dtype")?)
            .ok_or_else(|| StorageError::Corrupt("bad dtype tag".into()))?;
        let role = match r.u8("field role")? {
            0 => Role::Value,
            1 => Role::Dimension {
                lo: decode_opt_i64(r, "dim lo")?,
                hi: decode_opt_i64(r, "dim hi")?,
            },
            t => return Err(StorageError::Corrupt(format!("bad role tag {t}"))),
        };
        fields.push(Field { name, dtype, role });
    }
    Schema::new(fields).map_err(|e| StorageError::Corrupt(format!("invalid schema on wire: {e}")))
}

// ---------------------------------------------------------------------------
// Bitmap & Column
// ---------------------------------------------------------------------------

/// Encode a bitmap.
pub fn encode_bitmap(bm: &Bitmap, buf: &mut BytesMut) {
    buf.put_u32_le(bm.len() as u32);
    // Re-pack via push to avoid exposing the word representation.
    let mut word = 0u64;
    let mut nbits = 0;
    for b in bm.iter() {
        if b {
            word |= 1 << nbits;
        }
        nbits += 1;
        if nbits == 64 {
            buf.put_u64_le(word);
            word = 0;
            nbits = 0;
        }
    }
    if nbits > 0 {
        buf.put_u64_le(word);
    }
}

/// Decode a bitmap.
pub fn decode_bitmap(r: &mut Reader<'_>) -> Result<Bitmap> {
    let raw = r.u32("bitmap length")?;
    let len = r.checked_len(raw, "bitmap")?;
    let nwords = len.div_ceil(64);
    let mut bm = Bitmap::filled(len, false);
    let mut i = 0usize;
    for _ in 0..nwords {
        let word = r.u64("bitmap word")?;
        for b in 0..64 {
            if i >= len {
                break;
            }
            if word >> b & 1 == 1 {
                bm.set(i, true);
            }
            i += 1;
        }
    }
    Ok(bm)
}

/// Encode a column.
pub fn encode_column(c: &Column, buf: &mut BytesMut) {
    buf.put_u8(c.dtype().wire_tag());
    buf.put_u32_le(c.len() as u32);
    match c.validity() {
        Some(bm) => {
            buf.put_u8(1);
            encode_bitmap(bm, buf);
        }
        None => buf.put_u8(0),
    }
    match c {
        Column::Int64(d, _) => {
            for &v in d {
                buf.put_i64_le(v);
            }
        }
        Column::Float64(d, _) => {
            for &v in d {
                buf.put_u64_le(v.to_bits());
            }
        }
        Column::Bool(d, _) => {
            for &v in d {
                buf.put_u8(v as u8);
            }
        }
        Column::Utf8(d, _) => {
            for v in d {
                put_string(buf, v);
            }
        }
    }
}

/// Decode a column.
pub fn decode_column(r: &mut Reader<'_>) -> Result<Column> {
    let dtype = DataType::from_wire_tag(r.u8("column dtype")?)
        .ok_or_else(|| StorageError::Corrupt("bad column dtype tag".into()))?;
    let raw = r.u32("column length")?;
    let len = r.checked_len(raw, "column")?;
    let validity = match r.u8("validity flag")? {
        0 => None,
        1 => {
            let bm = decode_bitmap(r)?;
            if bm.len() != len {
                return Err(StorageError::Corrupt(format!(
                    "validity length {} != column length {len}",
                    bm.len()
                )));
            }
            Some(bm)
        }
        t => return Err(StorageError::Corrupt(format!("bad validity flag {t}"))),
    };
    Ok(match dtype {
        DataType::Int64 => {
            let mut d = Vec::with_capacity(len);
            for _ in 0..len {
                d.push(r.i64("i64 slot")?);
            }
            Column::Int64(d, validity)
        }
        DataType::Float64 => {
            let mut d = Vec::with_capacity(len);
            for _ in 0..len {
                d.push(r.f64("f64 slot")?);
            }
            Column::Float64(d, validity)
        }
        DataType::Bool => {
            let mut d = Vec::with_capacity(len);
            for _ in 0..len {
                d.push(r.u8("bool slot")? != 0);
            }
            Column::Bool(d, validity)
        }
        DataType::Utf8 => {
            let mut d = Vec::with_capacity(len.min(u16::MAX as usize));
            for _ in 0..len {
                d.push(r.string("utf8 slot")?);
            }
            Column::Utf8(d, validity)
        }
    })
}

// ---------------------------------------------------------------------------
// Chunks & DataSet
// ---------------------------------------------------------------------------

/// Encode a coordinate-list chunk.
pub fn encode_rows_chunk(c: &RowsChunk, buf: &mut BytesMut) {
    buf.put_u32_le(c.columns().len() as u32);
    for col in c.columns() {
        encode_column(col, buf);
    }
}

/// Decode a coordinate-list chunk.
pub fn decode_rows_chunk(r: &mut Reader<'_>) -> Result<RowsChunk> {
    let raw = r.u32("column count")?;
    let n = r.checked_len(raw, "rows chunk columns")?;
    let mut cols = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        cols.push(decode_column(r)?);
    }
    RowsChunk::new(cols).map_err(|e| StorageError::Corrupt(format!("bad rows chunk: {e}")))
}

/// Encode a box.
pub fn encode_box(b: &DimBox, buf: &mut BytesMut) {
    buf.put_u32_le(b.ndims() as u32);
    for d in 0..b.ndims() {
        buf.put_i64_le(b.lo[d]);
        buf.put_i64_le(b.hi[d]);
    }
}

/// Decode a box.
pub fn decode_box(r: &mut Reader<'_>) -> Result<DimBox> {
    let raw = r.u32("box rank")?;
    let n = r.checked_len(raw, "box")?;
    let mut lo = Vec::with_capacity(n.min(64));
    let mut hi = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        lo.push(r.i64("box lo")?);
        hi.push(r.i64("box hi")?);
    }
    DimBox::new(lo, hi).map_err(|e| StorageError::Corrupt(format!("bad box: {e}")))
}

/// Encode a dense chunk.
pub fn encode_dense_chunk(c: &DenseChunk, buf: &mut BytesMut) {
    encode_box(c.bounds(), buf);
    buf.put_u32_le(c.columns().len() as u32);
    for col in c.columns() {
        encode_column(col, buf);
    }
    match c.present() {
        Some(bm) => {
            buf.put_u8(1);
            encode_bitmap(bm, buf);
        }
        None => buf.put_u8(0),
    }
}

/// Decode a dense chunk.
pub fn decode_dense_chunk(r: &mut Reader<'_>) -> Result<DenseChunk> {
    let bounds = decode_box(r)?;
    let raw = r.u32("dense column count")?;
    let n = r.checked_len(raw, "dense columns")?;
    let mut cols = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        cols.push(decode_column(r)?);
    }
    let present = match r.u8("present flag")? {
        0 => None,
        1 => Some(decode_bitmap(r)?),
        t => return Err(StorageError::Corrupt(format!("bad present flag {t}"))),
    };
    DenseChunk::new(bounds, cols, present)
        .map_err(|e| StorageError::Corrupt(format!("bad dense chunk: {e}")))
}

/// Encode a chunk.
pub fn encode_chunk(c: &Chunk, buf: &mut BytesMut) {
    match c {
        Chunk::Rows(rc) => {
            buf.put_u8(0);
            encode_rows_chunk(rc, buf);
        }
        Chunk::Dense(dc) => {
            buf.put_u8(1);
            encode_dense_chunk(dc, buf);
        }
    }
}

/// Decode a chunk.
pub fn decode_chunk(r: &mut Reader<'_>) -> Result<Chunk> {
    match r.u8("chunk tag")? {
        0 => Ok(Chunk::Rows(decode_rows_chunk(r)?)),
        1 => Ok(Chunk::Dense(decode_dense_chunk(r)?)),
        t => Err(StorageError::Corrupt(format!("bad chunk tag {t}"))),
    }
}

/// Magic prefix on dataset messages (detects cross-protocol confusion).
const DATASET_MAGIC: &[u8; 4] = b"BDA1";

/// Encode a whole dataset into a fresh buffer.
pub fn encode_dataset(ds: &DataSet) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64 + ds.estimated_bytes());
    buf.put_slice(DATASET_MAGIC);
    encode_schema(ds.schema(), &mut buf);
    buf.put_u32_le(ds.chunks().len() as u32);
    for c in ds.chunks() {
        encode_chunk(c, &mut buf);
    }
    buf.to_vec()
}

/// Decode a dataset; the entire input must be consumed.
pub fn decode_dataset(bytes: &[u8]) -> Result<DataSet> {
    let mut r = Reader::new(bytes);
    let magic = r.bytes(4, "magic")?;
    if magic != DATASET_MAGIC {
        return Err(StorageError::Corrupt("bad dataset magic".into()));
    }
    let schema = decode_schema(&mut r)?;
    let raw = r.u32("chunk count")?;
    let n = r.checked_len(raw, "chunks")?;
    let mut chunks = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        chunks.push(decode_chunk(&mut r)?);
    }
    if r.remaining() != 0 {
        return Err(StorageError::Corrupt(format!(
            "{} trailing bytes after dataset",
            r.remaining()
        )));
    }
    Ok(DataSet::new(schema, chunks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::matrix_dataset;

    fn sample_relation() -> DataSet {
        DataSet::from_columns(vec![
            ("k", Column::from(vec![1i64, 2, 3])),
            ("name", Column::from(vec!["alpha", "", "γβ"])),
            ("score", Column::from(vec![1.5f64, f64::NAN, -0.0])),
        ])
        .unwrap()
    }

    #[test]
    fn value_roundtrip() {
        let vals = [
            Value::Null,
            Value::Int(-5),
            Value::Float(2.5),
            Value::Float(f64::INFINITY),
            Value::Bool(true),
            Value::from("héllo"),
        ];
        for v in &vals {
            let mut buf = BytesMut::new();
            encode_value(v, &mut buf);
            let mut r = Reader::new(&buf);
            let back = decode_value(&mut r).unwrap();
            assert_eq!(&back, v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn schema_roundtrip() {
        let s = Schema::new(vec![
            Field::dimension_bounded("i", -2, 7),
            Field::dimension("j"),
            Field::value("v", DataType::Float64),
        ])
        .unwrap();
        let mut buf = BytesMut::new();
        encode_schema(&s, &mut buf);
        let back = decode_schema(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn column_with_nulls_roundtrip() {
        let c = Column::from_values(
            DataType::Utf8,
            &[Value::from("a"), Value::Null, Value::from("c")],
        )
        .unwrap();
        let mut buf = BytesMut::new();
        encode_column(&c, &mut buf);
        let back = decode_column(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn dataset_roundtrip_rows() {
        let ds = sample_relation();
        let bytes = encode_dataset(&ds);
        let back = decode_dataset(&bytes).unwrap();
        // NaN-containing columns: compare via sorted rows (total order).
        assert_eq!(back.schema(), ds.schema());
        assert_eq!(
            back.sorted_rows().unwrap().len(),
            ds.sorted_rows().unwrap().len()
        );
        assert!(back.same_bag(&ds).unwrap());
    }

    #[test]
    fn dataset_roundtrip_dense() {
        let ds = matrix_dataset(3, 4, (0..12).map(|i| i as f64).collect()).unwrap();
        let bytes = encode_dataset(&ds);
        let back = decode_dataset(&bytes).unwrap();
        assert!(back.same_bag(&ds).unwrap());
        // Layout must be preserved, not just the bag.
        assert!(matches!(back.chunks()[0], Chunk::Dense(_)));
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut bytes = encode_dataset(&sample_relation());
        bytes[0] = b'X';
        assert!(matches!(
            decode_dataset(&bytes),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = encode_dataset(&sample_relation());
        for cut in [3, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_dataset(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_dataset(&sample_relation());
        bytes.push(0);
        assert!(matches!(
            decode_dataset(&bytes),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn implausible_length_rejected_without_allocation() {
        // A column claiming u32::MAX slots in a tiny buffer must fail fast.
        let mut buf = BytesMut::new();
        buf.put_u8(DataType::Int64.wire_tag());
        buf.put_u32_le(u32::MAX);
        buf.put_u8(0);
        assert!(decode_column(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn bitmap_roundtrip_cross_word() {
        let bits: Vec<bool> = (0..130).map(|i| i % 7 == 0).collect();
        let bm = Bitmap::from_bools(&bits);
        let mut buf = BytesMut::new();
        encode_bitmap(&bm, &mut buf);
        let back = decode_bitmap(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, bm);
    }
}
