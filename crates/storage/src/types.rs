//! Logical data types of the fused tabular/array model.

use std::fmt;

/// The scalar types the algebra operates on.
///
/// The set is intentionally small — the paper's point is the *algebra*, not
/// a rich type system — but it covers the classes that matter for the
/// desiderata: integers (dimension coordinates and keys), floats (array and
/// linear-algebra payloads), booleans (predicates) and strings (relational
/// attributes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer. The only type permitted for dimension fields.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Utf8,
}

impl DataType {
    /// All data types, in codec-tag order.
    pub const ALL: [DataType; 4] = [
        DataType::Int64,
        DataType::Float64,
        DataType::Bool,
        DataType::Utf8,
    ];

    /// True for types on which arithmetic (`+ - * /`) is defined.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }

    /// True if a value of `self` can be implicitly widened to `other`
    /// (identity, or `Int64 -> Float64`).
    pub fn coerces_to(self, other: DataType) -> bool {
        self == other || (self == DataType::Int64 && other == DataType::Float64)
    }

    /// The common numeric supertype of two types, if one exists.
    ///
    /// `Int64 ⊔ Int64 = Int64`, any mix involving `Float64` yields
    /// `Float64`; non-numeric operands have no numeric supertype.
    pub fn numeric_join(self, other: DataType) -> Option<DataType> {
        match (self, other) {
            (DataType::Int64, DataType::Int64) => Some(DataType::Int64),
            (a, b) if a.is_numeric() && b.is_numeric() => Some(DataType::Float64),
            _ => None,
        }
    }

    /// Stable single-byte tag used by the wire codec.
    pub fn wire_tag(self) -> u8 {
        match self {
            DataType::Int64 => 0,
            DataType::Float64 => 1,
            DataType::Bool => 2,
            DataType::Utf8 => 3,
        }
    }

    /// Inverse of [`DataType::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<DataType> {
        DataType::ALL.get(tag as usize).copied()
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "i64",
            DataType::Float64 => "f64",
            DataType::Bool => "bool",
            DataType::Utf8 => "utf8",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_tags_roundtrip() {
        for dt in DataType::ALL {
            assert_eq!(DataType::from_wire_tag(dt.wire_tag()), Some(dt));
        }
        assert_eq!(DataType::from_wire_tag(200), None);
    }

    #[test]
    fn coercion_rules() {
        assert!(DataType::Int64.coerces_to(DataType::Float64));
        assert!(!DataType::Float64.coerces_to(DataType::Int64));
        assert!(DataType::Utf8.coerces_to(DataType::Utf8));
        assert!(!DataType::Bool.coerces_to(DataType::Int64));
    }

    #[test]
    fn numeric_join_table() {
        use DataType::*;
        assert_eq!(Int64.numeric_join(Int64), Some(Int64));
        assert_eq!(Int64.numeric_join(Float64), Some(Float64));
        assert_eq!(Float64.numeric_join(Int64), Some(Float64));
        assert_eq!(Float64.numeric_join(Float64), Some(Float64));
        assert_eq!(Utf8.numeric_join(Int64), None);
        assert_eq!(Bool.numeric_join(Bool), None);
    }

    #[test]
    fn numeric_predicate() {
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Bool.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
    }
}
