//! Load-time statistics: per-column zone maps and table-level stats.
//!
//! A [`ZoneMap`] summarizes one column of one chunk — min/max over the
//! non-null values (ordered by [`Value::total_cmp`], the *same* total
//! order the expression engine compares with, which is what makes prune
//! decisions sound), the null count, and a distinct-count estimate from
//! a deterministic KMV sketch. [`ChunkStats`] is one zone map per
//! column; [`TableStats`] is the whole-table roll-up (row count plus a
//! merged zone map per column) that providers expose through
//! `Provider::table_stats`.
//!
//! The decision logic lives here too ([`ZoneMap::may_match_cmp`]):
//! given a comparison against a non-null literal, can *any* row in the
//! zone satisfy it? The contract is completeness, never precision — a
//! `true` answer may be wrong (the caller re-evaluates the predicate),
//! a `false` answer must be provably right. NaN needs no special case:
//! `total_cmp` sorts it after every other float, so a chunk containing
//! NaN simply has NaN as its max, and the engine's own comparisons use
//! the identical order.

use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

use crate::chunk::RowsChunk;
use crate::column::Column;
use crate::dataset::DataSet;
use crate::value::Value;
use crate::Result;

/// Comparison operators a zone map can reason about. Consumers map
/// their expression-level operators onto these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator with its operands swapped (`lit OP col` as
    /// `col OP lit`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// Number of minimum hashes the KMV distinct sketch keeps.
const KMV_K: usize = 64;

/// A deterministic k-minimum-values distinct-count sketch. Hashing
/// uses [`DefaultHasher`] with its fixed default keys, so the same
/// values produce the same sketch in every process — rebuilt statistics
/// after recovery match the originals exactly.
#[derive(Debug, Clone, Default)]
pub struct NdvSketch {
    hashes: BTreeSet<u64>,
}

impl NdvSketch {
    /// An empty sketch.
    pub fn new() -> NdvSketch {
        NdvSketch::default()
    }

    /// Fold one (non-null) value in.
    pub fn insert(&mut self, v: &Value) {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        self.hashes.insert(h.finish());
        if self.hashes.len() > KMV_K {
            let largest = *self.hashes.iter().next_back().expect("non-empty");
            self.hashes.remove(&largest);
        }
    }

    /// Merge another sketch in (union of the underlying sets).
    pub fn merge(&mut self, other: &NdvSketch) {
        for h in &other.hashes {
            self.hashes.insert(*h);
        }
        while self.hashes.len() > KMV_K {
            let largest = *self.hashes.iter().next_back().expect("non-empty");
            self.hashes.remove(&largest);
        }
    }

    /// Estimated distinct count. Exact below the sketch capacity.
    pub fn estimate(&self) -> usize {
        if self.hashes.len() < KMV_K {
            return self.hashes.len();
        }
        let kth = *self.hashes.iter().next_back().expect("non-empty") as f64;
        if kth <= 0.0 {
            return self.hashes.len();
        }
        (((KMV_K - 1) as f64) * (u64::MAX as f64 / kth)) as usize
    }
}

/// Min/max/null-count/distinct summary of one column (of a chunk or a
/// whole table). `min`/`max` are `None` exactly when the column has no
/// non-null values.
#[derive(Debug, Clone)]
pub struct ZoneMap {
    /// Smallest non-null value under [`Value::total_cmp`].
    pub min: Option<Value>,
    /// Largest non-null value under [`Value::total_cmp`].
    pub max: Option<Value>,
    /// Number of null slots.
    pub null_count: usize,
    /// Total number of slots (valid + null).
    pub len: usize,
    /// Estimated count of distinct non-null values.
    pub distinct: usize,
}

impl ZoneMap {
    /// Summarize a column exactly.
    pub fn of(col: &Column) -> ZoneMap {
        let mut b = ZoneBuilder::new();
        b.observe_column(col);
        b.finish().0
    }

    /// Number of non-null slots.
    pub fn non_null(&self) -> usize {
        self.len - self.null_count
    }

    /// Could any row in this zone make `column OP lit` evaluate to SQL
    /// `true`? `lit` must be non-null (a null literal never compares
    /// true; callers filter that case out before asking). A `false`
    /// answer proves the chunk can be skipped.
    pub fn may_match_cmp(&self, op: CmpOp, lit: &Value) -> bool {
        debug_assert!(!lit.is_null(), "zone checks take non-null literals");
        let (Some(min), Some(max)) = (&self.min, &self.max) else {
            // Every slot is null: no comparison ever yields true.
            return false;
        };
        match op {
            CmpOp::Eq => {
                min.total_cmp(lit) != Ordering::Greater && max.total_cmp(lit) != Ordering::Less
            }
            CmpOp::Ne => {
                // Disproved only when every non-null value equals lit.
                !(min.total_cmp(lit) == Ordering::Equal && max.total_cmp(lit) == Ordering::Equal)
            }
            CmpOp::Lt => min.total_cmp(lit) == Ordering::Less,
            CmpOp::Le => min.total_cmp(lit) != Ordering::Greater,
            CmpOp::Gt => max.total_cmp(lit) == Ordering::Greater,
            CmpOp::Ge => max.total_cmp(lit) != Ordering::Less,
        }
    }

    /// Could any row satisfy `column IS NULL`?
    pub fn may_match_is_null(&self) -> bool {
        self.null_count > 0
    }

    /// Could any row satisfy `NOT (column IS NULL)`?
    pub fn may_match_not_null(&self) -> bool {
        self.non_null() > 0
    }
}

/// Incremental builder shared by chunk- and table-level statistics.
pub struct ZoneBuilder {
    min: Option<Value>,
    max: Option<Value>,
    null_count: usize,
    len: usize,
    sketch: NdvSketch,
}

impl ZoneBuilder {
    /// An empty builder.
    pub fn new() -> ZoneBuilder {
        ZoneBuilder {
            min: None,
            max: None,
            null_count: 0,
            len: 0,
            sketch: NdvSketch::new(),
        }
    }

    /// Fold one value in.
    pub fn observe(&mut self, v: &Value) {
        self.len += 1;
        if v.is_null() {
            self.null_count += 1;
            return;
        }
        match &self.min {
            Some(m) if m.total_cmp(v) != Ordering::Greater => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if m.total_cmp(v) != Ordering::Less => {}
            _ => self.max = Some(v.clone()),
        }
        self.sketch.insert(v);
    }

    /// Fold every value of a column in.
    pub fn observe_column(&mut self, col: &Column) {
        for v in col.iter() {
            self.observe(&v);
        }
    }

    /// Finish into the zone map and the sketch that fed its distinct
    /// estimate (callers merging across chunks keep the sketch).
    pub fn finish(self) -> (ZoneMap, NdvSketch) {
        let distinct = self.sketch.estimate();
        (
            ZoneMap {
                min: self.min,
                max: self.max,
                null_count: self.null_count,
                len: self.len,
                distinct,
            },
            self.sketch,
        )
    }
}

impl Default for ZoneBuilder {
    fn default() -> Self {
        ZoneBuilder::new()
    }
}

/// One zone map per column of a chunk, in schema order.
#[derive(Debug, Clone)]
pub struct ChunkStats {
    /// Zone maps, aligned with the chunk's columns.
    pub columns: Vec<ZoneMap>,
}

impl ChunkStats {
    /// Summarize every column of a coordinate-list chunk.
    pub fn of(chunk: &RowsChunk) -> ChunkStats {
        ChunkStats {
            columns: chunk.columns().iter().map(ZoneMap::of).collect(),
        }
    }
}

/// Whole-table statistics: row count plus a merged zone map per column.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Total logical rows.
    pub row_count: usize,
    /// `(field name, merged zone map)` in schema order.
    pub columns: Vec<(String, ZoneMap)>,
}

impl TableStats {
    /// Compute from a dataset (dense chunks are viewed as rows).
    pub fn of(ds: &DataSet) -> Result<TableStats> {
        let schema = ds.schema();
        let mut builders: Vec<ZoneBuilder> =
            (0..schema.len()).map(|_| ZoneBuilder::new()).collect();
        for chunk in ds.chunks() {
            let rows = chunk.to_rows(schema)?;
            for (b, col) in builders.iter_mut().zip(rows.columns()) {
                b.observe_column(col);
            }
        }
        Ok(TableStats {
            row_count: ds.num_rows(),
            columns: schema
                .fields()
                .iter()
                .zip(builders)
                .map(|(f, b)| (f.name.clone(), b.finish().0))
                .collect(),
        })
    }

    /// The merged zone map for a named column.
    pub fn column(&self, name: &str) -> Option<&ZoneMap> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, z)| z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn zone(vals: Vec<Option<f64>>) -> ZoneMap {
        let vals: Vec<Value> = vals
            .into_iter()
            .map(|v| v.map(Value::Float).unwrap_or(Value::Null))
            .collect();
        let col = Column::from_values(DataType::Float64, &vals).unwrap();
        ZoneMap::of(&col)
    }

    #[test]
    fn zone_map_tracks_min_max_nulls() {
        let z = zone(vec![Some(3.0), None, Some(-1.5), Some(2.0)]);
        assert_eq!(z.min, Some(Value::Float(-1.5)));
        assert_eq!(z.max, Some(Value::Float(3.0)));
        assert_eq!(z.null_count, 1);
        assert_eq!(z.len, 4);
        assert_eq!(z.distinct, 3);
    }

    #[test]
    fn all_null_zone_disproves_every_comparison() {
        let z = zone(vec![None, None]);
        assert!(z.min.is_none() && z.max.is_none());
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert!(!z.may_match_cmp(op, &Value::Float(0.0)), "{op:?}");
        }
        assert!(z.may_match_is_null());
        assert!(!z.may_match_not_null());
    }

    #[test]
    fn empty_zone_disproves_everything() {
        let z = zone(vec![]);
        assert_eq!(z.len, 0);
        assert!(!z.may_match_cmp(CmpOp::Eq, &Value::Float(0.0)));
        assert!(!z.may_match_is_null());
        assert!(!z.may_match_not_null());
    }

    #[test]
    fn nan_sorts_into_the_max_slot() {
        let z = zone(vec![Some(1.0), Some(f64::NAN)]);
        assert!(matches!(z.max, Some(Value::Float(v)) if v.is_nan()));
        // NaN > lit under total_cmp, so Gt anything stays satisfiable —
        // matching the engine, which also compares via total_cmp.
        assert!(z.may_match_cmp(CmpOp::Gt, &Value::Float(1e300)));
    }

    #[test]
    fn comparison_pruning_decisions() {
        let z = zone(vec![Some(10.0), Some(20.0)]);
        let v = Value::Float;
        assert!(z.may_match_cmp(CmpOp::Eq, &v(15.0)));
        assert!(!z.may_match_cmp(CmpOp::Eq, &v(9.0)));
        assert!(!z.may_match_cmp(CmpOp::Eq, &v(21.0)));
        assert!(z.may_match_cmp(CmpOp::Lt, &v(10.5)));
        assert!(!z.may_match_cmp(CmpOp::Lt, &v(10.0)));
        assert!(z.may_match_cmp(CmpOp::Le, &v(10.0)));
        assert!(!z.may_match_cmp(CmpOp::Le, &v(9.9)));
        assert!(z.may_match_cmp(CmpOp::Gt, &v(19.9)));
        assert!(!z.may_match_cmp(CmpOp::Gt, &v(20.0)));
        assert!(z.may_match_cmp(CmpOp::Ge, &v(20.0)));
        assert!(!z.may_match_cmp(CmpOp::Ge, &v(20.1)));
        assert!(z.may_match_cmp(CmpOp::Ne, &v(15.0)));
    }

    #[test]
    fn ne_disproved_only_when_constant() {
        let constant = zone(vec![Some(7.0), Some(7.0), None]);
        assert!(!constant.may_match_cmp(CmpOp::Ne, &Value::Float(7.0)));
        assert!(constant.may_match_cmp(CmpOp::Ne, &Value::Float(8.0)));
        let varied = zone(vec![Some(7.0), Some(8.0)]);
        assert!(varied.may_match_cmp(CmpOp::Ne, &Value::Float(7.0)));
    }

    #[test]
    fn cross_type_numeric_zones() {
        let col = Column::from(vec![2i64, 5, 9]);
        let z = ZoneMap::of(&col);
        // Int zone vs float literal: total_cmp compares numerically.
        assert!(z.may_match_cmp(CmpOp::Gt, &Value::Float(8.5)));
        assert!(!z.may_match_cmp(CmpOp::Gt, &Value::Float(9.0)));
        assert!(!z.may_match_cmp(CmpOp::Lt, &Value::Float(2.0)));
    }

    #[test]
    fn ndv_sketch_exact_when_small_deterministic_always() {
        let mut a = NdvSketch::new();
        let mut b = NdvSketch::new();
        for i in 0..40i64 {
            a.insert(&Value::Int(i));
            b.insert(&Value::Int(i));
        }
        assert_eq!(a.estimate(), 40);
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn ndv_sketch_estimates_within_tolerance() {
        let mut s = NdvSketch::new();
        for i in 0..10_000i64 {
            s.insert(&Value::Int(i));
            s.insert(&Value::Int(i)); // duplicates must not inflate
        }
        let est = s.estimate() as f64;
        assert!(
            (est - 10_000.0).abs() / 10_000.0 < 0.5,
            "estimate {est} too far from 10000"
        );
    }

    #[test]
    fn ndv_merge_matches_union() {
        let mut a = NdvSketch::new();
        let mut b = NdvSketch::new();
        let mut whole = NdvSketch::new();
        for i in 0..500i64 {
            if i % 2 == 0 {
                a.insert(&Value::Int(i));
            } else {
                b.insert(&Value::Int(i));
            }
            whole.insert(&Value::Int(i));
        }
        a.merge(&b);
        assert_eq!(a.estimate(), whole.estimate());
    }

    #[test]
    fn table_stats_roll_up() {
        let floats = |vals: &[Value]| Column::from_values(DataType::Float64, vals).unwrap();
        let mut ds = DataSet::from_columns(vec![
            ("k", Column::from(vec![1i64, 2, 3])),
            (
                "v",
                floats(&[Value::Float(1.0), Value::Null, Value::Float(3.0)]),
            ),
        ])
        .unwrap();
        let more = DataSet::from_columns(vec![
            ("k", Column::from(vec![10i64, 20])),
            ("v", floats(&[Value::Float(-5.0), Value::Null])),
        ])
        .unwrap();
        ds.push_chunk(more.chunks()[0].clone());
        let stats = TableStats::of(&ds).unwrap();
        assert_eq!(stats.row_count, 5);
        let k = stats.column("k").unwrap();
        assert_eq!(k.min, Some(Value::Int(1)));
        assert_eq!(k.max, Some(Value::Int(20)));
        assert_eq!(k.null_count, 0);
        assert_eq!(k.distinct, 5);
        let v = stats.column("v").unwrap();
        assert_eq!(v.min, Some(Value::Float(-5.0)));
        assert_eq!(v.max, Some(Value::Float(3.0)));
        assert_eq!(v.null_count, 2);
        assert!(stats.column("missing").is_none());
    }

    #[test]
    fn chunk_stats_align_with_columns() {
        let ds = DataSet::from_columns(vec![
            ("k", Column::from(vec![1i64, 2])),
            ("s", Column::from(vec!["a", "b"])),
        ])
        .unwrap();
        let chunk = ds.to_rows_chunk().unwrap();
        let cs = ChunkStats::of(&chunk);
        assert_eq!(cs.columns.len(), 2);
        assert_eq!(cs.columns[1].min, Some(Value::from("a")));
        assert_eq!(cs.columns[1].max, Some(Value::from("b")));
    }
}
