//! Chunks: the physical batches a dataset is made of.

use crate::column::Column;
use crate::dense::DenseChunk;
use crate::error::StorageError;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;
use crate::Result;

/// A columnar batch in coordinate-list layout: one column per schema field
/// (dimension fields are explicit `Int64` coordinate columns).
#[derive(Debug, Clone, PartialEq)]
pub struct RowsChunk {
    columns: Vec<Column>,
    len: usize,
}

impl RowsChunk {
    /// Build from columns, validating equal lengths.
    pub fn new(columns: Vec<Column>) -> Result<RowsChunk> {
        let len = columns.first().map(Column::len).unwrap_or(0);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != len {
                return Err(StorageError::LengthMismatch {
                    expected: len,
                    actual: c.len(),
                    context: format!("RowsChunk column {i}"),
                });
            }
        }
        Ok(RowsChunk { columns, len })
    }

    /// An empty chunk matching `schema`'s field types.
    pub fn empty(schema: &Schema) -> RowsChunk {
        RowsChunk {
            columns: schema
                .fields()
                .iter()
                .map(|f| Column::new_empty(f.dtype))
                .collect(),
            len: 0,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Consume into the column vector.
    pub fn into_columns(self) -> Vec<Column> {
        self.columns
    }

    /// Materialize row `i`.
    pub fn row(&self, i: usize) -> Row {
        Row(self.columns.iter().map(|c| c.get(i)).collect())
    }

    /// Iterate over rows.
    pub fn rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.len).map(move |i| self.row(i))
    }

    /// Append a row of scalars (must match column types).
    pub fn push_row(&mut self, row: &Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(StorageError::LengthMismatch {
                expected: self.columns.len(),
                actual: row.len(),
                context: "RowsChunk::push_row".into(),
            });
        }
        for (c, v) in self.columns.iter_mut().zip(&row.0) {
            c.push(v)?;
        }
        self.len += 1;
        Ok(())
    }

    /// Keep rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> RowsChunk {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.filter(mask)).collect();
        let len = mask.iter().filter(|&&m| m).count();
        RowsChunk { columns, len }
    }

    /// Gather rows at `indices`.
    pub fn take(&self, indices: &[usize]) -> RowsChunk {
        RowsChunk {
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            len: indices.len(),
        }
    }

    /// Concatenate another chunk (same column types) onto this one.
    pub fn extend(&mut self, other: &RowsChunk) -> Result<()> {
        if self.columns.len() != other.columns.len() {
            return Err(StorageError::LengthMismatch {
                expected: self.columns.len(),
                actual: other.columns.len(),
                context: "RowsChunk::extend arity".into(),
            });
        }
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.extend(b)?;
        }
        self.len += other.len;
        Ok(())
    }

    /// Replace the column set (e.g. after a projection). Lengths must match.
    pub fn with_columns(columns: Vec<Column>) -> Result<RowsChunk> {
        RowsChunk::new(columns)
    }
}

/// A physical batch: either coordinate-list rows or a dense array box.
#[derive(Debug, Clone, PartialEq)]
pub enum Chunk {
    /// Columnar coordinate-list layout.
    Rows(RowsChunk),
    /// Dense box layout (see [`DenseChunk`]).
    Dense(DenseChunk),
}

impl Chunk {
    /// Number of *logical cells/rows* in the chunk. For dense chunks this
    /// counts only valid (present) cells.
    pub fn len(&self) -> usize {
        match self {
            Chunk::Rows(r) => r.len(),
            Chunk::Dense(d) => d.present_count(),
        }
    }

    /// True when no rows/cells are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convert to coordinate-list layout under the given schema.
    ///
    /// For dense chunks this enumerates present cells in row-major order,
    /// producing explicit dimension columns.
    pub fn to_rows(&self, schema: &Schema) -> Result<RowsChunk> {
        match self {
            Chunk::Rows(r) => Ok(r.clone()),
            Chunk::Dense(d) => d.to_rows(schema),
        }
    }

    /// Materialized rows (convenience for tests / reference evaluator).
    pub fn materialize(&self, schema: &Schema) -> Result<Vec<Row>> {
        Ok(self.to_rows(schema)?.rows().collect())
    }
}

/// Build a one-chunk list of rows from scalar literals (test helper used
/// across the workspace, hence public).
pub fn rows_chunk_of(schema: &Schema, rows: &[Vec<Value>]) -> Result<RowsChunk> {
    let mut chunk = RowsChunk::empty(schema);
    for r in rows {
        chunk.push_row(&Row(r.clone()))?;
    }
    Ok(chunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::types::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::value("k", DataType::Int64),
            Field::value("name", DataType::Utf8),
        ])
        .unwrap()
    }

    #[test]
    fn new_validates_lengths() {
        let err =
            RowsChunk::new(vec![Column::from(vec![1i64, 2]), Column::from(vec!["a"])]).unwrap_err();
        assert!(matches!(err, StorageError::LengthMismatch { .. }));
    }

    #[test]
    fn push_and_materialize() {
        let s = schema();
        let c = rows_chunk_of(
            &s,
            &[
                vec![Value::Int(1), Value::from("a")],
                vec![Value::Int(2), Value::Null],
            ],
        )
        .unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.row(1), Row(vec![Value::Int(2), Value::Null]));
        let all: Vec<Row> = c.rows().collect();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn push_row_arity_check() {
        let s = schema();
        let mut c = RowsChunk::empty(&s);
        assert!(c.push_row(&Row(vec![Value::Int(1)])).is_err());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn filter_take_extend() {
        let s = schema();
        let c = rows_chunk_of(
            &s,
            &[
                vec![Value::Int(1), Value::from("a")],
                vec![Value::Int(2), Value::from("b")],
                vec![Value::Int(3), Value::from("c")],
            ],
        )
        .unwrap();
        let f = c.filter(&[true, false, true]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.row(1).get(0), &Value::Int(3));
        let t = c.take(&[2, 2]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(0).get(1), &Value::from("c"));
        let mut e = c.clone();
        e.extend(&f).unwrap();
        assert_eq!(e.len(), 5);
    }

    #[test]
    fn chunk_enum_len() {
        let s = schema();
        let c = rows_chunk_of(&s, &[vec![Value::Int(1), Value::from("a")]]).unwrap();
        let chunk = Chunk::Rows(c);
        assert_eq!(chunk.len(), 1);
        assert!(!chunk.is_empty());
        assert_eq!(chunk.materialize(&s).unwrap().len(), 1);
    }
}
