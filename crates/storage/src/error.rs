//! Error type for the storage substrate.

use std::fmt;

use crate::types::DataType;

/// Errors raised by storage operations.
///
/// The variants are deliberately specific: the federation layer surfaces
/// them to users when a back end rejects a shipped chunk, so the messages
/// must stand on their own.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A value of one type was supplied where another was required.
    TypeMismatch {
        /// The type the operation required.
        expected: DataType,
        /// The type that was actually supplied.
        actual: DataType,
        /// Human-readable context (column name, operation, ...).
        context: String,
    },
    /// Two columns or chunks that must have equal length did not.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
        /// Human-readable context.
        context: String,
    },
    /// A named field was not found in a schema.
    UnknownField(String),
    /// A field name occurs more than once in a schema.
    DuplicateField(String),
    /// An operation required a dimension field but got a value field
    /// (or vice versa), or the dataset had the wrong dimensionality.
    DimensionError(String),
    /// A dense layout was requested but the data cannot be densified
    /// (unbounded extents, non-integer dimensions, out-of-box coordinates).
    NotDense(String),
    /// The wire codec encountered malformed bytes.
    Corrupt(String),
    /// Catch-all for invalid arguments.
    Invalid(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TypeMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, got {actual}"
            ),
            StorageError::LengthMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "length mismatch in {context}: expected {expected}, got {actual}"
            ),
            StorageError::UnknownField(name) => write!(f, "unknown field `{name}`"),
            StorageError::DuplicateField(name) => write!(f, "duplicate field `{name}`"),
            StorageError::DimensionError(msg) => write!(f, "dimension error: {msg}"),
            StorageError::NotDense(msg) => write!(f, "cannot densify: {msg}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt wire data: {msg}"),
            StorageError::Invalid(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::TypeMismatch {
            expected: DataType::Int64,
            actual: DataType::Utf8,
            context: "column `price`".into(),
        };
        let s = e.to_string();
        assert!(s.contains("price"), "{s}");
        assert!(s.contains("i64"), "{s}");
        assert!(s.contains("utf8"), "{s}");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            StorageError::UnknownField("x".into()),
            StorageError::UnknownField("x".into())
        );
        assert_ne!(
            StorageError::UnknownField("x".into()),
            StorageError::UnknownField("y".into())
        );
    }
}
