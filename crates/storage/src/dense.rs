//! Dense array chunks: the layout native to array and linear-algebra engines.

use crate::bitmap::Bitmap;
use crate::chunk::RowsChunk;
use crate::column::Column;
use crate::error::StorageError;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;
use crate::Result;

/// A hyper-rectangular region of dimension space: `[lo[d], hi[d])` per axis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DimBox {
    /// Inclusive lower bound per dimension.
    pub lo: Vec<i64>,
    /// Exclusive upper bound per dimension.
    pub hi: Vec<i64>,
}

impl DimBox {
    /// Build a box; every axis must be non-empty.
    pub fn new(lo: Vec<i64>, hi: Vec<i64>) -> Result<DimBox> {
        if lo.len() != hi.len() {
            return Err(StorageError::DimensionError(format!(
                "box rank mismatch: {} vs {}",
                lo.len(),
                hi.len()
            )));
        }
        for d in 0..lo.len() {
            if lo[d] >= hi[d] {
                return Err(StorageError::DimensionError(format!(
                    "box axis {d} empty: [{}, {})",
                    lo[d], hi[d]
                )));
            }
        }
        Ok(DimBox { lo, hi })
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.lo.len()
    }

    /// Side length of axis `d`.
    pub fn extent(&self, d: usize) -> usize {
        (self.hi[d] - self.lo[d]) as usize
    }

    /// Total number of cells.
    pub fn volume(&self) -> usize {
        (0..self.ndims()).map(|d| self.extent(d)).product()
    }

    /// True when `coords` lies inside the box.
    pub fn contains(&self, coords: &[i64]) -> bool {
        coords.len() == self.ndims()
            && coords
                .iter()
                .enumerate()
                .all(|(d, &c)| c >= self.lo[d] && c < self.hi[d])
    }

    /// Row-major linear offset of `coords` within the box.
    #[allow(clippy::needless_range_loop)]
    pub fn linearize(&self, coords: &[i64]) -> usize {
        debug_assert!(self.contains(coords), "{coords:?} outside {self:?}");
        let mut idx = 0usize;
        for d in 0..self.ndims() {
            idx = idx * self.extent(d) + (coords[d] - self.lo[d]) as usize;
        }
        idx
    }

    /// Inverse of [`DimBox::linearize`].
    pub fn delinearize(&self, mut idx: usize) -> Vec<i64> {
        let mut coords = vec![0i64; self.ndims()];
        for d in (0..self.ndims()).rev() {
            let e = self.extent(d);
            coords[d] = self.lo[d] + (idx % e) as i64;
            idx /= e;
        }
        coords
    }

    /// Intersection with another box, or `None` if disjoint.
    pub fn intersect(&self, other: &DimBox) -> Option<DimBox> {
        if self.ndims() != other.ndims() {
            return None;
        }
        let lo: Vec<i64> = self
            .lo
            .iter()
            .zip(&other.lo)
            .map(|(&a, &b)| a.max(b))
            .collect();
        let hi: Vec<i64> = self
            .hi
            .iter()
            .zip(&other.hi)
            .map(|(&a, &b)| a.min(b))
            .collect();
        if lo.iter().zip(&hi).all(|(&l, &h)| l < h) {
            Some(DimBox { lo, hi })
        } else {
            None
        }
    }

    /// Iterate all coordinates in row-major order.
    pub fn iter_coords(&self) -> impl Iterator<Item = Vec<i64>> + '_ {
        (0..self.volume()).map(move |i| self.delinearize(i))
    }
}

/// A dense chunk: a [`DimBox`] plus one value column per value attribute,
/// each of length `box.volume()`, laid out row-major.
///
/// The optional `present` bitmap marks which cells exist (sparse arrays
/// stored densely); `None` means every cell is present.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseChunk {
    bounds: DimBox,
    columns: Vec<Column>,
    present: Option<Bitmap>,
}

impl DenseChunk {
    /// Build and validate a dense chunk.
    pub fn new(
        bounds: DimBox,
        columns: Vec<Column>,
        present: Option<Bitmap>,
    ) -> Result<DenseChunk> {
        let vol = bounds.volume();
        for (i, c) in columns.iter().enumerate() {
            if c.len() != vol {
                return Err(StorageError::LengthMismatch {
                    expected: vol,
                    actual: c.len(),
                    context: format!("DenseChunk value column {i}"),
                });
            }
        }
        if let Some(bm) = &present {
            if bm.len() != vol {
                return Err(StorageError::LengthMismatch {
                    expected: vol,
                    actual: bm.len(),
                    context: "DenseChunk present bitmap".into(),
                });
            }
        }
        Ok(DenseChunk {
            bounds,
            columns,
            present,
        })
    }

    /// The chunk's box.
    pub fn bounds(&self) -> &DimBox {
        &self.bounds
    }

    /// The value columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The presence bitmap, if sparse.
    pub fn present(&self) -> Option<&Bitmap> {
        self.present.as_ref()
    }

    /// True when the cell at linear offset `idx` is present.
    pub fn is_present(&self, idx: usize) -> bool {
        match &self.present {
            Some(bm) => bm.get(idx),
            None => idx < self.bounds.volume(),
        }
    }

    /// Number of present cells.
    pub fn present_count(&self) -> usize {
        match &self.present {
            Some(bm) => bm.count_ones(),
            None => self.bounds.volume(),
        }
    }

    /// Convert to coordinate-list layout under `schema`.
    ///
    /// `schema`'s dimension fields (in order) map to the box axes; its
    /// value fields map to the chunk's value columns.
    pub fn to_rows(&self, schema: &Schema) -> Result<RowsChunk> {
        let dims = schema.dimensions();
        let vals = schema.values();
        if dims.len() != self.bounds.ndims() {
            return Err(StorageError::DimensionError(format!(
                "schema has {} dims, chunk box has {}",
                dims.len(),
                self.bounds.ndims()
            )));
        }
        if vals.len() != self.columns.len() {
            return Err(StorageError::LengthMismatch {
                expected: vals.len(),
                actual: self.columns.len(),
                context: "DenseChunk::to_rows value columns".into(),
            });
        }
        // Output columns in schema order: dims get coordinate columns.
        let mut out: Vec<Column> = schema
            .fields()
            .iter()
            .map(|f| Column::new_empty(f.dtype))
            .collect();
        let dim_positions: Vec<usize> = schema
            .fields()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_dimension())
            .map(|(i, _)| i)
            .collect();
        let val_positions: Vec<usize> = schema
            .fields()
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_dimension())
            .map(|(i, _)| i)
            .collect();
        for idx in 0..self.bounds.volume() {
            if !self.is_present(idx) {
                continue;
            }
            let coords = self.bounds.delinearize(idx);
            for (d, &pos) in dim_positions.iter().enumerate() {
                out[pos].push(&Value::Int(coords[d]))?;
            }
            for (v, &pos) in val_positions.iter().enumerate() {
                out[pos].push(&self.columns[v].get(idx))?;
            }
        }
        RowsChunk::new(out)
    }

    /// Densify a coordinate-list chunk into a dense chunk over `bounds`.
    ///
    /// Rows whose coordinates fall outside `bounds` are an error; duplicate
    /// coordinates keep the last write. Cells not covered by any row are
    /// absent (tracked in the presence bitmap).
    pub fn from_rows(schema: &Schema, rows: &RowsChunk, bounds: DimBox) -> Result<DenseChunk> {
        let dim_positions: Vec<usize> = schema
            .fields()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_dimension())
            .map(|(i, _)| i)
            .collect();
        let val_positions: Vec<usize> = schema
            .fields()
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_dimension())
            .map(|(i, _)| i)
            .collect();
        if dim_positions.len() != bounds.ndims() {
            return Err(StorageError::DimensionError(format!(
                "schema has {} dims, target box has {}",
                dim_positions.len(),
                bounds.ndims()
            )));
        }
        let vol = bounds.volume();
        let mut columns: Vec<Column> = val_positions
            .iter()
            .map(|&p| Column::nulls(schema.field_at(p).dtype, vol))
            .collect();
        let mut present = Bitmap::filled(vol, false);
        let mut coords = vec![0i64; bounds.ndims()];
        for r in 0..rows.len() {
            for (d, &p) in dim_positions.iter().enumerate() {
                coords[d] = match rows.column(p).get(r) {
                    Value::Int(c) => c,
                    other => {
                        return Err(StorageError::NotDense(format!(
                            "non-integer coordinate {other} in row {r}"
                        )))
                    }
                };
            }
            if !bounds.contains(&coords) {
                return Err(StorageError::NotDense(format!(
                    "coordinates {coords:?} outside target box"
                )));
            }
            let idx = bounds.linearize(&coords);
            present.set(idx, true);
            for (v, &p) in val_positions.iter().enumerate() {
                set_slot(&mut columns[v], idx, &rows.column(p).get(r))?;
            }
        }
        let present = if present.all_set() {
            None
        } else {
            Some(present)
        };
        DenseChunk::new(bounds, columns, present)
    }

    /// Read the value columns of the cell at `coords` as a row
    /// (values only, no coordinates). Returns `None` for absent cells.
    pub fn cell(&self, coords: &[i64]) -> Option<Row> {
        if !self.bounds.contains(coords) {
            return None;
        }
        let idx = self.bounds.linearize(coords);
        if !self.is_present(idx) {
            return None;
        }
        Some(Row(self.columns.iter().map(|c| c.get(idx)).collect()))
    }
}

/// Overwrite slot `idx` of a column that was pre-sized with nulls.
fn set_slot(col: &mut Column, idx: usize, v: &Value) -> Result<()> {
    // Columns built by `Column::nulls` always carry a validity bitmap.
    match (col, v) {
        (Column::Int64(d, bm), Value::Int(x)) => {
            d[idx] = *x;
            if let Some(bm) = bm {
                bm.set(idx, true);
            }
        }
        (Column::Float64(d, bm), Value::Float(x)) => {
            d[idx] = *x;
            if let Some(bm) = bm {
                bm.set(idx, true);
            }
        }
        (Column::Bool(d, bm), Value::Bool(x)) => {
            d[idx] = *x;
            if let Some(bm) = bm {
                bm.set(idx, true);
            }
        }
        (Column::Utf8(d, bm), Value::Str(x)) => {
            d[idx] = x.clone();
            if let Some(bm) = bm {
                bm.set(idx, true);
            }
        }
        (col, Value::Null) => {
            let dt = col.dtype();
            match col {
                Column::Int64(_, Some(bm))
                | Column::Float64(_, Some(bm))
                | Column::Bool(_, Some(bm))
                | Column::Utf8(_, Some(bm)) => bm.set(idx, false),
                _ => {
                    return Err(StorageError::Invalid(format!(
                        "cannot null slot of non-nullable {dt} column"
                    )))
                }
            }
        }
        (col, v) => {
            return Err(StorageError::TypeMismatch {
                expected: col.dtype(),
                actual: v.dtype().unwrap_or(crate::types::DataType::Utf8),
                context: "DenseChunk::from_rows".into(),
            })
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::rows_chunk_of;
    use crate::schema::Field;
    use crate::types::DataType;

    fn box2() -> DimBox {
        DimBox::new(vec![0, 10], vec![2, 13]).unwrap() // 2 x 3
    }

    #[test]
    fn box_geometry() {
        let b = box2();
        assert_eq!(b.ndims(), 2);
        assert_eq!(b.volume(), 6);
        assert!(b.contains(&[1, 12]));
        assert!(!b.contains(&[2, 10]));
        assert!(!b.contains(&[0, 13]));
    }

    #[test]
    fn linearize_roundtrip() {
        let b = box2();
        for idx in 0..b.volume() {
            let c = b.delinearize(idx);
            assert_eq!(b.linearize(&c), idx, "coords {c:?}");
        }
        // Row-major: second axis varies fastest.
        assert_eq!(b.linearize(&[0, 10]), 0);
        assert_eq!(b.linearize(&[0, 11]), 1);
        assert_eq!(b.linearize(&[1, 10]), 3);
    }

    #[test]
    fn intersect_boxes() {
        let a = DimBox::new(vec![0], vec![10]).unwrap();
        let b = DimBox::new(vec![5], vec![15]).unwrap();
        assert_eq!(
            a.intersect(&b),
            Some(DimBox::new(vec![5], vec![10]).unwrap())
        );
        let c = DimBox::new(vec![10], vec![12]).unwrap();
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn invalid_boxes_rejected() {
        assert!(DimBox::new(vec![0], vec![0]).is_err());
        assert!(DimBox::new(vec![0, 0], vec![1]).is_err());
    }

    fn schema2d() -> Schema {
        Schema::new(vec![
            Field::dimension_bounded("i", 0, 2),
            Field::dimension_bounded("j", 10, 13),
            Field::value("v", DataType::Float64),
        ])
        .unwrap()
    }

    #[test]
    fn dense_rows_roundtrip() {
        let s = schema2d();
        let rows = rows_chunk_of(
            &s,
            &[
                vec![Value::Int(0), Value::Int(10), Value::Float(1.0)],
                vec![Value::Int(1), Value::Int(12), Value::Float(2.0)],
            ],
        )
        .unwrap();
        let dense = DenseChunk::from_rows(&s, &rows, box2()).unwrap();
        assert_eq!(dense.present_count(), 2);
        assert_eq!(dense.cell(&[1, 12]), Some(Row(vec![Value::Float(2.0)])));
        assert_eq!(dense.cell(&[0, 11]), None);
        let back = dense.to_rows(&s).unwrap();
        let mut got: Vec<Row> = back.rows().collect();
        got.sort_by(|a, b| a.total_cmp(b));
        let mut want: Vec<Row> = rows.rows().collect();
        want.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(got, want);
    }

    #[test]
    fn from_rows_rejects_out_of_box() {
        let s = schema2d();
        let rows = rows_chunk_of(
            &s,
            &[vec![Value::Int(5), Value::Int(10), Value::Float(1.0)]],
        )
        .unwrap();
        assert!(matches!(
            DenseChunk::from_rows(&s, &rows, box2()),
            Err(StorageError::NotDense(_))
        ));
    }

    #[test]
    fn fully_present_drops_bitmap() {
        let s = Schema::new(vec![
            Field::dimension_bounded("i", 0, 2),
            Field::value("v", DataType::Int64),
        ])
        .unwrap();
        let rows = rows_chunk_of(
            &s,
            &[
                vec![Value::Int(0), Value::Int(7)],
                vec![Value::Int(1), Value::Int(8)],
            ],
        )
        .unwrap();
        let dense =
            DenseChunk::from_rows(&s, &rows, DimBox::new(vec![0], vec![2]).unwrap()).unwrap();
        assert!(dense.present().is_none());
        assert_eq!(dense.present_count(), 2);
    }

    #[test]
    fn null_values_in_cells() {
        let s = Schema::new(vec![
            Field::dimension_bounded("i", 0, 2),
            Field::value("v", DataType::Int64),
        ])
        .unwrap();
        let rows = rows_chunk_of(
            &s,
            &[
                vec![Value::Int(0), Value::Null],
                vec![Value::Int(1), Value::Int(8)],
            ],
        )
        .unwrap();
        let dense =
            DenseChunk::from_rows(&s, &rows, DimBox::new(vec![0], vec![2]).unwrap()).unwrap();
        assert_eq!(dense.cell(&[0]), Some(Row(vec![Value::Null])));
    }
}
