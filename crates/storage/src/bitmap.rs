//! A packed validity bitmap.

/// A fixed-meaning bit vector: bit `i` is `true` when slot `i` holds a
/// valid (non-null) value.
///
/// Stored as 64-bit words, LSB-first within a word, so `count_ones` and
/// word-wise AND/OR are cheap. Trailing bits beyond `len` are kept zero as
/// an invariant so popcounts never need masking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap {
            words: Vec::new(),
            len: 0,
        }
    }

    /// A bitmap of `len` bits, all set to `value`.
    pub fn filled(len: usize, value: bool) -> Bitmap {
        let nwords = len.div_ceil(64);
        let mut words = vec![if value { u64::MAX } else { 0 }; nwords];
        if value {
            Self::mask_tail(&mut words, len);
        }
        Bitmap { words, len }
    }

    fn mask_tail(words: &mut [u64], len: usize) {
        let rem = len % 64;
        if rem != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Build from a bool slice.
    pub fn from_bools(bits: &[bool]) -> Bitmap {
        let mut bm = Bitmap::filled(bits.len(), false);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                bm.set(i, true);
            }
        }
        bm
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Get bit `i`. Panics if out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Set bit `i`. Panics if out of range.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Append a bit.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        if value {
            self.set(self.len - 1, true);
        }
    }

    /// Number of set (valid) bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when every bit is set.
    pub fn all_set(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Bitwise AND of two equal-length bitmaps.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Keep only the bits where `mask[i]` is true, preserving order.
    pub fn filter(&self, mask: &[bool]) -> Bitmap {
        assert_eq!(self.len, mask.len(), "mask length mismatch");
        let mut out = Bitmap::new();
        for (i, &keep) in mask.iter().enumerate() {
            if keep {
                out.push(self.get(i));
            }
        }
        out
    }

    /// Gather bits at `indices` (indices may repeat or reorder).
    pub fn take(&self, indices: &[usize]) -> Bitmap {
        let mut out = Bitmap::new();
        for &i in indices {
            out.push(self.get(i));
        }
        out
    }

    /// Concatenate another bitmap onto this one.
    pub fn extend(&mut self, other: &Bitmap) {
        for i in 0..other.len {
            self.push(other.get(i));
        }
    }

    /// Iterate over bits as bools.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

impl Default for Bitmap {
    fn default() -> Self {
        Bitmap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_counts() {
        let bm = Bitmap::filled(70, true);
        assert_eq!(bm.len(), 70);
        assert_eq!(bm.count_ones(), 70);
        assert!(bm.all_set());
        let bm = Bitmap::filled(70, false);
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn tail_bits_stay_zero() {
        let bm = Bitmap::filled(65, true);
        // Word 1 must only have 1 bit set even though it was filled.
        assert_eq!(bm.words[1].count_ones(), 1);
    }

    #[test]
    fn set_get_push_roundtrip() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        for i in 0..130 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        bm.set(1, true);
        assert!(bm.get(1));
        bm.set(0, false);
        assert!(!bm.get(0));
    }

    #[test]
    fn and_intersects() {
        let a = Bitmap::from_bools(&[true, true, false, false]);
        let b = Bitmap::from_bools(&[true, false, true, false]);
        assert_eq!(a.and(&b), Bitmap::from_bools(&[true, false, false, false]));
    }

    #[test]
    fn filter_take_extend() {
        let bm = Bitmap::from_bools(&[true, false, true, true]);
        let f = bm.filter(&[true, false, false, true]);
        assert_eq!(f, Bitmap::from_bools(&[true, true]));
        let t = bm.take(&[3, 3, 1]);
        assert_eq!(t, Bitmap::from_bools(&[true, true, false]));
        let mut e = Bitmap::from_bools(&[false]);
        e.extend(&bm);
        assert_eq!(e.len(), 5);
        assert_eq!(e.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::filled(3, true).get(3);
    }
}
