//! # `bda-storage`: the columnar storage substrate
//!
//! This crate implements the data layer of the Big Data Algebra framework
//! (Maier, *Desiderata for a Big Data Language*, CIDR 2015): the **fused
//! tabular/array data model** in which a dataset is a table with *zero or
//! more attributes tagged as dimensions*.
//!
//! * A dataset with **no** dimension fields is an ordinary bag-semantics
//!   relation.
//! * A dataset with **k** dimension fields is a (possibly sparse)
//!   k-dimensional array whose cells carry the value attributes.
//!
//! Two physical layouts are supported, mirroring the paper's observation
//! that different back ends have different native representations:
//!
//! * [`RowsChunk`] — a coordinate-list / columnar layout (what a relational
//!   engine wants); dimension fields are explicit `Int64` columns.
//! * [`DenseChunk`] — a dense box layout (what an array or linear-algebra
//!   engine wants); dimension coordinates are implicit in the cell's
//!   position inside a [`DimBox`].
//!
//! The [`wire`] module provides a compact, hand-rolled binary encoding for
//! every storage type. All inter-server transfers in the federation layer go
//! through this codec, which is what makes "bytes moved through the
//! application tier" (desideratum 4) an honestly measurable quantity.
//!
//! Nothing in this crate knows about query plans; the algebra lives in
//! `bda-core`.

pub mod bitmap;
pub mod chunk;
pub mod column;
pub mod dataset;
pub mod dense;
pub mod error;
pub mod index;
pub mod row;
pub mod schema;
pub mod stats;
pub mod types;
pub mod value;
pub mod wire;

pub use bitmap::Bitmap;
pub use chunk::{Chunk, RowsChunk};
pub use column::Column;
pub use dataset::DataSet;
pub use dense::{DenseChunk, DimBox};
pub use error::StorageError;
pub use index::{IndexKind, IndexSpec, SecondaryIndex};
pub use row::Row;
pub use stats::{ChunkStats, CmpOp, TableStats, ZoneMap};
pub use schema::{Field, Role, Schema};
pub use types::DataType;
pub use value::Value;

/// Crate-wide result alias.
pub type Result<T, E = StorageError> = std::result::Result<T, E>;
