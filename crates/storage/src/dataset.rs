//! `DataSet`: a schema plus chunks — the collection type that flows between
//! clients and servers.
//!
//! The paper stresses that "the result of a query is a collection in the
//! client environment. There is not the awkwardness of cursors." `DataSet`
//! is that collection: fully materialized, layout-flexible, directly
//! iterable.

use crate::chunk::{Chunk, RowsChunk};
use crate::column::Column;
use crate::dense::{DenseChunk, DimBox};
use crate::error::StorageError;
use crate::row::Row;
use crate::schema::Schema;
use crate::types::DataType;
use crate::value::Value;
use crate::Result;

/// A dataset: a dimension-tagged schema and the chunks that hold its data.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSet {
    schema: Schema,
    chunks: Vec<Chunk>,
}

impl DataSet {
    /// A dataset with no rows.
    pub fn empty(schema: Schema) -> DataSet {
        DataSet {
            schema,
            chunks: Vec::new(),
        }
    }

    /// Assemble from parts (chunks are trusted to match the schema; the
    /// conversion methods re-validate on access).
    pub fn new(schema: Schema, chunks: Vec<Chunk>) -> DataSet {
        DataSet { schema, chunks }
    }

    /// Build from materialized rows, validating types against the schema.
    pub fn from_rows(schema: Schema, rows: &[Row]) -> Result<DataSet> {
        let mut chunk = RowsChunk::empty(&schema);
        for r in rows {
            chunk.push_row(r)?;
        }
        Ok(DataSet {
            schema,
            chunks: vec![Chunk::Rows(chunk)],
        })
    }

    /// Build a relation (no dimensions) from named columns.
    pub fn from_columns(fields: Vec<(&str, Column)>) -> Result<DataSet> {
        let schema = Schema::new(
            fields
                .iter()
                .map(|(n, c)| crate::schema::Field::value(*n, c.dtype()))
                .collect(),
        )?;
        let chunk = RowsChunk::new(fields.into_iter().map(|(_, c)| c).collect())?;
        Ok(DataSet {
            schema,
            chunks: vec![Chunk::Rows(chunk)],
        })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The chunks.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Append a chunk.
    pub fn push_chunk(&mut self, chunk: Chunk) {
        self.chunks.push(chunk);
    }

    /// Total number of logical rows/cells.
    pub fn num_rows(&self) -> usize {
        self.chunks.iter().map(Chunk::len).sum()
    }

    /// True when the dataset holds no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Materialize every row (dense chunks are exploded to coordinate rows).
    pub fn rows(&self) -> Result<Vec<Row>> {
        let mut out = Vec::with_capacity(self.num_rows());
        for c in &self.chunks {
            out.extend(c.materialize(&self.schema)?);
        }
        Ok(out)
    }

    /// Collapse all chunks into a single coordinate-list chunk.
    pub fn to_rows_chunk(&self) -> Result<RowsChunk> {
        let mut acc = RowsChunk::empty(&self.schema);
        for c in &self.chunks {
            acc.extend(&c.to_rows(&self.schema)?)?;
        }
        Ok(acc)
    }

    /// A dataset identical to `self` but in a single coordinate-list chunk.
    pub fn normalized_rows(&self) -> Result<DataSet> {
        Ok(DataSet {
            schema: self.schema.clone(),
            chunks: vec![Chunk::Rows(self.to_rows_chunk()?)],
        })
    }

    /// Densify into a single dense chunk covering the schema's dimension
    /// extents (all dimensions must be bounded).
    pub fn to_dense(&self) -> Result<DataSet> {
        let bounds = self.bounding_box()?;
        let rows = self.to_rows_chunk()?;
        let dense = DenseChunk::from_rows(&self.schema, &rows, bounds)?;
        Ok(DataSet {
            schema: self.schema.clone(),
            chunks: vec![Chunk::Dense(dense)],
        })
    }

    /// Densify into a **grid** of dense chunks with side length
    /// `chunk_side` per dimension (the last tile on each axis may be
    /// shorter). This is the array-store layout: operations with
    /// coordinate bounds can prune whole tiles by box intersection.
    pub fn to_dense_grid(&self, chunk_side: usize) -> Result<DataSet> {
        if chunk_side == 0 {
            return Err(StorageError::Invalid("chunk_side must be positive".into()));
        }
        let bounds = self.bounding_box()?;
        let ndims = bounds.ndims();
        // Tile counts per axis.
        let tiles: Vec<usize> = (0..ndims)
            .map(|d| bounds.extent(d).div_ceil(chunk_side))
            .collect();
        let ntiles: usize = tiles.iter().product();
        // Bucket rows by tile.
        let rows = self.to_rows_chunk()?;
        let dim_positions: Vec<usize> = self
            .schema
            .fields()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_dimension())
            .map(|(i, _)| i)
            .collect();
        let mut buckets: Vec<RowsChunk> = (0..ntiles)
            .map(|_| RowsChunk::empty(&self.schema))
            .collect();
        for r in 0..rows.len() {
            let mut tile = 0usize;
            for (d, &p) in dim_positions.iter().enumerate() {
                let c = match rows.column(p).get(r) {
                    Value::Int(c) => c,
                    other => {
                        return Err(StorageError::NotDense(format!(
                            "non-integer coordinate {other}"
                        )))
                    }
                };
                if c < bounds.lo[d] || c >= bounds.hi[d] {
                    return Err(StorageError::NotDense(format!(
                        "coordinate {c} outside extent on axis {d}"
                    )));
                }
                let t = ((c - bounds.lo[d]) as usize) / chunk_side;
                tile = tile * tiles[d] + t;
            }
            buckets[tile].push_row(&rows.row(r))?;
        }
        // Build one dense chunk per non-empty tile (empty tiles are
        // simply absent — that is the pruning invariant).
        let mut chunks = Vec::new();
        for (tile, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            // Decompose the tile index back into per-axis tile coords.
            let mut rem = tile;
            let mut lo = vec![0i64; ndims];
            let mut hi = vec![0i64; ndims];
            for d in (0..ndims).rev() {
                let t = rem % tiles[d];
                rem /= tiles[d];
                lo[d] = bounds.lo[d] + (t * chunk_side) as i64;
                hi[d] = (lo[d] + chunk_side as i64).min(bounds.hi[d]);
            }
            let tile_box = DimBox::new(lo, hi)?;
            chunks.push(Chunk::Dense(DenseChunk::from_rows(
                &self.schema,
                &bucket,
                tile_box,
            )?));
        }
        Ok(DataSet {
            schema: self.schema.clone(),
            chunks,
        })
    }

    /// The box spanned by the schema's (bounded) dimension extents.
    pub fn bounding_box(&self) -> Result<DimBox> {
        if self.schema.ndims() == 0 {
            return Err(StorageError::NotDense("dataset has no dimensions".into()));
        }
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        for d in self.schema.dimensions() {
            match d.extent() {
                Some((l, h)) => {
                    lo.push(l);
                    hi.push(h);
                }
                None => {
                    return Err(StorageError::NotDense(format!(
                        "dimension `{}` is unbounded",
                        d.name
                    )))
                }
            }
        }
        DimBox::new(lo, hi)
    }

    /// Concatenate the named column across all chunks (coordinate view).
    pub fn collect_column(&self, name: &str) -> Result<Column> {
        let idx = self.schema.index_of(name)?;
        let mut acc = Column::new_empty(self.schema.field_at(idx).dtype);
        for c in &self.chunks {
            acc.extend(c.to_rows(&self.schema)?.column(idx))?;
        }
        Ok(acc)
    }

    /// Rows sorted lexicographically — the canonical form for equality.
    pub fn sorted_rows(&self) -> Result<Vec<Row>> {
        let mut rows = self.rows()?;
        rows.sort_by(|a, b| a.total_cmp(b));
        Ok(rows)
    }

    /// Bag equality: same schema field names/types/roles and the same
    /// multiset of rows, regardless of row order or physical layout.
    pub fn same_bag(&self, other: &DataSet) -> Result<bool> {
        if self.schema != other.schema {
            return Ok(false);
        }
        Ok(self.sorted_rows()? == other.sorted_rows()?)
    }

    /// Approximate in-memory size in bytes, used by the federation cost
    /// model. Matches the wire codec's cost model closely enough for
    /// planning (8 bytes per numeric slot, string lengths, bitmap words).
    pub fn estimated_bytes(&self) -> usize {
        let mut total = 0usize;
        for c in &self.chunks {
            total += match c {
                Chunk::Rows(r) => r.columns().iter().map(column_bytes).sum::<usize>(),
                Chunk::Dense(d) => {
                    d.columns().iter().map(column_bytes).sum::<usize>()
                        + d.present().map(|bm| bm.len() / 8).unwrap_or(0)
                }
            };
        }
        total
    }

    /// Pretty-print up to `limit` rows as an ASCII table.
    pub fn show(&self, limit: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.schema));
        match self.rows() {
            Ok(rows) => {
                for r in rows.iter().take(limit) {
                    out.push_str(&format!("{r}\n"));
                }
                if rows.len() > limit {
                    out.push_str(&format!("... ({} rows total)\n", rows.len()));
                }
            }
            Err(e) => out.push_str(&format!("<error materializing rows: {e}>\n")),
        }
        out
    }
}

fn column_bytes(c: &Column) -> usize {
    match c {
        Column::Int64(d, v) => d.len() * 8 + v.as_ref().map(|b| b.len() / 8).unwrap_or(0),
        Column::Float64(d, v) => d.len() * 8 + v.as_ref().map(|b| b.len() / 8).unwrap_or(0),
        Column::Bool(d, v) => d.len() + v.as_ref().map(|b| b.len() / 8).unwrap_or(0),
        Column::Utf8(d, v) => {
            d.iter().map(|s| s.len() + 4).sum::<usize>()
                + v.as_ref().map(|b| b.len() / 8).unwrap_or(0)
        }
    }
}

/// Helper: build a single-column `f64` matrix dataset with dimensions
/// `row` in `[0, nrows)` and `col` in `[0, ncols)` from row-major data.
/// Used pervasively by the linear-algebra paths and tests.
pub fn matrix_dataset(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<DataSet> {
    if data.len() != nrows * ncols {
        return Err(StorageError::LengthMismatch {
            expected: nrows * ncols,
            actual: data.len(),
            context: "matrix_dataset".into(),
        });
    }
    let schema = Schema::new(vec![
        crate::schema::Field::dimension_bounded("row", 0, nrows as i64),
        crate::schema::Field::dimension_bounded("col", 0, ncols as i64),
        crate::schema::Field::value("v", DataType::Float64),
    ])?;
    let bounds = DimBox::new(vec![0, 0], vec![nrows as i64, ncols as i64])?;
    let dense = DenseChunk::new(bounds, vec![Column::from(data)], None)?;
    Ok(DataSet::new(schema, vec![Chunk::Dense(dense)]))
}

/// Helper: extract a 2-D float dataset back into `(nrows, ncols, row-major
/// data)`. Absent cells and nulls read as 0.0 (linear-algebra convention).
pub fn dataset_matrix(ds: &DataSet) -> Result<(usize, usize, Vec<f64>)> {
    if ds.schema().ndims() != 2 {
        return Err(StorageError::DimensionError(format!(
            "expected 2-D dataset, got {} dims",
            ds.schema().ndims()
        )));
    }
    let vals = ds.schema().values();
    if vals.len() != 1 || vals[0].dtype != DataType::Float64 {
        return Err(StorageError::DimensionError(
            "expected exactly one f64 value attribute".into(),
        ));
    }
    let bounds = ds.bounding_box()?;
    let (nrows, ncols) = (bounds.extent(0), bounds.extent(1));
    let mut data = vec![0.0f64; nrows * ncols];
    let dense_ds = ds.to_dense()?;
    if let Some(Chunk::Dense(d)) = dense_ds.chunks().first() {
        let col = d.columns()[0].clone();
        for (idx, slot) in data.iter_mut().enumerate() {
            if d.is_present(idx) {
                if let Value::Float(v) = col.get(idx) {
                    *slot = v;
                }
            }
        }
    }
    Ok((nrows, ncols, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn rel() -> DataSet {
        DataSet::from_columns(vec![
            ("k", Column::from(vec![1i64, 2, 3])),
            ("name", Column::from(vec!["a", "b", "c"])),
        ])
        .unwrap()
    }

    #[test]
    fn from_columns_and_counts() {
        let ds = rel();
        assert_eq!(ds.num_rows(), 3);
        assert!(!ds.is_empty());
        assert!(ds.schema().is_relation());
    }

    #[test]
    fn rows_materialization() {
        let ds = rel();
        let rows = ds.rows().unwrap();
        assert_eq!(rows[0], Row(vec![Value::Int(1), Value::from("a")]));
    }

    #[test]
    fn bag_equality_ignores_order_and_layout() {
        let a = DataSet::from_columns(vec![("k", Column::from(vec![1i64, 2]))]).unwrap();
        let b = DataSet::from_columns(vec![("k", Column::from(vec![2i64, 1]))]).unwrap();
        assert!(a.same_bag(&b).unwrap());
        let c = DataSet::from_columns(vec![("k", Column::from(vec![1i64, 1]))]).unwrap();
        assert!(!a.same_bag(&c).unwrap());
    }

    #[test]
    fn bag_equality_checks_schema() {
        let a = DataSet::from_columns(vec![("k", Column::from(vec![1i64]))]).unwrap();
        let b = DataSet::from_columns(vec![("j", Column::from(vec![1i64]))]).unwrap();
        assert!(!a.same_bag(&b).unwrap());
    }

    #[test]
    fn matrix_roundtrip() {
        let ds = matrix_dataset(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(ds.num_rows(), 6);
        let (r, c, data) = dataset_matrix(&ds).unwrap();
        assert_eq!((r, c), (2, 3));
        assert_eq!(data, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn dense_and_rows_views_agree() {
        let ds = matrix_dataset(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let as_rows = ds.normalized_rows().unwrap();
        assert!(ds.same_bag(&as_rows).unwrap());
        let back_dense = as_rows.to_dense().unwrap();
        assert!(ds.same_bag(&back_dense).unwrap());
    }

    #[test]
    fn bounding_box_requires_bounds() {
        let schema = Schema::new(vec![
            Field::dimension("i"),
            Field::value("v", DataType::Int64),
        ])
        .unwrap();
        let ds = DataSet::empty(schema);
        assert!(matches!(ds.bounding_box(), Err(StorageError::NotDense(_))));
        assert!(rel().bounding_box().is_err());
    }

    #[test]
    fn collect_column_spans_chunks() {
        let mut ds = rel();
        let extra = rel();
        ds.push_chunk(extra.chunks()[0].clone());
        let col = ds.collect_column("k").unwrap();
        assert_eq!(col.len(), 6);
    }

    #[test]
    fn estimated_bytes_positive_and_monotone() {
        let small = rel();
        let mut big = rel();
        big.push_chunk(small.chunks()[0].clone());
        assert!(small.estimated_bytes() > 0);
        assert!(big.estimated_bytes() > small.estimated_bytes());
    }

    #[test]
    fn show_truncates() {
        let s = rel().show(2);
        assert!(s.contains("(3 rows total)"), "{s}");
    }

    #[test]
    fn dataset_matrix_validates_shape() {
        let ds = rel();
        assert!(dataset_matrix(&ds).is_err());
    }

    #[test]
    fn dense_grid_partitions_without_loss() {
        let ds = matrix_dataset(5, 7, (0..35).map(|i| i as f64).collect()).unwrap();
        let grid = ds.to_dense_grid(3).unwrap();
        // ceil(5/3) * ceil(7/3) = 2 * 3 = 6 fully-populated tiles.
        assert_eq!(grid.chunks().len(), 6);
        assert!(grid.same_bag(&ds).unwrap());
        // Tile boxes partition the bounding box.
        let vol: usize = grid
            .chunks()
            .iter()
            .map(|c| match c {
                Chunk::Dense(d) => d.bounds().volume(),
                _ => panic!("grid must be dense"),
            })
            .sum();
        assert_eq!(vol, 35);
    }

    #[test]
    fn dense_grid_drops_empty_tiles() {
        let schema = Schema::new(vec![
            Field::dimension_bounded("i", 0, 100),
            Field::value("v", DataType::Int64),
        ])
        .unwrap();
        // Only two populated cells, far apart.
        let ds = DataSet::from_rows(
            schema,
            &[
                Row(vec![Value::Int(1), Value::Int(10)]),
                Row(vec![Value::Int(95), Value::Int(20)]),
            ],
        )
        .unwrap();
        let grid = ds.to_dense_grid(10).unwrap();
        assert_eq!(grid.chunks().len(), 2, "8 empty tiles pruned at build");
        assert!(grid.same_bag(&ds).unwrap());
    }

    #[test]
    fn dense_grid_validates() {
        let ds = matrix_dataset(2, 2, vec![0.0; 4]).unwrap();
        assert!(ds.to_dense_grid(0).is_err());
        assert!(rel().to_dense_grid(4).is_err(), "relations have no box");
    }
}
