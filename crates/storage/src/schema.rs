//! Dimension-tagged schemas — the heart of the fused tabular/array model.
//!
//! The paper proposes "a fusion of tabular and array models, with 0 or more
//! attributes in a table structure being tagged as dimensions, and operators
//! being dimension-aware". [`Schema`] realizes exactly that: an ordered list
//! of [`Field`]s, each carrying a [`Role`].

use std::fmt;

use crate::error::StorageError;
use crate::types::DataType;
use crate::Result;

/// The role a field plays in the fused model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// An array dimension: an `Int64` coordinate axis. The optional extent
    /// `[lo, hi)` bounds the coordinates; a bounded extent is required to
    /// densify the dataset.
    Dimension {
        /// Inclusive lower bound of the axis, if known.
        lo: Option<i64>,
        /// Exclusive upper bound of the axis, if known.
        hi: Option<i64>,
    },
    /// An ordinary value attribute.
    Value,
}

impl Role {
    /// Unbounded dimension role.
    pub fn dim() -> Role {
        Role::Dimension { lo: None, hi: None }
    }

    /// Bounded dimension role over `[lo, hi)`.
    pub fn dim_bounded(lo: i64, hi: i64) -> Role {
        Role::Dimension {
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    /// True for either dimension variant.
    pub fn is_dimension(&self) -> bool {
        matches!(self, Role::Dimension { .. })
    }
}

/// A named, typed, role-tagged schema field.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Field name; unique within a schema.
    pub name: String,
    /// Scalar type. Dimensions are always `Int64`.
    pub dtype: DataType,
    /// Dimension or value role.
    pub role: Role,
}

impl Field {
    /// A value attribute.
    pub fn value(name: impl Into<String>, dtype: DataType) -> Field {
        Field {
            name: name.into(),
            dtype,
            role: Role::Value,
        }
    }

    /// An unbounded dimension (always `Int64`).
    pub fn dimension(name: impl Into<String>) -> Field {
        Field {
            name: name.into(),
            dtype: DataType::Int64,
            role: Role::dim(),
        }
    }

    /// A bounded dimension over `[lo, hi)`.
    pub fn dimension_bounded(name: impl Into<String>, lo: i64, hi: i64) -> Field {
        Field {
            name: name.into(),
            dtype: DataType::Int64,
            role: Role::dim_bounded(lo, hi),
        }
    }

    /// True if this field is a dimension.
    pub fn is_dimension(&self) -> bool {
        self.role.is_dimension()
    }

    /// The dimension extent `[lo, hi)`, if this is a bounded dimension.
    pub fn extent(&self) -> Option<(i64, i64)> {
        match self.role {
            Role::Dimension {
                lo: Some(lo),
                hi: Some(hi),
            } => Some((lo, hi)),
            _ => None,
        }
    }
}

/// An ordered collection of fields with unique names.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema, validating name uniqueness and that dimensions are
    /// `Int64` with well-formed extents.
    pub fn new(fields: Vec<Field>) -> Result<Schema> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(StorageError::DuplicateField(f.name.clone()));
            }
            if f.is_dimension() {
                if f.dtype != DataType::Int64 {
                    return Err(StorageError::DimensionError(format!(
                        "dimension `{}` must be i64, got {}",
                        f.name, f.dtype
                    )));
                }
                if let Role::Dimension {
                    lo: Some(lo),
                    hi: Some(hi),
                } = f.role
                {
                    if lo >= hi {
                        return Err(StorageError::DimensionError(format!(
                            "dimension `{}` has empty extent [{lo}, {hi})",
                            f.name
                        )));
                    }
                }
            }
        }
        Ok(Schema { fields })
    }

    /// An empty schema (zero fields).
    pub fn empty() -> Schema {
        Schema { fields: Vec::new() }
    }

    /// The fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when there are no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the named field.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| StorageError::UnknownField(name.to_string()))
    }

    /// The named field.
    pub fn field(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Field at position `i`.
    pub fn field_at(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// The dimension fields, in schema order.
    pub fn dimensions(&self) -> Vec<&Field> {
        self.fields.iter().filter(|f| f.is_dimension()).collect()
    }

    /// The value (non-dimension) fields, in schema order.
    pub fn values(&self) -> Vec<&Field> {
        self.fields.iter().filter(|f| !f.is_dimension()).collect()
    }

    /// Number of dimension fields (the dataset's dimensionality).
    pub fn ndims(&self) -> usize {
        self.fields.iter().filter(|f| f.is_dimension()).count()
    }

    /// True when this is a plain relation (no dimension fields).
    pub fn is_relation(&self) -> bool {
        self.ndims() == 0
    }

    /// True when every dimension has a bounded extent (densifiable).
    pub fn is_bounded(&self) -> bool {
        self.fields
            .iter()
            .filter(|f| f.is_dimension())
            .all(|f| f.extent().is_some())
    }

    /// Names of all fields, in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// A new schema with every field demoted to a value attribute
    /// (the `ArrayToTable` retagging operator).
    pub fn untagged(&self) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| Field::value(f.name.clone(), f.dtype))
                .collect(),
        }
    }

    /// A new schema in which the named fields become (possibly bounded)
    /// dimensions and all others become values (the `TableToArray`
    /// retagging operator). Fields must exist and be `Int64`.
    pub fn tagged(&self, dims: &[(&str, Option<(i64, i64)>)]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(self.fields.len());
        for f in &self.fields {
            let tag = dims.iter().find(|(n, _)| *n == f.name);
            match tag {
                Some((_, extent)) => {
                    if f.dtype != DataType::Int64 {
                        return Err(StorageError::DimensionError(format!(
                            "cannot tag `{}` as dimension: type is {}",
                            f.name, f.dtype
                        )));
                    }
                    let role = match extent {
                        Some((lo, hi)) => Role::dim_bounded(*lo, *hi),
                        None => Role::dim(),
                    };
                    fields.push(Field {
                        name: f.name.clone(),
                        dtype: DataType::Int64,
                        role,
                    });
                }
                None => fields.push(Field::value(f.name.clone(), f.dtype)),
            }
        }
        for (n, _) in dims {
            if !self.fields.iter().any(|f| f.name == *n) {
                return Err(StorageError::UnknownField(n.to_string()));
            }
        }
        Schema::new(fields)
    }

    /// Concatenate two schemas (used by joins); duplicate names on the
    /// right are disambiguated with a suffix.
    pub fn join(&self, right: &Schema, suffix: &str) -> Result<Schema> {
        let mut fields = self.fields.clone();
        for f in &right.fields {
            let mut f = f.clone();
            if fields.iter().any(|g| g.name == f.name) {
                f.name = format!("{}{}", f.name, suffix);
            }
            fields.push(f);
        }
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fd) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if fd.is_dimension() {
                write!(f, "[{}]", fd.name)?;
                if let Some((lo, hi)) = fd.extent() {
                    write!(f, "={lo}..{hi}")?;
                }
            } else {
                write!(f, "{}: {}", fd.name, fd.dtype)?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::dimension_bounded("i", 0, 4),
            Field::dimension("j"),
            Field::value("v", DataType::Float64),
            Field::value("tag", DataType::Utf8),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates_duplicates() {
        let err = Schema::new(vec![
            Field::value("x", DataType::Int64),
            Field::value("x", DataType::Utf8),
        ])
        .unwrap_err();
        assert_eq!(err, StorageError::DuplicateField("x".into()));
    }

    #[test]
    fn construction_validates_dimension_type() {
        let bad = Field {
            name: "d".into(),
            dtype: DataType::Utf8,
            role: Role::dim(),
        };
        assert!(matches!(
            Schema::new(vec![bad]),
            Err(StorageError::DimensionError(_))
        ));
    }

    #[test]
    fn construction_validates_extent() {
        assert!(Schema::new(vec![Field::dimension_bounded("d", 5, 5)]).is_err());
        assert!(Schema::new(vec![Field::dimension_bounded("d", 0, 1)]).is_ok());
    }

    #[test]
    fn dimension_accessors() {
        let s = sample();
        assert_eq!(s.ndims(), 2);
        assert!(!s.is_relation());
        assert!(!s.is_bounded(), "j is unbounded");
        assert_eq!(s.dimensions().len(), 2);
        assert_eq!(s.values().len(), 2);
        assert_eq!(s.field("i").unwrap().extent(), Some((0, 4)));
    }

    #[test]
    fn lookup() {
        let s = sample();
        assert_eq!(s.index_of("v").unwrap(), 2);
        assert_eq!(
            s.index_of("zz").unwrap_err(),
            StorageError::UnknownField("zz".into())
        );
    }

    #[test]
    fn retagging_roundtrip() {
        let s = sample();
        let flat = s.untagged();
        assert!(flat.is_relation());
        let back = flat.tagged(&[("i", Some((0, 4))), ("j", None)]).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn tagging_rejects_non_int_and_unknown() {
        let s = sample();
        assert!(s.untagged().tagged(&[("tag", None)]).is_err());
        assert!(s.untagged().tagged(&[("nope", None)]).is_err());
    }

    #[test]
    fn join_disambiguates() {
        let a = Schema::new(vec![Field::value("k", DataType::Int64)]).unwrap();
        let b = Schema::new(vec![
            Field::value("k", DataType::Int64),
            Field::value("v", DataType::Utf8),
        ])
        .unwrap();
        let j = a.join(&b, "_r").unwrap();
        assert_eq!(j.names(), vec!["k", "k_r", "v"]);
    }

    #[test]
    fn display_shows_dims() {
        let s = sample().to_string();
        assert!(s.contains("[i]=0..4"), "{s}");
        assert!(s.contains("v: f64"), "{s}");
    }
}
