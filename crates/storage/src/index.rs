//! Secondary indexes over relational columns: hash (point lookups) and
//! sorted (point + range lookups).
//!
//! An index maps column values to row positions in the dataset's
//! *flattened* row order (the order [`DataSet::to_rows_chunk`]
//! produces: chunk concatenation). Null slots are excluded — a
//! comparison against a non-null literal can never select a null row,
//! and those are the only predicates indexes serve.
//!
//! The contract is **completeness only**: a lookup returns every
//! position that could satisfy the predicate; the caller re-evaluates
//! the full predicate on the candidates. Both representations order
//! values by [`Value::total_cmp`] — the same total order the expression
//! engine compares with — so range cuts agree with execution exactly,
//! NaN included.
//!
//! [`SecondaryIndex::fingerprint`] is a deterministic digest of the
//! canonical (value, position) mapping, hashed with the fixed-key
//! [`DefaultHasher`]: two builds over the same data — in different
//! processes, before and after crash recovery — produce the same
//! fingerprint byte-for-byte.

use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::dataset::DataSet;
use crate::error::StorageError;
use crate::stats::CmpOp;
use crate::value::Value;
use crate::Result;

/// The two index shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Value -> positions hash table; serves equality only.
    Hash,
    /// (value, position) pairs sorted by `total_cmp`; serves equality
    /// and ranges.
    Sorted,
}

impl IndexKind {
    /// Stable wire byte.
    pub fn as_u8(self) -> u8 {
        match self {
            IndexKind::Hash => 0,
            IndexKind::Sorted => 1,
        }
    }

    /// Inverse of [`IndexKind::as_u8`].
    pub fn from_u8(b: u8) -> Option<IndexKind> {
        match b {
            0 => Some(IndexKind::Hash),
            1 => Some(IndexKind::Sorted),
            _ => None,
        }
    }

    /// Human-readable name (`hash` / `sorted`).
    pub fn name(self) -> &'static str {
        match self {
            IndexKind::Hash => "hash",
            IndexKind::Sorted => "sorted",
        }
    }

    /// Inverse of [`IndexKind::name`].
    pub fn parse(s: &str) -> Option<IndexKind> {
        match s {
            "hash" => Some(IndexKind::Hash),
            "sorted" => Some(IndexKind::Sorted),
            _ => None,
        }
    }
}

/// What to build: which column, which shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpec {
    /// The indexed column's field name.
    pub column: String,
    /// Hash or sorted.
    pub kind: IndexKind,
}

/// A built secondary index.
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    spec: IndexSpec,
    rows: usize,
    hash: Option<HashMap<Value, Vec<u32>>>,
    sorted: Option<Vec<(Value, u32)>>,
}

impl SecondaryIndex {
    /// Build over the dataset's flattened row order.
    pub fn build(ds: &DataSet, spec: IndexSpec) -> Result<SecondaryIndex> {
        let col = ds.collect_column(&spec.column)?;
        if col.len() > u32::MAX as usize {
            return Err(StorageError::Invalid(format!(
                "cannot index {} rows (position overflow)",
                col.len()
            )));
        }
        let mut index = SecondaryIndex {
            spec,
            rows: col.len(),
            hash: None,
            sorted: None,
        };
        match index.spec.kind {
            IndexKind::Hash => {
                let mut table: HashMap<Value, Vec<u32>> = HashMap::new();
                for (i, v) in col.iter().enumerate() {
                    if !v.is_null() {
                        table.entry(v).or_default().push(i as u32);
                    }
                }
                index.hash = Some(table);
            }
            IndexKind::Sorted => {
                let mut entries: Vec<(Value, u32)> = col
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| !v.is_null())
                    .map(|(i, v)| (v, i as u32))
                    .collect();
                entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                index.sorted = Some(entries);
            }
        }
        Ok(index)
    }

    /// The spec this index was built from.
    pub fn spec(&self) -> &IndexSpec {
        &self.spec
    }

    /// Rows the indexed dataset had at build time.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Candidate positions for `column OP lit` (non-null `lit`), sorted
    /// ascending, or `None` when this index shape cannot serve the
    /// operator (the caller falls back to scanning).
    pub fn lookup(&self, op: CmpOp, lit: &Value) -> Option<Vec<u32>> {
        debug_assert!(!lit.is_null(), "index lookups take non-null literals");
        if let Some(table) = &self.hash {
            if op != CmpOp::Eq {
                return None;
            }
            let mut out = table.get(lit).cloned().unwrap_or_default();
            out.sort_unstable();
            return Some(out);
        }
        let entries = self.sorted.as_ref()?;
        let lower = entries.partition_point(|(v, _)| v.total_cmp(lit) == Ordering::Less);
        let upper = entries.partition_point(|(v, _)| v.total_cmp(lit) != Ordering::Greater);
        let range = match op {
            CmpOp::Eq => lower..upper,
            CmpOp::Lt => 0..lower,
            CmpOp::Le => 0..upper,
            CmpOp::Gt => upper..entries.len(),
            CmpOp::Ge => lower..entries.len(),
            CmpOp::Ne => return None,
        };
        let mut out: Vec<u32> = entries[range].iter().map(|(_, i)| *i).collect();
        out.sort_unstable();
        Some(out)
    }

    /// Deterministic digest of the canonical (value, position) mapping
    /// plus column name and kind. Equal across processes for equal
    /// builds; any divergence in the rebuilt index changes it.
    pub fn fingerprint(&self) -> u64 {
        let mut entries: Vec<(Value, u32)> = match (&self.hash, &self.sorted) {
            (Some(table), _) => table
                .iter()
                .flat_map(|(v, ps)| ps.iter().map(move |p| (v.clone(), *p)))
                .collect(),
            (_, Some(sorted)) => sorted.clone(),
            _ => Vec::new(),
        };
        entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut h = DefaultHasher::new();
        self.spec.kind.as_u8().hash(&mut h);
        self.spec.column.hash(&mut h);
        (self.rows as u64).hash(&mut h);
        for (v, p) in &entries {
            v.hash(&mut h);
            p.hash(&mut h);
        }
        h.finish()
    }
}

/// Append a spec's wire form: `[u8 kind][u32 LE len][column UTF-8]`.
pub fn encode_spec(spec: &IndexSpec, buf: &mut Vec<u8>) {
    buf.push(spec.kind.as_u8());
    buf.extend_from_slice(&(spec.column.len() as u32).to_le_bytes());
    buf.extend_from_slice(spec.column.as_bytes());
}

/// Decode one spec from the front of `bytes`; returns the spec and the
/// number of bytes consumed.
pub fn decode_spec(bytes: &[u8]) -> Result<(IndexSpec, usize)> {
    let truncated = || StorageError::Invalid("truncated index spec".into());
    let kind_byte = *bytes.first().ok_or_else(truncated)?;
    let kind = IndexKind::from_u8(kind_byte)
        .ok_or_else(|| StorageError::Invalid(format!("unknown index kind {kind_byte}")))?;
    if bytes.len() < 5 {
        return Err(truncated());
    }
    let len = u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes")) as usize;
    let end = 5usize.checked_add(len).ok_or_else(truncated)?;
    if bytes.len() < end {
        return Err(truncated());
    }
    let column = std::str::from_utf8(&bytes[5..end])
        .map_err(|e| StorageError::Invalid(format!("index spec column not UTF-8: {e}")))?
        .to_string();
    Ok((IndexSpec { column, kind }, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::types::DataType;

    fn table() -> DataSet {
        let k = Column::from_values(
            DataType::Int64,
            &[
                Value::Int(5),
                Value::Int(2),
                Value::Null,
                Value::Int(5),
                Value::Int(9),
            ],
        )
        .unwrap();
        DataSet::from_columns(vec![("k", k)]).unwrap()
    }

    #[test]
    fn hash_index_point_lookup() {
        let idx = SecondaryIndex::build(
            &table(),
            IndexSpec {
                column: "k".into(),
                kind: IndexKind::Hash,
            },
        )
        .unwrap();
        assert_eq!(idx.lookup(CmpOp::Eq, &Value::Int(5)), Some(vec![0, 3]));
        assert_eq!(idx.lookup(CmpOp::Eq, &Value::Int(7)), Some(vec![]));
        // Int/Float grouping equality: 5.0 finds the Int(5) rows.
        assert_eq!(idx.lookup(CmpOp::Eq, &Value::Float(5.0)), Some(vec![0, 3]));
        assert_eq!(idx.lookup(CmpOp::Gt, &Value::Int(0)), None, "hash has no ranges");
    }

    #[test]
    fn sorted_index_ranges() {
        let idx = SecondaryIndex::build(
            &table(),
            IndexSpec {
                column: "k".into(),
                kind: IndexKind::Sorted,
            },
        )
        .unwrap();
        assert_eq!(idx.lookup(CmpOp::Eq, &Value::Int(5)), Some(vec![0, 3]));
        assert_eq!(idx.lookup(CmpOp::Lt, &Value::Int(5)), Some(vec![1]));
        assert_eq!(idx.lookup(CmpOp::Le, &Value::Int(5)), Some(vec![0, 1, 3]));
        assert_eq!(idx.lookup(CmpOp::Gt, &Value::Int(5)), Some(vec![4]));
        assert_eq!(idx.lookup(CmpOp::Ge, &Value::Int(5)), Some(vec![0, 3, 4]));
        assert_eq!(idx.lookup(CmpOp::Ne, &Value::Int(5)), None, "Ne falls back");
        // Null row (position 2) never appears.
        for op in [CmpOp::Le, CmpOp::Ge] {
            assert!(!idx.lookup(op, &Value::Int(100)).unwrap().contains(&2));
            assert!(!idx.lookup(op, &Value::Int(-100)).unwrap().contains(&2));
        }
    }

    #[test]
    fn index_spans_chunks_in_flattened_order() {
        let mut ds = table();
        let extra = DataSet::from_columns(vec![("k", Column::from(vec![2i64]))]).unwrap();
        ds.push_chunk(extra.chunks()[0].clone());
        let idx = SecondaryIndex::build(
            &ds,
            IndexSpec {
                column: "k".into(),
                kind: IndexKind::Sorted,
            },
        )
        .unwrap();
        assert_eq!(idx.lookup(CmpOp::Eq, &Value::Int(2)), Some(vec![1, 5]));
    }

    #[test]
    fn fingerprints_equal_across_kinds_of_build_not_kinds() {
        let spec = |kind| IndexSpec {
            column: "k".into(),
            kind,
        };
        let a = SecondaryIndex::build(&table(), spec(IndexKind::Hash)).unwrap();
        let b = SecondaryIndex::build(&table(), spec(IndexKind::Hash)).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = SecondaryIndex::build(&table(), spec(IndexKind::Sorted)).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint(), "kind is part of the digest");
        let mut bigger = table();
        bigger.push_chunk(table().chunks()[0].clone());
        let d = SecondaryIndex::build(&bigger, spec(IndexKind::Hash)).unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn unknown_column_is_an_error() {
        let err = SecondaryIndex::build(
            &table(),
            IndexSpec {
                column: "nope".into(),
                kind: IndexKind::Hash,
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn spec_codec_round_trips_and_rejects_garbage() {
        let spec = IndexSpec {
            column: "col_x".into(),
            kind: IndexKind::Sorted,
        };
        let mut buf = Vec::new();
        encode_spec(&spec, &mut buf);
        let (back, used) = decode_spec(&buf).unwrap();
        assert_eq!(back, spec);
        assert_eq!(used, buf.len());
        assert!(decode_spec(&[]).is_err());
        assert!(decode_spec(&[9, 0, 0, 0, 0]).is_err(), "unknown kind");
        assert!(decode_spec(&buf[..buf.len() - 1]).is_err(), "truncated");
    }
}
