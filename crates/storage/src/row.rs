//! Row: a materialized tuple, used by the reference evaluator and tests.

use std::fmt;

use crate::value::Value;

/// A single tuple of scalar values, positionally aligned with a schema.
///
/// Rows are the lingua franca of the *reference* evaluator (which defines
/// the algebra's semantics) and of test assertions; the engines themselves
/// stay columnar.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// An empty row.
    pub fn new() -> Row {
        Row(Vec::new())
    }

    /// The number of values.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the row has no values.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Value at position `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Concatenate two rows (join output construction).
    pub fn concat(&self, other: &Row) -> Row {
        let mut vals = Vec::with_capacity(self.0.len() + other.0.len());
        vals.extend_from_slice(&self.0);
        vals.extend_from_slice(&other.0);
        Row(vals)
    }

    /// Project positions `indices` into a new row.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Lexicographic comparison using [`Value::total_cmp`].
    pub fn total_cmp(&self, other: &Row) -> std::cmp::Ordering {
        for (a, b) in self.0.iter().zip(&other.0) {
            let ord = a.total_cmp(b);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl Default for Row {
    fn default() -> Self {
        Row::new()
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row(v)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_and_project() {
        let a = Row(vec![Value::Int(1), Value::from("x")]);
        let b = Row(vec![Value::Bool(true)]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        let p = c.project(&[2, 0]);
        assert_eq!(p, Row(vec![Value::Bool(true), Value::Int(1)]));
    }

    #[test]
    fn lexicographic_order() {
        let a = Row(vec![Value::Int(1), Value::Int(2)]);
        let b = Row(vec![Value::Int(1), Value::Int(3)]);
        assert_eq!(a.total_cmp(&b), std::cmp::Ordering::Less);
        let shorter = Row(vec![Value::Int(1)]);
        assert_eq!(shorter.total_cmp(&a), std::cmp::Ordering::Less);
    }

    #[test]
    fn display() {
        let r = Row(vec![Value::Int(1), Value::Null]);
        assert_eq!(r.to_string(), "(1, null)");
    }
}
