//! Scalar values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::StorageError;
use crate::types::DataType;
use crate::Result;

/// A single scalar value, possibly null.
///
/// `Value` is the exchange currency between the row-oriented reference
/// evaluator, the expression engine and the columnar kernels. Hot loops
/// avoid it by operating on [`crate::Column`]s directly, but semantics are
/// defined in terms of `Value`.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL-style null: unknown value of unknown type.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// The value's data type, or `None` for null.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int64),
            Value::Float(_) => Some(DataType::Float64),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Str(_) => Some(DataType::Utf8),
        }
    }

    /// True if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an `i64`, widening never, erroring on anything else.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(type_err(DataType::Int64, other, "as_int")),
        }
    }

    /// Extract an `f64`, implicitly widening integers.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(type_err(DataType::Float64, other, "as_float")),
        }
    }

    /// Extract a bool.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(type_err(DataType::Bool, other, "as_bool")),
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(v) => Ok(v),
            other => Err(type_err(DataType::Utf8, other, "as_str")),
        }
    }

    /// Cast to the given type following the algebra's cast rules.
    ///
    /// Null casts to null; numeric casts truncate toward zero; anything
    /// casts to `Utf8` via its display form; `Utf8` parses into numerics
    /// and bools, yielding null on parse failure (SQL `TRY_CAST` flavour,
    /// which keeps cast total and lets property tests compose it freely).
    pub fn cast(&self, to: DataType) -> Value {
        match (self, to) {
            (Value::Null, _) => Value::Null,
            (v, t) if v.dtype() == Some(t) => v.clone(),
            (Value::Int(v), DataType::Float64) => Value::Float(*v as f64),
            (Value::Float(v), DataType::Int64) => {
                if v.is_finite() && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 {
                    Value::Int(*v as i64)
                } else {
                    Value::Null
                }
            }
            (Value::Bool(v), DataType::Int64) => Value::Int(*v as i64),
            (Value::Bool(v), DataType::Float64) => Value::Float(*v as i64 as f64),
            (v, DataType::Utf8) => Value::Str(v.to_string()),
            (Value::Str(s), DataType::Int64) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or(Value::Null),
            (Value::Str(s), DataType::Float64) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .unwrap_or(Value::Null),
            (Value::Str(s), DataType::Bool) => match s.trim() {
                "true" | "TRUE" | "t" | "1" => Value::Bool(true),
                "false" | "FALSE" | "f" | "0" => Value::Bool(false),
                _ => Value::Null,
            },
            (Value::Int(_) | Value::Float(_), DataType::Bool) => Value::Null,
            // Identity casts are caught by the guard above; this arm is
            // unreachable but required for exhaustiveness.
            (v, _) => v.clone(),
        }
    }

    /// Total ordering used for sorting and merge joins.
    ///
    /// Nulls sort first; numeric values compare by numeric value across
    /// `Int`/`Float`; NaN sorts after all other floats; cross-type
    /// comparisons fall back to a type-rank order so the relation is total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// Equality with SQL flavour lifted to a total function: null equals
    /// null here (needed for grouping and distinct); use predicates in the
    /// expression engine for three-valued SQL equality.
    pub fn grouping_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Int(_) | Value::Float(_) => 1,
        Value::Bool(_) => 2,
        Value::Str(_) => 3,
    }
}

fn type_err(expected: DataType, actual: &Value, context: &str) -> StorageError {
    match actual.dtype() {
        Some(dt) => StorageError::TypeMismatch {
            expected,
            actual: dt,
            context: context.to_string(),
        },
        None => StorageError::Invalid(format!("{context}: unexpected null")),
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.grouping_eq(other)
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash ints and floats identically when they compare equal,
            // so `grouping_eq`-equal values land in the same hash bucket.
            Value::Int(v) => {
                1u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                1u8.hash(state);
                // Normalize -0.0 to 0.0; total_cmp distinguishes them but
                // grouping treats them via total_cmp, which also
                // distinguishes them, so keep bits — except we must match
                // Int hashing for integral floats.
                v.to_bits().hash(state);
            }
            Value::Bool(v) => {
                2u8.hash(state);
                v.hash(state);
            }
            Value::Str(v) => {
                3u8.hash(state);
                v.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => f.write_str(v),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_of_values() {
        assert_eq!(Value::Null.dtype(), None);
        assert_eq!(Value::Int(1).dtype(), Some(DataType::Int64));
        assert_eq!(Value::Float(1.0).dtype(), Some(DataType::Float64));
        assert_eq!(Value::Bool(true).dtype(), Some(DataType::Bool));
        assert_eq!(Value::from("x").dtype(), Some(DataType::Utf8));
    }

    #[test]
    fn extraction_and_widening() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert_eq!(Value::Int(7).as_float().unwrap(), 7.0);
        assert_eq!(Value::Float(2.5).as_float().unwrap(), 2.5);
        assert!(Value::Float(2.5).as_int().is_err());
        assert!(Value::Null.as_int().is_err());
    }

    #[test]
    fn cast_numeric() {
        assert_eq!(Value::Int(3).cast(DataType::Float64), Value::Float(3.0));
        assert_eq!(Value::Float(3.9).cast(DataType::Int64), Value::Int(3));
        assert_eq!(Value::Float(-3.9).cast(DataType::Int64), Value::Int(-3));
        assert_eq!(Value::Float(f64::NAN).cast(DataType::Int64), Value::Null);
        assert_eq!(Value::Float(1e300).cast(DataType::Int64), Value::Null);
    }

    #[test]
    fn cast_string_parsing() {
        assert_eq!(Value::from(" 42 ").cast(DataType::Int64), Value::Int(42));
        assert_eq!(
            Value::from("2.5").cast(DataType::Float64),
            Value::Float(2.5)
        );
        assert_eq!(Value::from("true").cast(DataType::Bool), Value::Bool(true));
        assert_eq!(Value::from("nope").cast(DataType::Int64), Value::Null);
    }

    #[test]
    fn cast_to_string_matches_display() {
        for v in [Value::Int(5), Value::Float(2.5), Value::Bool(false)] {
            assert_eq!(v.cast(DataType::Utf8), Value::Str(v.to_string()));
        }
    }

    #[test]
    fn total_ordering_null_first_nan_last() {
        let mut vs = [
            Value::Float(f64::NAN),
            Value::Int(2),
            Value::Null,
            Value::Float(1.5),
        ];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert!(vs[0].is_null());
        assert_eq!(vs[1], Value::Float(1.5));
        assert_eq!(vs[2], Value::Int(2));
        assert!(matches!(vs[3], Value::Float(v) if v.is_nan()));
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert!(Value::Int(2).grouping_eq(&Value::Float(2.0)));
    }

    #[test]
    fn grouping_equality_hash_consistency() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        // Values that are grouping-equal must hash equally.
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
        assert_eq!(h(&Value::Null), h(&Value::Null));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.25).to_string(), "2.25");
        assert_eq!(Value::from("hi").to_string(), "hi");
    }
}
