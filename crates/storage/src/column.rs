//! Typed columns: the unit of vectorized execution.

use crate::bitmap::Bitmap;
use crate::error::StorageError;
use crate::types::DataType;
use crate::value::Value;
use crate::Result;

/// A typed column of values with an optional validity bitmap.
///
/// `validity == None` means every slot is valid — the common case, kept
/// allocation-free. Data slots under a null bit hold an arbitrary (but
/// deterministic: zero/empty) payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int64(Vec<i64>, Option<Bitmap>),
    /// 64-bit floats.
    Float64(Vec<f64>, Option<Bitmap>),
    /// Booleans.
    Bool(Vec<bool>, Option<Bitmap>),
    /// UTF-8 strings.
    Utf8(Vec<String>, Option<Bitmap>),
}

impl Column {
    /// An empty column of the given type.
    pub fn new_empty(dtype: DataType) -> Column {
        match dtype {
            DataType::Int64 => Column::Int64(Vec::new(), None),
            DataType::Float64 => Column::Float64(Vec::new(), None),
            DataType::Bool => Column::Bool(Vec::new(), None),
            DataType::Utf8 => Column::Utf8(Vec::new(), None),
        }
    }

    /// A column of `len` nulls of the given type.
    pub fn nulls(dtype: DataType, len: usize) -> Column {
        let validity = Some(Bitmap::filled(len, false));
        match dtype {
            DataType::Int64 => Column::Int64(vec![0; len], validity),
            DataType::Float64 => Column::Float64(vec![0.0; len], validity),
            DataType::Bool => Column::Bool(vec![false; len], validity),
            DataType::Utf8 => Column::Utf8(vec![String::new(); len], validity),
        }
    }

    /// Build a column of `dtype` from scalar values, which must each be
    /// null or of `dtype` exactly (no implicit coercion at this layer).
    pub fn from_values(dtype: DataType, values: &[Value]) -> Result<Column> {
        let mut col = Column::new_empty(dtype);
        for v in values {
            col.push(v)?;
        }
        Ok(col)
    }

    /// Length in slots.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(d, _) => d.len(),
            Column::Float64(d, _) => d.len(),
            Column::Bool(d, _) => d.len(),
            Column::Utf8(d, _) => d.len(),
        }
    }

    /// True when the column has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int64(..) => DataType::Int64,
            Column::Float64(..) => DataType::Float64,
            Column::Bool(..) => DataType::Bool,
            Column::Utf8(..) => DataType::Utf8,
        }
    }

    /// The validity bitmap, if any slot may be null.
    pub fn validity(&self) -> Option<&Bitmap> {
        match self {
            Column::Int64(_, v)
            | Column::Float64(_, v)
            | Column::Bool(_, v)
            | Column::Utf8(_, v) => v.as_ref(),
        }
    }

    fn validity_mut(&mut self) -> &mut Option<Bitmap> {
        match self {
            Column::Int64(_, v)
            | Column::Float64(_, v)
            | Column::Bool(_, v)
            | Column::Utf8(_, v) => v,
        }
    }

    /// True if slot `i` is valid (non-null).
    pub fn is_valid(&self, i: usize) -> bool {
        match self.validity() {
            Some(bm) => bm.get(i),
            None => {
                assert!(i < self.len(), "slot {i} out of range {}", self.len());
                true
            }
        }
    }

    /// Number of null slots.
    pub fn null_count(&self) -> usize {
        match self.validity() {
            Some(bm) => bm.len() - bm.count_ones(),
            None => 0,
        }
    }

    /// Read slot `i` as a scalar.
    pub fn get(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match self {
            Column::Int64(d, _) => Value::Int(d[i]),
            Column::Float64(d, _) => Value::Float(d[i]),
            Column::Bool(d, _) => Value::Bool(d[i]),
            Column::Utf8(d, _) => Value::Str(d[i].clone()),
        }
    }

    /// Append a scalar, which must be null or match the column's type.
    pub fn push(&mut self, v: &Value) -> Result<()> {
        let len = self.len();
        if v.is_null() {
            let validity = self.validity_mut();
            let bm = validity.get_or_insert_with(|| Bitmap::filled(len, true));
            bm.push(false);
            match self {
                Column::Int64(d, _) => d.push(0),
                Column::Float64(d, _) => d.push(0.0),
                Column::Bool(d, _) => d.push(false),
                Column::Utf8(d, _) => d.push(String::new()),
            }
            return Ok(());
        }
        match (&mut *self, v) {
            (Column::Int64(d, _), Value::Int(x)) => d.push(*x),
            (Column::Float64(d, _), Value::Float(x)) => d.push(*x),
            (Column::Bool(d, _), Value::Bool(x)) => d.push(*x),
            (Column::Utf8(d, _), Value::Str(x)) => d.push(x.clone()),
            (col, v) => {
                return Err(StorageError::TypeMismatch {
                    expected: col.dtype(),
                    actual: v.dtype().unwrap_or(DataType::Utf8),
                    context: "Column::push".into(),
                })
            }
        }
        if let Some(bm) = self.validity_mut() {
            bm.push(true);
        }
        Ok(())
    }

    /// Keep only the slots where `mask[i]` is true, preserving order.
    pub fn filter(&self, mask: &[bool]) -> Column {
        assert_eq!(self.len(), mask.len(), "mask length mismatch");
        fn keep<T: Clone>(data: &[T], mask: &[bool]) -> Vec<T> {
            data.iter()
                .zip(mask)
                .filter(|(_, &m)| m)
                .map(|(v, _)| v.clone())
                .collect()
        }
        let validity = self.validity().map(|bm| bm.filter(mask));
        match self {
            Column::Int64(d, _) => Column::Int64(keep(d, mask), validity),
            Column::Float64(d, _) => Column::Float64(keep(d, mask), validity),
            Column::Bool(d, _) => Column::Bool(keep(d, mask), validity),
            Column::Utf8(d, _) => Column::Utf8(keep(d, mask), validity),
        }
    }

    /// Gather slots at `indices` (may repeat or reorder).
    pub fn take(&self, indices: &[usize]) -> Column {
        fn gather<T: Clone>(data: &[T], indices: &[usize]) -> Vec<T> {
            indices.iter().map(|&i| data[i].clone()).collect()
        }
        let validity = self.validity().map(|bm| bm.take(indices));
        match self {
            Column::Int64(d, _) => Column::Int64(gather(d, indices), validity),
            Column::Float64(d, _) => Column::Float64(gather(d, indices), validity),
            Column::Bool(d, _) => Column::Bool(gather(d, indices), validity),
            Column::Utf8(d, _) => Column::Utf8(gather(d, indices), validity),
        }
    }

    /// Concatenate another column of the same type onto this one.
    pub fn extend(&mut self, other: &Column) -> Result<()> {
        if self.dtype() != other.dtype() {
            return Err(StorageError::TypeMismatch {
                expected: self.dtype(),
                actual: other.dtype(),
                context: "Column::extend".into(),
            });
        }
        // Normalize validity: if either side tracks nulls, both must.
        let (self_len, other_len) = (self.len(), other.len());
        let merged_validity = match (self.validity(), other.validity()) {
            (None, None) => None,
            (a, b) => {
                let mut bm = a.cloned().unwrap_or_else(|| Bitmap::filled(self_len, true));
                match b {
                    Some(other_bm) => bm.extend(other_bm),
                    None => bm.extend(&Bitmap::filled(other_len, true)),
                }
                Some(bm)
            }
        };
        match (&mut *self, other) {
            (Column::Int64(d, _), Column::Int64(o, _)) => d.extend_from_slice(o),
            (Column::Float64(d, _), Column::Float64(o, _)) => d.extend_from_slice(o),
            (Column::Bool(d, _), Column::Bool(o, _)) => d.extend_from_slice(o),
            (Column::Utf8(d, _), Column::Utf8(o, _)) => d.extend_from_slice(o),
            _ => unreachable!("dtype checked above"),
        }
        *self.validity_mut() = merged_validity;
        Ok(())
    }

    /// Borrow the raw `i64` data (ignores validity). Errors on other types.
    pub fn i64_data(&self) -> Result<&[i64]> {
        match self {
            Column::Int64(d, _) => Ok(d),
            other => Err(StorageError::TypeMismatch {
                expected: DataType::Int64,
                actual: other.dtype(),
                context: "i64_data".into(),
            }),
        }
    }

    /// Borrow the raw `f64` data (ignores validity). Errors on other types.
    pub fn f64_data(&self) -> Result<&[f64]> {
        match self {
            Column::Float64(d, _) => Ok(d),
            other => Err(StorageError::TypeMismatch {
                expected: DataType::Float64,
                actual: other.dtype(),
                context: "f64_data".into(),
            }),
        }
    }

    /// Borrow the raw bool data (ignores validity). Errors on other types.
    pub fn bool_data(&self) -> Result<&[bool]> {
        match self {
            Column::Bool(d, _) => Ok(d),
            other => Err(StorageError::TypeMismatch {
                expected: DataType::Bool,
                actual: other.dtype(),
                context: "bool_data".into(),
            }),
        }
    }

    /// Borrow the raw string data (ignores validity). Errors on other types.
    pub fn utf8_data(&self) -> Result<&[String]> {
        match self {
            Column::Utf8(d, _) => Ok(d),
            other => Err(StorageError::TypeMismatch {
                expected: DataType::Utf8,
                actual: other.dtype(),
                context: "utf8_data".into(),
            }),
        }
    }

    /// Iterate over all slots as scalars.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Cast every slot to `to`, following [`Value::cast`] semantics.
    pub fn cast(&self, to: DataType) -> Column {
        if self.dtype() == to {
            return self.clone();
        }
        let mut out = Column::new_empty(to);
        for v in self.iter() {
            out.push(&v.cast(to))
                .expect("cast yields target type or null");
        }
        out
    }

    /// Drop the validity bitmap if it is all-valid (normalization used
    /// before equality checks and wire encoding).
    pub fn normalize(&mut self) {
        let drop_it = matches!(self.validity(), Some(bm) if bm.all_set());
        if drop_it {
            *self.validity_mut() = None;
        }
    }
}

/// Convenience constructors from plain vectors (all-valid).
impl From<Vec<i64>> for Column {
    fn from(v: Vec<i64>) -> Self {
        Column::Int64(v, None)
    }
}

impl From<Vec<f64>> for Column {
    fn from(v: Vec<f64>) -> Self {
        Column::Float64(v, None)
    }
}

impl From<Vec<bool>> for Column {
    fn from(v: Vec<bool>) -> Self {
        Column::Bool(v, None)
    }
}

impl From<Vec<String>> for Column {
    fn from(v: Vec<String>) -> Self {
        Column::Utf8(v, None)
    }
}

impl From<Vec<&str>> for Column {
    fn from(v: Vec<&str>) -> Self {
        Column::Utf8(v.into_iter().map(str::to_string).collect(), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut c = Column::new_empty(DataType::Int64);
        c.push(&Value::Int(1)).unwrap();
        c.push(&Value::Null).unwrap();
        c.push(&Value::Int(3)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Int(3));
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn push_type_mismatch() {
        let mut c = Column::new_empty(DataType::Bool);
        assert!(c.push(&Value::Int(1)).is_err());
        assert_eq!(c.len(), 0, "failed push must not mutate");
    }

    #[test]
    fn from_values_and_iter() {
        let vals = vec![Value::Float(1.0), Value::Null, Value::Float(2.0)];
        let c = Column::from_values(DataType::Float64, &vals).unwrap();
        let back: Vec<Value> = c.iter().collect();
        assert_eq!(back, vals);
    }

    #[test]
    fn filter_preserves_validity() {
        let c = Column::from_values(
            DataType::Utf8,
            &[
                Value::from("a"),
                Value::Null,
                Value::from("c"),
                Value::from("d"),
            ],
        )
        .unwrap();
        let f = c.filter(&[true, true, false, true]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.get(0), Value::from("a"));
        assert_eq!(f.get(1), Value::Null);
        assert_eq!(f.get(2), Value::from("d"));
    }

    #[test]
    fn take_reorders_and_repeats() {
        let c = Column::from(vec![10i64, 20, 30]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.get(0), Value::Int(30));
        assert_eq!(t.get(1), Value::Int(10));
        assert_eq!(t.get(2), Value::Int(10));
    }

    #[test]
    fn extend_merges_validity() {
        let mut a = Column::from(vec![1i64, 2]);
        let b = Column::from_values(DataType::Int64, &[Value::Null, Value::Int(4)]).unwrap();
        a.extend(&b).unwrap();
        assert_eq!(a.len(), 4);
        assert!(a.is_valid(0) && a.is_valid(1) && !a.is_valid(2) && a.is_valid(3));
        // And the symmetric case: nullable extended by all-valid.
        let mut c = Column::from_values(DataType::Int64, &[Value::Null]).unwrap();
        c.extend(&Column::from(vec![9i64])).unwrap();
        assert!(!c.is_valid(0) && c.is_valid(1));
    }

    #[test]
    fn extend_type_mismatch() {
        let mut a = Column::from(vec![1i64]);
        assert!(a.extend(&Column::from(vec![1.0f64])).is_err());
    }

    #[test]
    fn nulls_constructor() {
        let c = Column::nulls(DataType::Float64, 5);
        assert_eq!(c.len(), 5);
        assert_eq!(c.null_count(), 5);
    }

    #[test]
    fn cast_column() {
        let c = Column::from(vec![1i64, 2]);
        let f = c.cast(DataType::Float64);
        assert_eq!(f.f64_data().unwrap(), &[1.0, 2.0]);
        let s = c.cast(DataType::Utf8);
        assert_eq!(s.get(0), Value::from("1"));
    }

    #[test]
    fn normalize_drops_full_validity() {
        let mut c = Column::from_values(DataType::Int64, &[Value::Int(1)]).unwrap();
        // Push a null then filter it out; validity bitmap remains but is all-set.
        c.push(&Value::Null).unwrap();
        let mut f = c.filter(&[true, false]);
        assert!(f.validity().is_some());
        f.normalize();
        assert!(f.validity().is_none());
    }

    #[test]
    fn raw_accessors() {
        assert!(Column::from(vec![1i64]).f64_data().is_err());
        assert_eq!(Column::from(vec![true]).bool_data().unwrap(), &[true]);
        assert_eq!(
            Column::from(vec!["x"]).utf8_data().unwrap(),
            &["x".to_string()]
        );
    }
}
