//! # `bda-federation`: the multi-server framework
//!
//! The organizing framework the paper calls for: providers register their
//! catalogs and capabilities ([`registry`]), logical plans are optimized
//! ([`mod@optimize`]) — including intent *recognition* so specialized servers
//! see `MatMul` as `MatMul` (desideratum 3) — then fragmented across sites
//! ([`planner`], falling back to intent *lowering* where no specialist
//! exists, desideratum 2) and executed with intermediates flowing
//! directly server-to-server or, for the baseline, through the
//! application tier ([`executor`], desideratum 4). A thread-per-provider
//! message cluster ([`cluster`]) measures expression-tree shipping versus
//! per-operator round trips. All byte counts come from the real wire
//! codec; time is charged on a deterministic simulated network
//! ([`metrics`]).

pub mod cluster;
pub mod executor;
pub mod explain;
pub mod fault;
pub mod metrics;
pub mod optimize;
pub mod planner;
pub mod registry;

pub use cluster::{Cluster, WireStats};
pub use executor::{
    run_plan, run_plan_traced, ExecOptions, RecoveryPolicy, TransferMode, CALIBRATE_ENV,
};
pub use explain::{render_analyze, render_analyze_with_costs};
pub use fault::{
    disk_faults_from_env, fault_seed_from_env, DiskFaults, FaultConfig, FaultyProvider,
    FAULT_SEED_ENV,
};
pub use metrics::{Metrics, NetConfig, TransferRecord};
pub use optimize::{optimize, OptimizerConfig};
pub use planner::{Fragment, Placement, Planner, APP_SITE, FRAG_PREFIX};
pub use registry::{
    translatability, BreakerConfig, BreakerState, HealthBoard, MaskedProvider, Registry,
    Translation,
};

use std::sync::Arc;

use bda_core::{CoreError, Plan, Provider};
use bda_storage::DataSet;

/// The top-level façade: a registry plus execution options.
///
/// ```
/// use bda_federation::Federation;
/// use bda_relational::RelationalEngine;
/// use bda_core::{Plan, col, lit, Provider};
/// use bda_storage::{Column, DataSet};
/// use std::sync::Arc;
///
/// let rel = RelationalEngine::new("rel");
/// rel.store("t", DataSet::from_columns(vec![
///     ("k", Column::from(vec![1i64, 2, 3])),
/// ]).unwrap()).unwrap();
///
/// let mut fed = Federation::new();
/// fed.register(Arc::new(rel));
/// let plan = Plan::scan("t", fed.registry().schema_of("t").unwrap())
///     .select(col("k").gt(lit(1i64)));
/// let (result, metrics) = fed.run(&plan).unwrap();
/// assert_eq!(result.num_rows(), 2);
/// assert_eq!(metrics.fragments, 1);
/// ```
#[derive(Default)]
pub struct Federation {
    registry: Registry,
    options: ExecOptions,
}

impl Federation {
    /// An empty federation with default options.
    pub fn new() -> Federation {
        Federation {
            registry: Registry::new(),
            options: ExecOptions::default(),
        }
    }

    /// Register a back-end provider.
    pub fn register(&mut self, p: Arc<dyn Provider>) {
        self.registry.register(p);
    }

    /// The registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Current execution options (mutable).
    pub fn options_mut(&mut self) -> &mut ExecOptions {
        &mut self.options
    }

    /// Run a plan with the current options.
    pub fn run(&self, plan: &Plan) -> Result<(DataSet, Metrics), CoreError> {
        self.run_with(plan, &self.options)
    }

    /// Run a plan with explicit options.
    pub fn run_with(
        &self,
        plan: &Plan,
        options: &ExecOptions,
    ) -> Result<(DataSet, Metrics), CoreError> {
        if !bda_obs::meter::enabled() {
            return run_plan(&self.registry, plan, options);
        }
        // Metered untraced path: no span tree to distill, so charge the
        // run's wall clock and the executor's own accounting to the
        // in-process tenant. One Instant and one book update — cheap
        // enough for the 2% overhead budget the CI guard enforces.
        let start = std::time::Instant::now();
        let result = run_plan(&self.registry, plan, options);
        if let Ok((data, metrics)) = &result {
            bda_obs::meter::global_usage().charge_query(
                bda_obs::meter::DEFAULT_TENANT,
                data.num_rows() as u64,
                metrics.data_bytes() as u64,
                start.elapsed().as_nanos() as u64,
                metrics.real_wire_bytes,
                metrics.retries as u64,
            );
        }
        result
    }

    /// Run a plan recording spans into `tracer` (pass
    /// [`bda_obs::Tracer::disabled`] for the untraced fast path). When
    /// the tracer is enabled, the finished trace is published to the
    /// process-global [`bda_obs::store`] (for `GET /traces/<id>`), its
    /// profile is distilled into the global query log (`GET /queries`)
    /// and folded into the [`bda_obs::profile::CostBook`] — every traced
    /// query recalibrates the measured cost model. A query the log
    /// flags slow (wall > p99 × k) gets its trace pinned past ring
    /// churn and a stamp in the flight recorder.
    pub fn run_traced(
        &self,
        plan: &Plan,
        tracer: &bda_obs::Tracer,
    ) -> Result<(DataSet, Metrics), CoreError> {
        self.run_traced_as(plan, tracer, bda_obs::meter::DEFAULT_TENANT)
    }

    /// [`Federation::run_traced`] on behalf of a named tenant: the
    /// distilled profile (query log, cost book) carries `tenant`, and
    /// when metering is enabled the query's rows, bytes, CPU and wire
    /// traffic are charged to it in the global [`bda_obs::UsageBook`].
    /// Serving tiers pass the identity lifted from the wire tag; local
    /// callers use `run_traced`, which charges
    /// [`bda_obs::meter::DEFAULT_TENANT`].
    pub fn run_traced_as(
        &self,
        plan: &Plan,
        tracer: &bda_obs::Tracer,
        tenant: &str,
    ) -> Result<(DataSet, Metrics), CoreError> {
        let result = run_plan_traced(&self.registry, plan, &self.options, tracer, None);
        if tracer.is_enabled() {
            let trace = tracer.finish();
            let trace_id = trace.trace_id;
            let profile = bda_obs::profile::QueryProfile::from_trace(&trace);
            bda_obs::store::global().publish(trace);
            if let Some(mut profile) = profile {
                profile.tenant = tenant.to_string();
                if bda_obs::meter::enabled() {
                    bda_obs::meter::global_usage().charge(&profile);
                }
                bda_obs::profile::global_costs().observe(&profile);
                let wall_ms = profile.wall_ns as f64 / 1e6;
                let outcome = bda_obs::profile::global_log().push(profile);
                if outcome.slow {
                    bda_obs::store::global().pin(trace_id);
                    bda_obs::flight::global().record("app", || {
                        format!(
                            "slow-query trace={trace_id:#018x} wall_ms={wall_ms:.3} p99_ms={:.3}",
                            outcome.p99_ns.unwrap_or(0) as f64 / 1e6
                        )
                    });
                }
            }
        }
        result
    }

    /// The current [`Health`](bda_obs::Health) of this federation for the
    /// HTTP `/healthz` and `/readyz` endpoints: ready while no provider's
    /// circuit breaker is open, with a per-provider detail line.
    pub fn health(&self) -> bda_obs::Health {
        health_of(&self.registry)
    }

    /// Mount the observability HTTP server for this federation's
    /// registry: `/readyz` follows the registry's circuit breakers,
    /// `/metrics` serves `hub`, and `/cluster/metrics` serves the fleet
    /// view — this hub's exposition merged with every remote provider's
    /// own `/metrics`-equivalent (pulled over `Request::Metrics` at
    /// scrape time), each sample labeled `instance="app"` or the
    /// provider's name. The registry's health board is shared via
    /// `Arc`, so breaker trips after mounting are visible.
    pub fn serve_ops(
        &self,
        bind: &str,
        hub: bda_obs::MetricsHub,
    ) -> std::io::Result<bda_obs::OpsHandle> {
        let registry = self.registry.clone();
        let fleet = self.registry.clone();
        let fleet_hub = hub.clone();
        bda_obs::serve_ops(
            bind,
            bda_obs::OpsOptions {
                metrics: hub,
                health: Arc::new(move || health_of(&registry)),
                cluster: Some(Arc::new(move || {
                    let mut sections = vec![("app".to_string(), fleet_hub.render())];
                    for p in fleet.providers() {
                        if let Some(text) = p.metrics_text() {
                            sections.push((p.name().to_string(), text));
                        }
                    }
                    bda_obs::metrics::merge_instances(&sections)
                })),
                ..bda_obs::OpsOptions::default()
            },
        )
    }
}

/// [`bda_obs::Health`] from a registry's circuit-breaker board: live
/// always (the process is answering), ready while no breaker is open.
pub fn health_of(registry: &Registry) -> bda_obs::Health {
    let snapshot = registry.health().snapshot();
    let open: Vec<&str> = snapshot
        .iter()
        .filter(|(_, s)| *s == BreakerState::Open)
        .map(|(n, _)| n.as_str())
        .collect();
    let detail = if snapshot.is_empty() {
        "breakers: none tracked".to_string()
    } else {
        format!(
            "breakers: {}",
            snapshot
                .iter()
                .map(|(n, s)| format!("{n}={}", s.name()))
                .collect::<Vec<_>>()
                .join(" ")
        )
    };
    bda_obs::Health {
        healthy: true,
        ready: open.is_empty(),
        detail,
    }
}

impl Federation {
    /// `EXPLAIN ANALYZE`: run the plan with tracing enabled and render
    /// the recorded span tree — per-node wall time, rows, bytes, and the
    /// provider that executed each operator — plus the run's metrics.
    /// The trace id comes from `seed` (overridable via `BDA_TRACE_SEED`).
    /// The rendered report includes modeled-vs-measured per-operator
    /// costs (the `== calibration ==` section): `run_traced` has just
    /// folded this query into the global [`bda_obs::profile::CostBook`],
    /// so drift between the model and this run is visible immediately.
    pub fn explain_analyze(&self, plan: &Plan, seed: u64) -> Result<String, CoreError> {
        let tracer = bda_obs::Tracer::new(bda_obs::trace_seed_from_env(seed));
        let (_, metrics) = self.run_traced(plan, &tracer)?;
        Ok(explain::render_analyze_with_costs(
            &tracer.finish(),
            &metrics,
            Some(bda_obs::profile::global_costs()),
        ))
    }

    /// Explain how a plan would execute: the optimized plan, the fragment
    /// placement, and per-fragment details — without running anything.
    /// With `options.workers > 1`, the printed fragments carry the
    /// `exchange`/`merge` markers the parallel executor would run. With
    /// statistics enabled (the default), fragments disproved by table
    /// statistics show up as empty `values` leaves and hash-exchange
    /// partition counts are capped at the key's distinct-value estimate.
    pub fn explain(&self, plan: &Plan) -> Result<String, CoreError> {
        let (optimized, pruned) =
            optimize::optimize_with_stats(plan, self.options.optimizer, &|name| {
                self.registry.table_stats(name)
            });
        let costs = self
            .options
            .calibrate
            .then(|| bda_obs::profile::global_costs().clone());
        let placement = Planner::new(&self.registry)
            .with_workers(self.options.workers)
            .with_costs(costs)
            .with_stats(self.options.optimizer.use_stats)
            .place(&optimized)?;
        let mut out = String::new();
        if pruned > 0 {
            out.push_str(&format!(
                "== pruning ==\n{pruned} fragment(s) eliminated by table statistics\n"
            ));
        }
        out.push_str("== optimized plan ==\n");
        out.push_str(&optimized.to_string());
        out.push_str("\n== placement ==\n");
        for f in &placement.fragments {
            out.push_str(&format!(
                "fragment #{} @ {} -> {} ({} nodes, schema {})\n",
                f.id,
                f.site,
                f.dest_site,
                f.plan.node_count(),
                f.schema
            ));
            for line in f.plan.to_string().lines() {
                out.push_str(&format!("    {line}\n"));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{col, lit, Provider};
    use bda_linalg::LinAlgEngine;
    use bda_relational::RelationalEngine;
    use bda_storage::{Column, DataSet};

    #[test]
    fn explain_shows_placement() {
        let rel = RelationalEngine::new("rel");
        rel.store(
            "a_rows",
            bda_storage::dataset::matrix_dataset(2, 2, vec![1., 2., 3., 4.])
                .unwrap()
                .normalized_rows()
                .unwrap(),
        )
        .unwrap();
        let la = LinAlgEngine::new("la");
        la.store(
            "b",
            bda_storage::dataset::matrix_dataset(2, 2, vec![1., 0., 0., 1.]).unwrap(),
        )
        .unwrap();
        let mut fed = Federation::new();
        fed.register(Arc::new(rel));
        fed.register(Arc::new(la));
        let plan =
            Plan::scan("a_rows", fed.registry().schema_of("a_rows").unwrap()).matmul(Plan::scan(
                "b",
                fed.registry()
                    .provider("la")
                    .unwrap()
                    .schema_of("b")
                    .unwrap(),
            ));
        let s = fed.explain(&plan).unwrap();
        assert!(s.contains("optimized plan"), "{s}");
        assert!(s.contains("@ rel -> la"), "{s}");
        assert!(s.contains("@ la -> app"), "{s}");
        assert!(s.contains("matmul"), "{s}");
    }

    #[test]
    fn explain_analyze_names_executing_providers() {
        let rel = RelationalEngine::new("rel");
        rel.store(
            "a_rows",
            bda_storage::dataset::matrix_dataset(2, 2, vec![1., 2., 3., 4.])
                .unwrap()
                .normalized_rows()
                .unwrap(),
        )
        .unwrap();
        let la = LinAlgEngine::new("la");
        la.store(
            "b",
            bda_storage::dataset::matrix_dataset(2, 2, vec![1., 0., 0., 1.]).unwrap(),
        )
        .unwrap();
        let mut fed = Federation::new();
        fed.register(Arc::new(rel));
        fed.register(Arc::new(la));
        let plan =
            Plan::scan("a_rows", fed.registry().schema_of("a_rows").unwrap()).matmul(Plan::scan(
                "b",
                fed.registry()
                    .provider("la")
                    .unwrap()
                    .schema_of("b")
                    .unwrap(),
            ));
        let s = fed.explain_analyze(&plan, 42).unwrap();
        assert!(s.contains("query @ app"), "{s}");
        assert!(s.contains("fragment:0 @ rel"), "{s}");
        assert!(s.contains("op:matmul @ la"), "{s}"); // the operator names its engine
        assert!(s.contains("transfer:"), "{s}");
        assert!(s.contains("rows="), "{s}");
        assert!(s.contains("== metrics =="), "{s}");
    }

    #[test]
    fn explain_shows_partition_markers_under_parallel_options() {
        let rel = RelationalEngine::new("rel");
        rel.store(
            "t",
            DataSet::from_columns(vec![
                ("k", Column::from(vec![1i64, 2])),
                ("v", Column::from(vec![1.0f64, 2.0])),
            ])
            .unwrap(),
        )
        .unwrap();
        let mut fed = Federation::new();
        fed.register(Arc::new(rel));
        let scan = Plan::scan("t", fed.registry().schema_of("t").unwrap());
        let plan = scan.clone().join(scan, vec![("k", "k")]);
        let sequential = fed.explain(&plan).unwrap();
        assert!(!sequential.contains("exchange"), "{sequential}");
        fed.options_mut().workers = 4;
        // Statistics on (the default): `k` has two distinct values, so
        // the hash exchange is capped at two partitions.
        fed.options_mut().optimizer.use_stats = true;
        let parallel = fed.explain(&plan).unwrap();
        assert!(parallel.contains("exchange x2 hash(k)"), "{parallel}");
        assert!(parallel.contains("merge"), "{parallel}");
        // Statistics off: the static worker count stands.
        fed.options_mut().optimizer.use_stats = false;
        let plain = fed.explain(&plan).unwrap();
        assert!(plain.contains("exchange x4 hash(k)"), "{plain}");
    }

    #[test]
    fn explain_reflects_optimization() {
        let rel = RelationalEngine::new("rel");
        rel.store(
            "t",
            DataSet::from_columns(vec![("k", Column::from(vec![1i64]))]).unwrap(),
        )
        .unwrap();
        let mut fed = Federation::new();
        fed.register(Arc::new(rel));
        // A `select true` must have been folded away by the optimizer.
        let plan = Plan::scan("t", fed.registry().schema_of("t").unwrap())
            .select(lit(1i64).lt(lit(2i64)))
            .select(col("k").gt(lit(0i64)));
        let s = fed.explain(&plan).unwrap();
        assert!(!s.contains("(1 < 2)"), "constant select not folded:\n{s}");
    }
}
