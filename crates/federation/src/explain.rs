//! `EXPLAIN ANALYZE`: render a recorded trace as an annotated execution
//! tree — per-node wall time, row counts, payload bytes, and the
//! provider that did the work — plus the run's [`Metrics`] summary.
//!
//! The tree is the span tree the executor and the providers recorded
//! ([`crate::executor::execute_placement_traced`]): `query` at the app
//! tier, one `fragment:{id}` per placed fragment at its site,
//! `transfer:{id}` spans for inter-site movement (with the degradation
//! ladder's attempt events inline), and the providers' `op:{kind}` spans
//! — local or absorbed from the far side of a TCP connection — so every
//! operator line names the engine that executed it.

use crate::metrics::Metrics;
use bda_obs::profile::CostBook;
use bda_obs::{Span, Trace};

/// Modeled-vs-measured disagreement (as a fraction of the modeled
/// value) beyond which a calibration row is flagged with `!`.
const DRIFT_FLAG_FRACTION: f64 = 0.25;

/// Render a finished trace and its metrics as an `EXPLAIN ANALYZE`
/// report. Deterministic given a deterministic trace shape (children
/// sort by start time, then span id). Equivalent to
/// [`render_analyze_with_costs`] with no cost book: no calibration
/// table is rendered.
pub fn render_analyze(trace: &Trace, metrics: &Metrics) -> String {
    render_analyze_with_costs(trace, metrics, None)
}

/// [`render_analyze`], plus a `== calibration ==` table comparing what
/// this trace measured per operator class against what the [`CostBook`]
/// currently models. Rows whose measured ns/row drifts more than 25%
/// from the model are flagged `!` — the signal that the book is stale
/// or the workload shifted.
pub fn render_analyze_with_costs(
    trace: &Trace,
    metrics: &Metrics,
    costs: Option<&CostBook>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== EXPLAIN ANALYZE (trace {:#018x}) ==\n",
        trace.trace_id
    ));
    let mut roots: Vec<&Span> = trace.spans.iter().filter(|s| s.parent.is_none()).collect();
    roots.sort_by_key(|s| (s.start_ns, s.id));
    for root in roots {
        render_span(trace, root, 0, &mut out);
    }
    if trace.dropped > 0 {
        out.push_str(&format!(
            "({} spans dropped at the buffer bound)\n",
            trace.dropped
        ));
    }
    render_convergence(trace, &mut out);
    render_parallelism(trace, &mut out);
    render_pruning(trace, &mut out);
    if let Some(book) = costs {
        render_calibration(trace, book, &mut out);
    }
    out.push_str("== metrics ==\n");
    out.push_str(&metrics.to_string());
    out.push('\n');
    out
}

/// The modeled-vs-measured table: one row per operator class that ran
/// in this trace, with the rows it processed, the ns/row this trace
/// measured, the ns/row the cost book models, and the drift between
/// them. Unmodeled classes render `-`; drift beyond 25% is flagged `!`.
/// Omitted entirely when the trace recorded no operator spans.
fn render_calibration(trace: &Trace, book: &CostBook, out: &mut String) {
    use std::collections::BTreeMap;
    let mut classes: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for s in &trace.spans {
        let Some(class) = s.name.strip_prefix("op:") else {
            continue;
        };
        let entry = classes.entry(class).or_insert((0, 0));
        entry.0 += s.rows.unwrap_or(0);
        entry.1 += s.duration_ns();
    }
    if classes.is_empty() {
        return;
    }
    out.push_str("== calibration ==\n");
    out.push_str("operator     rows       measured_ns/row  modeled_ns/row   drift\n");
    for (class, (rows, wall_ns)) in classes {
        let measured = wall_ns as f64 / rows.max(1) as f64;
        match book.ns_per_row(class) {
            Some(modeled) if modeled > 0.0 => {
                let drift = (measured - modeled) / modeled;
                let flag = if drift.abs() > DRIFT_FLAG_FRACTION {
                    " !"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "{class:<12} {rows:<10} {measured:<16.1} {modeled:<16.1} {:+.1}%{flag}\n",
                    drift * 100.0,
                ));
            }
            _ => {
                out.push_str(&format!(
                    "{class:<12} {rows:<10} {measured:<16.1} {:<16} -\n",
                    "-"
                ));
            }
        }
    }
}

/// The per-iteration convergence table: one row per `iteration:{n}` span
/// (app-driven control iteration), with the wall time, convergence delta
/// and rows-changed the executor stamped on it. Omitted entirely for
/// non-iterative queries.
fn render_convergence(trace: &Trace, out: &mut String) {
    let mut iterations: Vec<(u64, &Span)> = trace
        .spans
        .iter()
        .filter_map(|s| {
            s.name
                .strip_prefix("iteration:")
                .and_then(|n| n.parse().ok())
                .map(|n: u64| (n, s))
        })
        .collect();
    if iterations.is_empty() {
        return;
    }
    iterations.sort_by_key(|(n, s)| (*n, s.id));
    out.push_str("== convergence ==\n");
    out.push_str("iter     wall_ms      delta                rows_changed\n");
    for (n, s) in iterations {
        let field = |prefix: &str| {
            s.events
                .iter()
                .find_map(|e| e.label.strip_prefix(prefix))
                .unwrap_or("-")
                .to_string()
        };
        out.push_str(&format!(
            "{n:<8} {:<12.3} {:<20} {}\n",
            s.duration_ns() as f64 / 1e6,
            field("delta:"),
            field("rows_changed:"),
        ));
    }
}

/// The partition-parallelism table: one row per operator that ran
/// partitioned kernels (its `partition:{i}` children), with the partition
/// count, the summed per-partition work, the operator's wall time, and
/// the resulting overlap factor (`sum / wall` — 1.0× means the partitions
/// ran back-to-back, higher means they overlapped). Omitted entirely when
/// nothing ran partitioned.
fn render_parallelism(trace: &Trace, out: &mut String) {
    let mut groups: Vec<(&Span, usize, u64)> = Vec::new();
    for s in &trace.spans {
        if !s.name.starts_with("partition:") {
            continue;
        }
        let Some(parent) = s.parent.and_then(|id| trace.span(id)) else {
            continue;
        };
        match groups.iter_mut().find(|(p, _, _)| p.id == parent.id) {
            Some((_, count, sum)) => {
                *count += 1;
                *sum += s.duration_ns();
            }
            None => groups.push((parent, 1, s.duration_ns())),
        }
    }
    if groups.is_empty() {
        return;
    }
    groups.sort_by_key(|(p, _, _)| (p.start_ns, p.id));
    out.push_str("== parallelism ==\n");
    out.push_str(
        "operator                  site        parts  sum_ms       wall_ms      overlap\n",
    );
    for (parent, count, sum_ns) in groups {
        let wall_ns = parent.duration_ns().max(1);
        out.push_str(&format!(
            "{:<25} {:<11} {:<6} {:<12.3} {:<12.3} {:.2}x\n",
            parent.name,
            parent.site,
            count,
            sum_ns as f64 / 1e6,
            parent.duration_ns() as f64 / 1e6,
            sum_ns as f64 / wall_ns as f64,
        ));
    }
}

/// The statistics-pruning section: every `pruning:` event any span
/// recorded — zone-map chunk skips, index lowerings, and whole fragments
/// disproved by table statistics — one line per event, stamped with the
/// site that did the skipping. Omitted entirely when nothing was pruned
/// (statistics off, or no skippable work).
fn render_pruning(trace: &Trace, out: &mut String) {
    let mut lines: Vec<(u64, u64, u64, String)> = Vec::new();
    for s in &trace.spans {
        for e in &s.events {
            if let Some(rest) = e.label.strip_prefix("pruning: ") {
                lines.push((s.start_ns, s.id, e.at_ns, format!("{rest} @ {}", s.site)));
            }
        }
    }
    if lines.is_empty() {
        return;
    }
    lines.sort();
    out.push_str("== pruning ==\n");
    for (_, _, _, line) in lines {
        out.push_str(&line);
        out.push('\n');
    }
}

fn render_span(trace: &Trace, span: &Span, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    out.push_str(&format!(
        "{pad}{} @ {}  [{:.3} ms",
        span.name,
        span.site,
        span.duration_ns() as f64 / 1e6
    ));
    if let Some(rows) = span.rows {
        out.push_str(&format!(", rows={rows}"));
    }
    if let Some(bytes) = span.bytes {
        out.push_str(&format!(", bytes={bytes}"));
    }
    out.push_str("]\n");
    for e in &span.events {
        out.push_str(&format!(
            "{pad}  - {} (+{:.3} ms)\n",
            e.label,
            e.at_ns.saturating_sub(span.start_ns) as f64 / 1e6
        ));
    }
    for child in trace.children_of(span.id) {
        render_span(trace, child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_obs::SpanEvent;

    /// `find` with context: a renderer format change fails with the full
    /// report, not an opaque `unwrap` on `None`.
    fn position_of(report: &str, needle: &str) -> usize {
        match report.find(needle) {
            Some(at) => at,
            None => panic!("rendered report is missing `{needle}`:\n{report}"),
        }
    }

    fn span(id: u64, parent: Option<u64>, name: &str, site: &str, start: u64) -> Span {
        Span {
            id,
            parent,
            name: name.into(),
            site: site.into(),
            start_ns: start,
            end_ns: start + 1_500_000,
            rows: Some(4),
            bytes: None,
            events: Vec::new(),
        }
    }

    #[test]
    fn renders_tree_with_sites_and_events() {
        let mut transfer = span(3, Some(2), "transfer:0", "rel", 40);
        transfer.bytes = Some(256);
        transfer.events.push(SpanEvent {
            at_ns: 140,
            label: "attempt:push".into(),
        });
        transfer.events.push(SpanEvent {
            at_ns: 340,
            label: "mode:push".into(),
        });
        let trace = Trace {
            trace_id: 0xBDA,
            spans: vec![
                span(1, None, "query", "app", 0),
                span(2, Some(1), "fragment:0", "rel", 10),
                span(4, Some(2), "op:select", "rel", 20),
                transfer,
            ],
            dropped: 0,
        };
        let s = render_analyze(&trace, &Metrics::default());
        assert!(
            s.contains("EXPLAIN ANALYZE (trace 0x0000000000000bda)"),
            "{s}"
        );
        assert!(s.contains("query @ app"), "{s}");
        assert!(s.contains("  fragment:0 @ rel"), "{s}");
        assert!(s.contains("    op:select @ rel"), "{s}");
        assert!(s.contains("rows=4"), "{s}");
        assert!(s.contains("bytes=256"), "{s}");
        assert!(s.contains("- attempt:push"), "{s}");
        assert!(s.contains("- mode:push"), "{s}");
        // Children indent under parents; op comes before transfer (start order).
        let op_at = position_of(&s, "op:select");
        let tr_at = position_of(&s, "transfer:0");
        assert!(op_at < tr_at, "{s}");
        assert!(s.contains("== metrics =="), "{s}");
        assert!(
            !s.contains("== convergence =="),
            "non-iterative query must not render a convergence table:\n{s}"
        );
    }

    #[test]
    fn iterative_trace_renders_a_convergence_table() {
        let mut it1 = span(2, Some(1), "iteration:1", "app", 10);
        it1.events.push(SpanEvent {
            at_ns: 100,
            label: "delta:0.250000000".into(),
        });
        it1.events.push(SpanEvent {
            at_ns: 110,
            label: "rows_changed:3".into(),
        });
        let mut it2 = span(3, Some(1), "iteration:2", "app", 2_000_000);
        it2.events.push(SpanEvent {
            at_ns: 2_000_100,
            label: "delta:0.001000000".into(),
        });
        it2.events.push(SpanEvent {
            at_ns: 2_000_110,
            label: "rows_changed:1".into(),
        });
        let trace = Trace {
            trace_id: 0xBDA,
            spans: vec![span(1, None, "query", "app", 0), it1, it2],
            dropped: 0,
        };
        let s = render_analyze(&trace, &Metrics::default());
        let table_at = position_of(&s, "== convergence ==");
        let metrics_at = position_of(&s, "== metrics ==");
        assert!(table_at < metrics_at, "table precedes metrics:\n{s}");
        let table = &s[table_at..metrics_at];
        assert!(table.contains("0.250000000"), "{table}");
        assert!(table.contains("0.001000000"), "{table}");
        assert!(table.contains("rows_changed"), "{table}");
        let it1_at = position_of(table, "0.250000000");
        let it2_at = position_of(table, "0.001000000");
        assert!(it1_at < it2_at, "iterations in order:\n{table}");
    }

    #[test]
    fn partitioned_trace_renders_a_parallelism_table() {
        // op:join ran 3 partitions whose summed work exceeds the
        // operator's wall time — that overlap is the speedup story.
        let mut join = span(2, Some(1), "op:join", "rel", 0);
        join.end_ns = 2_000_000; // 2 ms wall
        let mut parts: Vec<Span> = (0..3)
            .map(|i| {
                let mut p = span(10 + i, Some(2), &format!("partition:{i}"), "rel", 0);
                p.end_ns = 1_500_000; // 1.5 ms each, 4.5 ms summed
                p
            })
            .collect();
        let mut spans = vec![span(1, None, "query", "app", 0), join];
        spans.append(&mut parts);
        let trace = Trace {
            trace_id: 0xBDA,
            spans,
            dropped: 0,
        };
        let s = render_analyze(&trace, &Metrics::default());
        let table_at = position_of(&s, "== parallelism ==");
        let metrics_at = position_of(&s, "== metrics ==");
        assert!(table_at < metrics_at, "table precedes metrics:\n{s}");
        let table = &s[table_at..metrics_at];
        assert!(table.contains("op:join"), "{table}");
        assert!(table.contains("rel"), "{table}");
        assert!(table.contains("2.25x"), "4.5ms over 2ms wall:\n{table}");
        // parts column
        assert!(table.contains(" 3 "), "{table}");
    }

    #[test]
    fn unpartitioned_trace_has_no_parallelism_table() {
        let trace = Trace {
            trace_id: 1,
            spans: vec![span(1, None, "query", "app", 0)],
            dropped: 0,
        };
        let s = render_analyze(&trace, &Metrics::default());
        assert!(!s.contains("== parallelism =="), "{s}");
    }

    #[test]
    fn calibration_table_compares_measured_against_the_model() {
        use bda_obs::profile::{OpProfile, QueryProfile};
        // The book models select at 100 ns/row; this trace measures
        // 1.5 ms over 4 rows (375,000 ns/row) — massive drift, flagged.
        // matmul ran but was never calibrated — rendered unmodeled.
        let book = CostBook::new(7);
        book.observe(&QueryProfile {
            trace_id: 1,
            tenant: String::new(),
            wall_ns: 400,
            slow: false,
            ops: vec![OpProfile {
                class: "select".into(),
                count: 1,
                rows: 4,
                bytes: 0,
                wall_ns: 400,
            }],
            sites: Vec::new(),
        });
        let trace = Trace {
            trace_id: 0xBDA,
            spans: vec![
                span(1, None, "query", "app", 0),
                span(2, Some(1), "op:select", "rel", 10),
                span(3, Some(1), "op:matmul", "la", 20),
            ],
            dropped: 0,
        };
        let s = render_analyze_with_costs(&trace, &Metrics::default(), Some(&book));
        let table_at = position_of(&s, "== calibration ==");
        let metrics_at = position_of(&s, "== metrics ==");
        assert!(table_at < metrics_at, "table precedes metrics:\n{s}");
        let table = &s[table_at..metrics_at];
        let select_line = table
            .lines()
            .find(|l| l.starts_with("select"))
            .unwrap_or_else(|| panic!("no select row:\n{table}"));
        assert!(select_line.contains("375000"), "{select_line}");
        assert!(select_line.contains("100"), "{select_line}");
        assert!(select_line.ends_with('!'), "drift flagged: {select_line}");
        let matmul_line = table
            .lines()
            .find(|l| l.starts_with("matmul"))
            .unwrap_or_else(|| panic!("no matmul row:\n{table}"));
        assert!(matmul_line.ends_with('-'), "unmodeled: {matmul_line}");

        // Without a book the report is the plain render — no table.
        let plain = render_analyze(&trace, &Metrics::default());
        assert!(!plain.contains("== calibration =="), "{plain}");
    }

    #[test]
    fn in_model_measurements_are_not_flagged() {
        use bda_obs::profile::{OpProfile, QueryProfile};
        // Modeled at 375,000 ns/row, measured at 375,000 — zero drift.
        let book = CostBook::new(7);
        book.observe(&QueryProfile {
            trace_id: 1,
            tenant: String::new(),
            wall_ns: 1_500_000,
            slow: false,
            ops: vec![OpProfile {
                class: "select".into(),
                count: 1,
                rows: 4,
                bytes: 0,
                wall_ns: 1_500_000,
            }],
            sites: Vec::new(),
        });
        let trace = Trace {
            trace_id: 0xBDA,
            spans: vec![
                span(1, None, "query", "app", 0),
                span(2, Some(1), "op:select", "rel", 10),
            ],
            dropped: 0,
        };
        let s = render_analyze_with_costs(&trace, &Metrics::default(), Some(&book));
        let table = &s[position_of(&s, "== calibration ==")..position_of(&s, "== metrics ==")];
        let select_line = table
            .lines()
            .find(|l| l.starts_with("select"))
            .unwrap_or_else(|| panic!("no select row:\n{table}"));
        assert!(select_line.contains("+0.0%"), "{select_line}");
        assert!(!select_line.ends_with('!'), "{select_line}");
    }

    #[test]
    fn pruning_section_is_pinned() {
        // Golden: the `== pruning ==` section renders one line per
        // `pruning:` event in (span start, span id, event time) order,
        // each stamped with the pruning site.
        let mut opt = span(3, Some(1), "optimize", "app", 5);
        opt.events.push(SpanEvent {
            at_ns: 6,
            label: "pruning: 1 fragment(s) eliminated by table stats".into(),
        });
        let mut op = span(2, Some(1), "op:select", "rel", 10);
        op.events.push(SpanEvent {
            at_ns: 20,
            label: "pruning: zone-map t chunks 3/4".into(),
        });
        op.events.push(SpanEvent {
            at_ns: 30,
            label: "pruning: index t.k (hash) candidates 2/100".into(),
        });
        let trace = Trace {
            trace_id: 0xBDA,
            spans: vec![span(1, None, "query", "app", 0), opt, op],
            dropped: 0,
        };
        let s = render_analyze(&trace, &Metrics::default());
        let section = &s[position_of(&s, "== pruning ==")..position_of(&s, "== metrics ==")];
        assert_eq!(
            section,
            "== pruning ==\n\
             1 fragment(s) eliminated by table stats @ app\n\
             zone-map t chunks 3/4 @ rel\n\
             index t.k (hash) candidates 2/100 @ rel\n"
        );

        // No pruning events: no section.
        let quiet = Trace {
            trace_id: 1,
            spans: vec![span(1, None, "query", "app", 0)],
            dropped: 0,
        };
        let plain = render_analyze(&quiet, &Metrics::default());
        assert!(!plain.contains("== pruning =="), "{plain}");
    }

    #[test]
    fn calibration_table_is_pinned() {
        use bda_obs::profile::{OpProfile, QueryProfile};
        // Golden: the exact table layout (column widths, drift format,
        // the `!` flag) for one modeled class.
        let book = CostBook::new(7);
        book.observe(&QueryProfile {
            trace_id: 1,
            tenant: String::new(),
            wall_ns: 400,
            slow: false,
            ops: vec![OpProfile {
                class: "select".into(),
                count: 1,
                rows: 4,
                bytes: 0,
                wall_ns: 400,
            }],
            sites: Vec::new(),
        });
        let trace = Trace {
            trace_id: 0xBDA,
            spans: vec![
                span(1, None, "query", "app", 0),
                span(2, Some(1), "op:select", "rel", 10),
            ],
            dropped: 0,
        };
        let s = render_analyze_with_costs(&trace, &Metrics::default(), Some(&book));
        let table = &s[position_of(&s, "== calibration ==")..position_of(&s, "== metrics ==")];
        assert_eq!(
            table,
            "== calibration ==\n\
             operator     rows       measured_ns/row  modeled_ns/row   drift\n\
             select       4          375000.0         100.0            +374900.0% !\n"
        );
    }

    #[test]
    fn reports_dropped_spans() {
        let trace = Trace {
            trace_id: 1,
            spans: vec![span(1, None, "query", "app", 0)],
            dropped: 3,
        };
        let s = render_analyze(&trace, &Metrics::default());
        assert!(s.contains("3 spans dropped"), "{s}");
    }
}
