//! `EXPLAIN ANALYZE`: render a recorded trace as an annotated execution
//! tree — per-node wall time, row counts, payload bytes, and the
//! provider that did the work — plus the run's [`Metrics`] summary.
//!
//! The tree is the span tree the executor and the providers recorded
//! ([`crate::executor::execute_placement_traced`]): `query` at the app
//! tier, one `fragment:{id}` per placed fragment at its site,
//! `transfer:{id}` spans for inter-site movement (with the degradation
//! ladder's attempt events inline), and the providers' `op:{kind}` spans
//! — local or absorbed from the far side of a TCP connection — so every
//! operator line names the engine that executed it.

use crate::metrics::Metrics;
use bda_obs::{Span, Trace};

/// Render a finished trace and its metrics as an `EXPLAIN ANALYZE`
/// report. Deterministic given a deterministic trace shape (children
/// sort by start time, then span id).
pub fn render_analyze(trace: &Trace, metrics: &Metrics) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== EXPLAIN ANALYZE (trace {:#018x}) ==\n",
        trace.trace_id
    ));
    let mut roots: Vec<&Span> = trace.spans.iter().filter(|s| s.parent.is_none()).collect();
    roots.sort_by_key(|s| (s.start_ns, s.id));
    for root in roots {
        render_span(trace, root, 0, &mut out);
    }
    if trace.dropped > 0 {
        out.push_str(&format!(
            "({} spans dropped at the buffer bound)\n",
            trace.dropped
        ));
    }
    out.push_str("== metrics ==\n");
    out.push_str(&metrics.to_string());
    out.push('\n');
    out
}

fn render_span(trace: &Trace, span: &Span, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    out.push_str(&format!(
        "{pad}{} @ {}  [{:.3} ms",
        span.name,
        span.site,
        span.duration_ns() as f64 / 1e6
    ));
    if let Some(rows) = span.rows {
        out.push_str(&format!(", rows={rows}"));
    }
    if let Some(bytes) = span.bytes {
        out.push_str(&format!(", bytes={bytes}"));
    }
    out.push_str("]\n");
    for e in &span.events {
        out.push_str(&format!(
            "{pad}  - {} (+{:.3} ms)\n",
            e.label,
            e.at_ns.saturating_sub(span.start_ns) as f64 / 1e6
        ));
    }
    for child in trace.children_of(span.id) {
        render_span(trace, child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_obs::SpanEvent;

    fn span(id: u64, parent: Option<u64>, name: &str, site: &str, start: u64) -> Span {
        Span {
            id,
            parent,
            name: name.into(),
            site: site.into(),
            start_ns: start,
            end_ns: start + 1_500_000,
            rows: Some(4),
            bytes: None,
            events: Vec::new(),
        }
    }

    #[test]
    fn renders_tree_with_sites_and_events() {
        let mut transfer = span(3, Some(2), "transfer:0", "rel", 40);
        transfer.bytes = Some(256);
        transfer.events.push(SpanEvent {
            at_ns: 140,
            label: "attempt:push".into(),
        });
        transfer.events.push(SpanEvent {
            at_ns: 340,
            label: "mode:push".into(),
        });
        let trace = Trace {
            trace_id: 0xBDA,
            spans: vec![
                span(1, None, "query", "app", 0),
                span(2, Some(1), "fragment:0", "rel", 10),
                span(4, Some(2), "op:select", "rel", 20),
                transfer,
            ],
            dropped: 0,
        };
        let s = render_analyze(&trace, &Metrics::default());
        assert!(
            s.contains("EXPLAIN ANALYZE (trace 0x0000000000000bda)"),
            "{s}"
        );
        assert!(s.contains("query @ app"), "{s}");
        assert!(s.contains("  fragment:0 @ rel"), "{s}");
        assert!(s.contains("    op:select @ rel"), "{s}");
        assert!(s.contains("rows=4"), "{s}");
        assert!(s.contains("bytes=256"), "{s}");
        assert!(s.contains("- attempt:push"), "{s}");
        assert!(s.contains("- mode:push"), "{s}");
        // Children indent under parents; op comes before transfer (start order).
        let op_at = s.find("op:select").unwrap();
        let tr_at = s.find("transfer:0").unwrap();
        assert!(op_at < tr_at, "{s}");
        assert!(s.contains("== metrics =="), "{s}");
    }

    #[test]
    fn reports_dropped_spans() {
        let trace = Trace {
            trace_id: 1,
            spans: vec![span(1, None, "query", "app", 0)],
            dropped: 3,
        };
        let s = render_analyze(&trace, &Metrics::default());
        assert!(s.contains("3 spans dropped"), "{s}");
    }
}
