//! The logical optimizer.
//!
//! Algebra-level rewrites that run before site assignment:
//!
//! * **constant folding** of literal-only scalar subexpressions,
//! * **select merging** (adjacent filters AND together),
//! * **predicate pushdown** through project / rename / union / distinct /
//!   sort / dice / retagging and into join sides,
//! * **identity-project pruning**,
//! * **intent recognition** ([`bda_core::recognize`]) so lowered shapes
//!   regain their intent operators before providers are chosen
//!   (desideratum 3).
//!
//! Every pass is semantics-preserving; the crate's property tests compare
//! optimized and unoptimized plans on the reference evaluator.

use std::cell::Cell;
use std::collections::HashMap;

use bda_core::eval::eval_row;
use bda_core::infer::infer_schema;
use bda_core::pruning::{analyze, may_match_all};
use bda_core::{lit, Expr, JoinType, Plan};
use bda_storage::{Row, Schema, TableStats};

/// Which passes to run (all on by default; the ablation bench toggles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// Fold literal-only expressions.
    pub fold_constants: bool,
    /// Merge and push down filters.
    pub pushdown: bool,
    /// Remove identity projections.
    pub prune_projects: bool,
    /// Run intent recognition.
    pub recognize_intents: bool,
    /// Consult table statistics to eliminate fragments whose zone maps
    /// disprove a selection. Defaults to [`bda_core::stats_from_env`].
    pub use_stats: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            fold_constants: true,
            pushdown: true,
            prune_projects: true,
            recognize_intents: true,
            use_stats: bda_core::stats_from_env(),
        }
    }
}

impl OptimizerConfig {
    /// Everything off — the ablation baseline.
    pub fn disabled() -> OptimizerConfig {
        OptimizerConfig {
            fold_constants: false,
            pushdown: false,
            prune_projects: false,
            recognize_intents: false,
            use_stats: false,
        }
    }
}

/// Optimize a plan under the given configuration, without table
/// statistics (equivalent to [`optimize_with_stats`] with a source that
/// knows nothing).
pub fn optimize(plan: &Plan, config: OptimizerConfig) -> Plan {
    optimize_with_stats(plan, config, &|_| None).0
}

/// Optimize a plan, consulting `stats` (dataset name → table statistics)
/// for fragment elimination when `config.use_stats` is on: a selection
/// directly over a scan whose merged zone maps disprove one conjunct is
/// replaced by an empty `Values` — the whole fragment (and any transfer
/// it implied) disappears from the plan. Returns the optimized plan and
/// how many fragments were eliminated.
///
/// The same error-faithfulness gate as scan-time pruning applies:
/// elimination only happens when `bda_core::pruning::analyze` proves the
/// whole predicate total over the scan schema.
pub fn optimize_with_stats(
    plan: &Plan,
    config: OptimizerConfig,
    stats: &dyn Fn(&str) -> Option<TableStats>,
) -> (Plan, usize) {
    let mut cur = plan.clone();
    if config.recognize_intents {
        cur = bda_core::recognize::recognize_all(&cur);
    }
    let pruned = Cell::new(0usize);
    // Iterate the rewrite passes to a (bounded) fixpoint.
    for _ in 0..8 {
        let mut next = cur.clone();
        if config.fold_constants {
            next = fold_constants(&next);
        }
        if config.pushdown {
            next = next.transform_up(&pushdown_step);
        }
        if config.prune_projects {
            next = next.transform_up(&prune_project_step);
        }
        if config.use_stats {
            next = next.transform_up(&|node| prune_fragment_step(node, stats, &pruned));
        }
        if next == cur {
            break;
        }
        cur = next;
    }
    (cur, pruned.get())
}

/// Replace `select(scan(t), p)` by an empty `Values` when `t`'s table
/// statistics disprove `p`.
fn prune_fragment_step(
    node: Plan,
    stats: &dyn Fn(&str) -> Option<TableStats>,
    pruned: &Cell<usize>,
) -> Plan {
    let Plan::Select { input, predicate } = &node else {
        return node;
    };
    let Plan::Scan { dataset, schema } = input.as_ref() else {
        return node;
    };
    let Some(tests) = analyze(predicate, schema) else {
        return node;
    };
    let table = stats(dataset);
    let zone_of = |name: &str| table.as_ref().and_then(|t| t.column(name));
    // Guard against stale statistics claiming fewer rows than exist:
    // only a disproof over the *whole* table eliminates the fragment.
    if may_match_all(&tests, zone_of) {
        return node;
    }
    pruned.set(pruned.get() + 1);
    bda_obs::prune::record_fragment_pruned();
    Plan::Values {
        schema: schema.clone(),
        rows: Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

/// Fold literal-only subexpressions in every expression of the plan.
pub fn fold_constants(plan: &Plan) -> Plan {
    plan.transform_up(&|node| match node {
        Plan::Select { input, predicate } => {
            let p = fold_expr(&predicate);
            // `select true` is the identity.
            if p == lit(true) {
                *input
            } else {
                Plan::Select {
                    input,
                    predicate: p,
                }
            }
        }
        Plan::Project { input, exprs } => Plan::Project {
            input,
            exprs: exprs
                .into_iter()
                .map(|(n, e)| {
                    let folded = fold_expr(&e);
                    (n, folded)
                })
                .collect(),
        },
        other => other,
    })
}

/// Fold one expression bottom-up: any subtree without column references
/// that evaluates without error becomes a literal.
pub fn fold_expr(e: &Expr) -> Expr {
    let folded = map_expr_children(e, &|c| fold_expr(c));
    if matches!(folded, Expr::Literal(_) | Expr::Column(_)) {
        return folded;
    }
    if folded.referenced_columns().is_empty() {
        if let Ok(v) = eval_row(&folded, &Schema::empty(), &Row::new()) {
            return Expr::Literal(v);
        }
    }
    folded
}

fn map_expr_children(e: &Expr, f: &impl Fn(&Expr) -> Expr) -> Expr {
    match e {
        Expr::Column(_) | Expr::Literal(_) => e.clone(),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(f(left)),
            right: Box::new(f(right)),
        },
        Expr::Unary { op, input } => Expr::Unary {
            op: *op,
            input: Box::new(f(input)),
        },
        Expr::Cast { input, to } => Expr::Cast {
            input: Box::new(f(input)),
            to: *to,
        },
        Expr::Coalesce(args) => Expr::Coalesce(args.iter().map(f).collect()),
        Expr::Case {
            branches,
            otherwise,
        } => Expr::Case {
            branches: branches.iter().map(|(w, t)| (f(w), f(t))).collect(),
            otherwise: otherwise.as_ref().map(|e| Box::new(f(e))),
        },
    }
}

// ---------------------------------------------------------------------------
// Predicate pushdown
// ---------------------------------------------------------------------------

/// Substitute column references by expressions (pushing a predicate
/// through a projection).
fn subst(e: &Expr, map: &HashMap<String, Expr>) -> Expr {
    match e {
        Expr::Column(name) => map
            .get(name)
            .cloned()
            .unwrap_or_else(|| Expr::Column(name.clone())),
        other => map_expr_children(other, &|c| subst(c, map)),
    }
}

/// One bottom-up pushdown step applied at a `Select` node.
fn pushdown_step(node: Plan) -> Plan {
    let Plan::Select { input, predicate } = node else {
        return node;
    };
    match *input {
        // select(select(x, p), q) => select(x, p AND q)
        Plan::Select {
            input: inner,
            predicate: p,
        } => Plan::Select {
            input: inner,
            predicate: p.and(predicate),
        },
        // select(project(x, es), p) => project(select(x, p[es]), es)
        Plan::Project {
            input: inner,
            exprs,
        } => {
            let map: HashMap<String, Expr> =
                exprs.iter().map(|(n, e)| (n.clone(), e.clone())).collect();
            let pushed = subst(&predicate, &map);
            Plan::Project {
                input: Plan::Select {
                    input: inner,
                    predicate: pushed,
                }
                .boxed(),
                exprs,
            }
        }
        // select(rename(x, m), p) => rename(select(x, p[m⁻¹]), m)
        Plan::Rename {
            input: inner,
            mapping,
        } => {
            let map: HashMap<String, Expr> = mapping
                .iter()
                .map(|(old, new)| (new.clone(), Expr::Column(old.clone())))
                .collect();
            let pushed = subst(&predicate, &map);
            Plan::Rename {
                input: Plan::Select {
                    input: inner,
                    predicate: pushed,
                }
                .boxed(),
                mapping,
            }
        }
        // select(union(a, b), p) => union(select(a, p), select(b, p))
        Plan::Union { left, right } => Plan::Union {
            left: Plan::Select {
                input: left,
                predicate: predicate.clone(),
            }
            .boxed(),
            right: Plan::Select {
                input: right,
                predicate,
            }
            .boxed(),
        },
        // Filters commute with distinct, sort, dice and retagging.
        Plan::Distinct { input: inner } => Plan::Distinct {
            input: Plan::Select {
                input: inner,
                predicate,
            }
            .boxed(),
        },
        Plan::Sort { input: inner, keys } => Plan::Sort {
            input: Plan::Select {
                input: inner,
                predicate,
            }
            .boxed(),
            keys,
        },
        Plan::Dice {
            input: inner,
            ranges,
        } => Plan::Dice {
            input: Plan::Select {
                input: inner,
                predicate,
            }
            .boxed(),
            ranges,
        },
        Plan::UntagDims { input: inner } => Plan::UntagDims {
            input: Plan::Select {
                input: inner,
                predicate,
            }
            .boxed(),
        },
        Plan::TagDims { input: inner, dims } => Plan::TagDims {
            input: Plan::Select {
                input: inner,
                predicate,
            }
            .boxed(),
            dims,
        },
        // select(join(l, r), p): route conjuncts that mention only one
        // side's columns to that side.
        Plan::Join {
            left,
            right,
            on,
            join_type,
            suffix,
        } => push_into_join(predicate, *left, *right, on, join_type, suffix),
        other => Plan::Select {
            input: other.boxed(),
            predicate,
        },
    }
}

fn push_into_join(
    predicate: Expr,
    left: Plan,
    right: Plan,
    on: Vec<(String, String)>,
    join_type: JoinType,
    suffix: String,
) -> Plan {
    let rebuild = |l: Plan, r: Plan| Plan::Join {
        left: l.boxed(),
        right: r.boxed(),
        on: on.clone(),
        join_type,
        suffix: suffix.clone(),
    };
    let (Ok(ls), Ok(rs)) = (infer_schema(&left), infer_schema(&right)) else {
        return Plan::Select {
            input: rebuild(left, right).boxed(),
            predicate,
        };
    };
    // Output-name provenance. Left names are never suffixed; right names
    // are suffixed when they collide with a left name.
    let left_names: Vec<String> = ls.names().iter().map(|s| s.to_string()).collect();
    let mut right_out_to_orig: HashMap<String, String> = HashMap::new();
    for f in rs.fields() {
        let out = if left_names.contains(&f.name) {
            format!("{}{}", f.name, suffix)
        } else {
            f.name.clone()
        };
        right_out_to_orig.insert(out, f.name.clone());
    }

    let mut to_left: Vec<Expr> = Vec::new();
    let mut to_right: Vec<Expr> = Vec::new();
    let mut keep: Vec<Expr> = Vec::new();
    for conjunct in predicate.conjuncts() {
        let refs = conjunct.referenced_columns();
        let all_left = refs.iter().all(|c| left_names.contains(c));
        let all_right = refs
            .iter()
            .all(|c| right_out_to_orig.contains_key(c) && !left_names.contains(c));
        // Inner and Semi/Anti joins allow pushing to the left; pushing
        // into the right side is only safe for Inner (Left join would
        // change padding, Semi/Anti would change match sets — actually
        // Semi/Anti right-side predicates are not expressible here since
        // right columns are not in the output).
        if all_left {
            to_left.push(conjunct.clone());
        } else if all_right && join_type == JoinType::Inner {
            let renamed = conjunct.rename_columns(&|n| {
                right_out_to_orig
                    .get(n)
                    .cloned()
                    .unwrap_or_else(|| n.to_string())
            });
            to_right.push(renamed);
        } else {
            keep.push(conjunct.clone());
        }
    }
    // Left-join left-side pushdown is safe only for Inner/Semi/Anti: a
    // filter on left columns commutes with Left join too (padding rows
    // come from surviving left rows). It is safe for all types here
    // because the predicate references only left columns.
    let new_left = if to_left.is_empty() {
        left
    } else {
        Plan::Select {
            input: left.boxed(),
            predicate: Expr::and_all(to_left),
        }
    };
    let new_right = if to_right.is_empty() {
        right
    } else {
        Plan::Select {
            input: right.boxed(),
            predicate: Expr::and_all(to_right),
        }
    };
    let joined = rebuild(new_left, new_right);
    if keep.is_empty() {
        joined
    } else {
        Plan::Select {
            input: joined.boxed(),
            predicate: Expr::and_all(keep),
        }
    }
}

// ---------------------------------------------------------------------------
// Project pruning
// ---------------------------------------------------------------------------

/// Remove projections that are exact identities of their input schema.
fn prune_project_step(node: Plan) -> Plan {
    let Plan::Project { input, exprs } = &node else {
        return node;
    };
    let Ok(in_schema) = infer_schema(input) else {
        return node;
    };
    if exprs.len() != in_schema.len() {
        return node;
    }
    let identity = exprs
        .iter()
        .zip(in_schema.fields())
        .all(|((n, e), f)| n == &f.name && matches!(e, Expr::Column(c) if c == &f.name));
    if identity {
        (**input).clone()
    } else {
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::reference::evaluate;
    use bda_core::{col, AggExpr, AggFunc, OpKind};
    use bda_storage::{Column, DataSet};
    use std::collections::HashMap as StdHashMap;

    fn t_schema() -> Schema {
        DataSet::from_columns(vec![
            ("k", Column::from(vec![1i64])),
            ("v", Column::from(vec![1.0f64])),
        ])
        .unwrap()
        .schema()
        .clone()
    }

    fn src() -> StdHashMap<String, DataSet> {
        let mut m = StdHashMap::new();
        m.insert(
            "t".to_string(),
            DataSet::from_columns(vec![
                ("k", Column::from(vec![1i64, 2, 3, 4])),
                ("v", Column::from(vec![1.0f64, -1.0, 2.0, -2.0])),
            ])
            .unwrap(),
        );
        m
    }

    fn assert_equivalent(plan: &Plan) {
        let optimized = optimize(plan, OptimizerConfig::default());
        let a = evaluate(plan, &src()).unwrap();
        let b = evaluate(&optimized, &src()).unwrap();
        assert!(
            a.same_bag(&b).unwrap(),
            "optimizer changed semantics.\noriginal:\n{plan}\noptimized:\n{optimized}"
        );
    }

    #[test]
    fn constant_folding() {
        let e = lit(1i64).add(lit(2i64)).mul(col("k"));
        let f = fold_expr(&e);
        assert_eq!(f, Expr::Literal(bda_storage::Value::Int(3)).mul(col("k")));
        // Division by zero folds to null (total semantics).
        let e = lit(1i64).div(lit(0i64));
        assert_eq!(fold_expr(&e), Expr::Literal(bda_storage::Value::Null));
    }

    #[test]
    fn select_true_removed() {
        let p = Plan::scan("t", t_schema()).select(lit(1i64).lt(lit(2i64)));
        let o = optimize(&p, OptimizerConfig::default());
        assert_eq!(o, Plan::scan("t", t_schema()));
    }

    #[test]
    fn pushdown_through_project() {
        let p = Plan::scan("t", t_schema())
            .project(vec![("kk", col("k").mul(lit(2i64)))])
            .select(col("kk").gt(lit(4i64)));
        let o = optimize(&p, OptimizerConfig::default());
        // Select must now sit below the project.
        match &o {
            Plan::Project { input, .. } => {
                assert!(matches!(input.as_ref(), Plan::Select { .. }), "{o}")
            }
            other => panic!("expected project at root, got {other}"),
        }
        assert_equivalent(&p);
    }

    #[test]
    fn pushdown_splits_join_conjuncts() {
        let t = Plan::scan("t", t_schema());
        let p = t
            .clone()
            .join(t, vec![("k", "k")])
            .select(col("k").gt(lit(1i64)).and(col("v_r").lt(lit(0.0))));
        let o = optimize(&p, OptimizerConfig::default());
        // Both sides should have gained a filter; no residual select.
        match &o {
            Plan::Join { left, right, .. } => {
                assert!(matches!(left.as_ref(), Plan::Select { .. }), "{o}");
                assert!(matches!(right.as_ref(), Plan::Select { .. }), "{o}");
            }
            other => panic!("expected join at root, got {other}"),
        }
        assert_equivalent(&p);
    }

    #[test]
    fn left_join_right_side_not_pushed() {
        let t = Plan::scan("t", t_schema());
        let p = t
            .clone()
            .join_as(t, vec![("k", "k")], JoinType::Left)
            .select(col("v_r").is_null());
        let o = optimize(&p, OptimizerConfig::default());
        // The predicate must stay above the left join.
        assert!(matches!(o, Plan::Select { .. }), "{o}");
        assert_equivalent(&p);
    }

    #[test]
    fn pushdown_through_union_and_distinct() {
        let t = Plan::scan("t", t_schema());
        let p = t.clone().union(t).distinct().select(col("k").eq(lit(2i64)));
        assert_equivalent(&p);
        let o = optimize(&p, OptimizerConfig::default());
        // Root should be distinct over union of selects.
        assert_eq!(o.op_kind(), OpKind::Distinct, "{o}");
    }

    #[test]
    fn identity_project_pruned() {
        let p = Plan::scan("t", t_schema()).project(vec![("k", col("k")), ("v", col("v"))]);
        let o = optimize(&p, OptimizerConfig::default());
        assert_eq!(o, Plan::scan("t", t_schema()));
        // A reordering projection is NOT an identity.
        let p = Plan::scan("t", t_schema()).project(vec![("v", col("v")), ("k", col("k"))]);
        let o = optimize(&p, OptimizerConfig::default());
        assert_eq!(o.op_kind(), OpKind::Project);
    }

    #[test]
    fn recognition_restores_matmul() {
        let m = bda_storage::dataset::matrix_dataset(2, 2, vec![1., 2., 3., 4.]).unwrap();
        let plan = Plan::scan("m", m.schema().clone()).matmul(Plan::scan("m", m.schema().clone()));
        let lowered = bda_core::lower::lower_all(&plan).unwrap();
        let o = optimize(&lowered, OptimizerConfig::default());
        assert!(o.op_kinds().contains(&OpKind::MatMul), "{o}");
        let off = optimize(
            &lowered,
            OptimizerConfig {
                recognize_intents: false,
                ..OptimizerConfig::default()
            },
        );
        assert!(!off.op_kinds().contains(&OpKind::MatMul));
    }

    #[test]
    fn disabled_config_is_identity() {
        let p = Plan::scan("t", t_schema())
            .select(lit(true))
            .aggregate(vec!["k"], vec![AggExpr::new(AggFunc::Sum, col("v"), "s")]);
        assert_eq!(optimize(&p, OptimizerConfig::disabled()), p);
    }

    #[test]
    fn pushdown_through_retagging_and_dice() {
        let m =
            bda_storage::dataset::matrix_dataset(4, 4, (0..16).map(f64::from).collect()).unwrap();
        let mut src = StdHashMap::new();
        src.insert("m".to_string(), m.clone());
        let p = Plan::Dice {
            input: Plan::scan("m", m.schema().clone()).boxed(),
            ranges: vec![("row".into(), 0, 3)],
        }
        .select(col("v").gt(lit(5.0)));
        let o = optimize(&p, OptimizerConfig::default());
        // The filter must sit below the dice after pushdown.
        assert_eq!(o.op_kind(), OpKind::Dice, "{o}");
        let a = evaluate(&p, &src).unwrap();
        let b = evaluate(&o, &src).unwrap();
        assert!(a.same_bag(&b).unwrap());
    }

    #[test]
    fn folding_inside_case_branches() {
        let e = Expr::Case {
            branches: vec![(lit(2i64).gt(lit(1i64)), lit(10i64).mul(lit(10i64)))],
            otherwise: Some(Box::new(col("k"))),
        };
        let f = fold_expr(&e);
        // Whole CASE folds: condition is the constant true and the branch
        // a constant, so the expression itself has no column refs... it
        // does reference k in `otherwise`, so only subtrees fold.
        match f {
            Expr::Case { branches, .. } => {
                assert_eq!(
                    branches[0],
                    (
                        Expr::Literal(bda_storage::Value::Bool(true)),
                        Expr::Literal(bda_storage::Value::Int(100))
                    )
                );
            }
            other => panic!("expected case, got {other}"),
        }
    }

    #[test]
    fn semi_join_left_pushdown() {
        let t = Plan::scan("t", t_schema());
        let p = t
            .clone()
            .join_as(t, vec![("k", "k")], JoinType::Semi)
            .select(col("v").gt(lit(0.0)));
        let o = optimize(&p, OptimizerConfig::default());
        // Predicate references left columns only: pushed into the left.
        match &o {
            Plan::Join {
                left, join_type, ..
            } => {
                assert_eq!(*join_type, JoinType::Semi);
                assert!(matches!(left.as_ref(), Plan::Select { .. }), "{o}");
            }
            other => panic!("expected join, got {other}"),
        }
        assert_equivalent(&p);
    }

    #[test]
    fn stats_disprove_selection_fragment() {
        let stats_of =
            |name: &str| (name == "t").then(|| TableStats::of(&src()["t"]).unwrap());
        let cfg = OptimizerConfig {
            use_stats: true,
            ..OptimizerConfig::default()
        };
        // k ranges 1..=4; k > 100 is disproved by the merged zone map.
        let p = Plan::scan("t", t_schema()).select(col("k").gt(lit(100i64)));
        let (o, n) = optimize_with_stats(&p, cfg, &stats_of);
        assert_eq!(n, 1);
        assert!(
            matches!(&o, Plan::Values { rows, .. } if rows.is_empty()),
            "{o}"
        );
        // A satisfiable predicate is untouched.
        let p2 = Plan::scan("t", t_schema()).select(col("k").gt(lit(2i64)));
        let (o2, n2) = optimize_with_stats(&p2, cfg, &stats_of);
        assert_eq!(n2, 0);
        assert_eq!(o2, p2);
        // No statistics for the table: nothing is eliminated.
        let (o3, n3) = optimize_with_stats(&p, cfg, &|_| None);
        assert_eq!(n3, 0);
        assert_eq!(o3, p);
        // use_stats off: identical plan even with statistics available.
        let off = OptimizerConfig {
            use_stats: false,
            ..cfg
        };
        assert_eq!(optimize_with_stats(&p, off, &stats_of).1, 0);
    }

    #[test]
    fn random_pipelines_preserved() {
        // A handful of structurally diverse plans, all checked against the
        // reference evaluator.
        let t = || Plan::scan("t", t_schema());
        let plans = vec![
            t().select(col("v").gt(lit(0.0)))
                .select(col("k").lt(lit(4i64)))
                .sort_by(vec!["k"])
                .limit(2),
            t().rename(vec![("k", "key")])
                .select(col("key").modulo(lit(2i64)).eq(lit(0i64))),
            t().union(t().select(col("v").lt(lit(0.0))))
                .select(col("k").gt(lit(1i64).add(lit(1i64)))),
            t().join_as(t(), vec![("k", "k")], JoinType::Semi)
                .select(col("v").gt(lit(-10.0))),
            t().aggregate(vec!["k"], vec![AggExpr::new(AggFunc::Avg, col("v"), "m")])
                .select(col("m").is_null().not()),
        ];
        for p in &plans {
            assert_equivalent(p);
        }
    }
}
