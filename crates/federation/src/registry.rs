//! The provider registry: who exists, what they can do, where data lives.

use std::sync::Arc;

use bda_core::{CapabilitySet, CoreError, OpKind, Plan, Provider};
use bda_storage::Schema;

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// A shared, ordered collection of providers.
#[derive(Clone, Default)]
pub struct Registry {
    providers: Vec<Arc<dyn Provider>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register a provider (order matters only for tie-breaking).
    pub fn register(&mut self, p: Arc<dyn Provider>) {
        self.providers.push(p);
    }

    /// All providers, in registration order.
    pub fn providers(&self) -> &[Arc<dyn Provider>] {
        &self.providers
    }

    /// Provider by name.
    pub fn provider(&self, name: &str) -> Result<Arc<dyn Provider>> {
        self.providers
            .iter()
            .find(|p| p.name() == name)
            .cloned()
            .ok_or_else(|| CoreError::Plan(format!("unknown provider `{name}`")))
    }

    /// Names of providers holding the named dataset.
    pub fn locations_of(&self, dataset: &str) -> Vec<String> {
        self.providers
            .iter()
            .filter(|p| p.schema_of(dataset).is_some())
            .map(|p| p.name().to_string())
            .collect()
    }

    /// Schema of a dataset wherever it lives first.
    pub fn schema_of(&self, dataset: &str) -> Result<Schema> {
        self.providers
            .iter()
            .find_map(|p| p.schema_of(dataset))
            .ok_or_else(|| CoreError::UnknownDataset(dataset.to_string()))
    }

    /// Names of providers that support an operator kind natively.
    pub fn supporters_of(&self, op: OpKind) -> Vec<String> {
        self.providers
            .iter()
            .filter(|p| p.capabilities().supports(op))
            .map(|p| p.name().to_string())
            .collect()
    }

    /// The union of all capability sets.
    pub fn combined_capabilities(&self) -> CapabilitySet {
        let mut set = CapabilitySet::new();
        for p in &self.providers {
            for op in p.capabilities().iter() {
                set = set.with(op);
            }
        }
        set
    }
}

/// How an operator can reach a back end (the T1/T2 coverage report entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Translation {
    /// At least one provider executes it natively.
    Native(Vec<String>),
    /// No native provider, but lowering rewrites it into operators that
    /// are (recursively) all translatable.
    ViaLowering(Vec<OpKind>),
    /// Untranslatable in this federation.
    No,
}

/// Classify how each operator kind reaches the registered back ends.
///
/// This is experiment T1/T2: desideratum 2 requires that no operator maps
/// to [`Translation::No`] in a complete federation.
pub fn translatability(registry: &Registry) -> Vec<(OpKind, Translation)> {
    OpKind::ALL
        .iter()
        .map(|&op| (op, classify(registry, op)))
        .collect()
}

fn classify(registry: &Registry, op: OpKind) -> Translation {
    let native = registry.supporters_of(op);
    if !native.is_empty() {
        return Translation::Native(native);
    }
    if let Some(target_ops) = lowering_target_ops(op) {
        // Lowering succeeds if every operator it produces is translatable
        // (all lowering targets are base ops, so one level suffices).
        if target_ops
            .iter()
            .all(|k| !registry.supporters_of(*k).is_empty())
        {
            return Translation::ViaLowering(target_ops);
        }
    }
    Translation::No
}

/// The set of base operator kinds a canonical lowering of `op` produces
/// (`None` when `op` is base and has no lowering).
pub fn lowering_target_ops(op: OpKind) -> Option<Vec<OpKind>> {
    use bda_core::lower::lower_node;
    let probe = probe_plan(op)?;
    let lowered = lower_node(&probe).ok()??;
    let mut kinds: Vec<OpKind> = lowered
        .op_kinds()
        .into_iter()
        .filter(|k| *k != OpKind::Scan && *k != OpKind::Values)
        .collect();
    kinds.sort();
    kinds.dedup();
    Some(kinds)
}

/// A minimal well-typed plan with `op` at the root, used to probe the
/// lowering rules.
fn probe_plan(op: OpKind) -> Option<Plan> {
    use bda_core::infer::edge_schema;
    use bda_core::{AggExpr, AggFunc, GraphOp};
    use bda_storage::{DataType, Field};

    let matrix = || {
        Plan::scan(
            "__probe_m",
            Schema::new(vec![
                Field::dimension_bounded("i", 0, 2),
                Field::dimension_bounded("j", 0, 2),
                Field::value("v", DataType::Float64),
            ])
            .expect("static schema"),
        )
    };
    let edges = || Plan::scan("__probe_e", edge_schema());
    Some(match op {
        OpKind::MatMul => matrix().matmul(matrix()),
        OpKind::ElemWise => matrix().elemwise(bda_core::BinOp::Add, matrix()),
        OpKind::Window => Plan::Window {
            input: matrix().boxed(),
            radii: vec![("i".into(), 1), ("j".into(), 1)],
            aggs: vec![AggExpr::new(AggFunc::Sum, bda_core::col("v"), "s")],
        },
        OpKind::Fill => Plan::Fill {
            input: matrix().boxed(),
            fill: bda_storage::Value::Float(0.0),
        },
        OpKind::SliceAt => Plan::SliceAt {
            input: matrix().boxed(),
            dim: "i".into(),
            index: 0,
        },
        OpKind::Permute => Plan::Permute {
            input: matrix().boxed(),
            order: vec!["j".into(), "i".into()],
        },
        OpKind::PageRank => Plan::Graph(GraphOp::PageRank {
            edges: edges().boxed(),
            damping: 0.85,
            max_iters: 10,
            epsilon: 1e-6,
        }),
        OpKind::ConnectedComponents => Plan::Graph(GraphOp::ConnectedComponents {
            edges: edges().boxed(),
            max_iters: 10,
        }),
        OpKind::TriangleCount => Plan::Graph(GraphOp::TriangleCount {
            edges: edges().boxed(),
        }),
        OpKind::Degrees => Plan::Graph(GraphOp::Degrees {
            edges: edges().boxed(),
        }),
        OpKind::BfsLevels => Plan::Graph(GraphOp::BfsLevels {
            edges: edges().boxed(),
            source: 0,
        }),
        _ => return None,
    })
}

/// A provider wrapper that hides some of the inner provider's
/// capabilities. Used by the ablation experiments (e.g. masking `Iterate`
/// forces the federation into client-driven loops) and by tests that need
/// a weaker back end than any real engine.
pub struct MaskedProvider {
    inner: Arc<dyn Provider>,
    removed: Vec<OpKind>,
}

impl MaskedProvider {
    /// Wrap `inner`, hiding the `removed` capabilities.
    pub fn new(inner: Arc<dyn Provider>, removed: Vec<OpKind>) -> MaskedProvider {
        MaskedProvider { inner, removed }
    }
}

impl Provider for MaskedProvider {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capabilities(&self) -> CapabilitySet {
        let mut caps = self.inner.capabilities();
        for op in &self.removed {
            caps = caps.without(*op);
        }
        caps
    }

    fn catalog(&self) -> Vec<(String, Schema)> {
        self.inner.catalog()
    }

    fn execute(&self, plan: &Plan) -> Result<bda_storage::DataSet> {
        let unsupported = self.capabilities().unsupported_in(plan);
        if !unsupported.is_empty() {
            return Err(CoreError::Unsupported {
                provider: self.name().to_string(),
                op: unsupported
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", "),
            });
        }
        self.inner.execute(plan)
    }

    fn store(&self, name: &str, data: bda_storage::DataSet) -> Result<()> {
        self.inner.store(name, data)
    }

    fn remove(&self, name: &str) {
        self.inner.remove(name)
    }

    fn row_count_of(&self, name: &str) -> Option<usize> {
        self.inner.row_count_of(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::ReferenceProvider;
    use bda_storage::Column;
    use bda_storage::DataSet;

    fn registry() -> Registry {
        let mut r = Registry::new();
        let p = ReferenceProvider::new("ref");
        p.store(
            "t",
            DataSet::from_columns(vec![("k", Column::from(vec![1i64]))]).unwrap(),
        )
        .unwrap();
        r.register(Arc::new(p));
        r
    }

    #[test]
    fn lookup_and_locations() {
        let r = registry();
        assert!(r.provider("ref").is_ok());
        assert!(r.provider("nope").is_err());
        assert_eq!(r.locations_of("t"), vec!["ref"]);
        assert!(r.locations_of("absent").is_empty());
        assert!(r.schema_of("t").is_ok());
        assert!(r.schema_of("absent").is_err());
    }

    #[test]
    fn reference_provider_covers_everything() {
        let r = registry();
        for (op, t) in translatability(&r) {
            assert!(
                matches!(t, Translation::Native(_)),
                "{op:?} should be native on the reference provider"
            );
        }
    }

    #[test]
    fn empty_registry_translates_nothing() {
        let r = Registry::new();
        for (op, t) in translatability(&r) {
            assert_eq!(t, Translation::No, "{op:?}");
        }
    }

    #[test]
    fn masked_provider_hides_capabilities() {
        let inner = Arc::new(ReferenceProvider::new("ref"));
        inner
            .store(
                "t",
                DataSet::from_columns(vec![("k", Column::from(vec![1i64]))]).unwrap(),
            )
            .unwrap();
        let masked = MaskedProvider::new(inner, vec![OpKind::Iterate, OpKind::Distinct]);
        assert!(!masked.capabilities().supports(OpKind::Iterate));
        assert!(masked.capabilities().supports(OpKind::Select));
        let plan = Plan::scan("t", masked.schema_of("t").unwrap()).distinct();
        assert!(matches!(
            masked.execute(&plan),
            Err(CoreError::Unsupported { .. })
        ));
        let ok = Plan::scan("t", masked.schema_of("t").unwrap());
        assert_eq!(masked.execute(&ok).unwrap().num_rows(), 1);
    }

    #[test]
    fn lowering_targets_are_base_ops() {
        for op in OpKind::ALL {
            if let Some(targets) = lowering_target_ops(op) {
                assert!(op.is_intent(), "{op:?} lowered but is not intent");
                assert!(
                    targets.iter().all(|k| k.is_base()),
                    "{op:?} lowering targets contain intent ops: {targets:?}"
                );
            }
        }
        // Every intent op must have a lowering (translatability!).
        for op in OpKind::ALL.iter().filter(|k| k.is_intent()) {
            assert!(lowering_target_ops(*op).is_some(), "{op:?} has no lowering");
        }
    }
}
