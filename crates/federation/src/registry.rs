//! The provider registry: who exists, what they can do, where data
//! lives — and, for fault tolerance, who is currently *healthy*.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bda_core::{CapabilitySet, CoreError, OpKind, Plan, Provider};
use bda_storage::Schema;

use parking_lot::Mutex;

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Circuit-breaker tuning for the per-provider health tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects traffic before allowing one
    /// half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(250),
        }
    }
}

/// Snapshot of one provider's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow normally.
    Closed,
    /// Tripped: the provider is skipped during placement and failover.
    Open,
    /// Probing: one request is allowed through; its outcome decides
    /// whether the breaker closes again or re-opens.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerEntry {
    consecutive_failures: u32,
    state: BreakerState,
    opened_at: Instant,
}

impl BreakerEntry {
    fn new() -> BreakerEntry {
        BreakerEntry {
            consecutive_failures: 0,
            state: BreakerState::Closed,
            opened_at: Instant::now(),
        }
    }
}

/// Shared per-provider health: a consecutive-failure circuit breaker with
/// half-open probing. Cloning a [`Registry`] shares its board, so every
/// handle to the same federation sees the same health picture.
#[derive(Debug)]
pub struct HealthBoard {
    config: BreakerConfig,
    entries: Mutex<HashMap<String, BreakerEntry>>,
    trips: AtomicUsize,
}

impl Default for HealthBoard {
    fn default() -> Self {
        HealthBoard::new(BreakerConfig::default())
    }
}

impl HealthBoard {
    /// An empty board with the given breaker tuning.
    pub fn new(config: BreakerConfig) -> HealthBoard {
        HealthBoard {
            config,
            entries: Mutex::new(HashMap::new()),
            trips: AtomicUsize::new(0),
        }
    }

    /// The breaker tuning in effect.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// Record a successful call to `provider`: resets the failure streak
    /// and closes a half-open breaker.
    pub fn record_success(&self, provider: &str) {
        let mut entries = self.entries.lock();
        let e = entries
            .entry(provider.to_string())
            .or_insert_with(BreakerEntry::new);
        e.consecutive_failures = 0;
        e.state = BreakerState::Closed;
    }

    /// Record a failed call to `provider`. Returns `true` when this
    /// failure tripped the breaker open (either the failure streak
    /// reached the threshold, or a half-open probe failed).
    pub fn record_failure(&self, provider: &str) -> bool {
        let mut entries = self.entries.lock();
        let e = entries
            .entry(provider.to_string())
            .or_insert_with(BreakerEntry::new);
        e.consecutive_failures += 1;
        let trip = match e.state {
            BreakerState::Closed => e.consecutive_failures >= self.config.failure_threshold,
            BreakerState::HalfOpen => true, // failed probe re-opens
            BreakerState::Open => false,
        };
        if trip {
            e.state = BreakerState::Open;
            e.opened_at = Instant::now();
            self.trips.fetch_add(1, Ordering::Relaxed);
        }
        trip
    }

    /// May `provider` receive traffic right now? `Closed` and `HalfOpen`
    /// breakers admit requests; an `Open` breaker rejects them until its
    /// cooldown elapses, at which point it transitions to `HalfOpen` and
    /// admits exactly the probing request path.
    pub fn is_available(&self, provider: &str) -> bool {
        let mut entries = self.entries.lock();
        let Some(e) = entries.get_mut(provider) else {
            return true; // never failed
        };
        match e.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if e.opened_at.elapsed() >= self.config.cooldown {
                    e.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Current breaker state of `provider`.
    pub fn state(&self, provider: &str) -> BreakerState {
        self.entries
            .lock()
            .get(provider)
            .map(|e| e.state)
            .unwrap_or(BreakerState::Closed)
    }

    /// Total breaker trips since the board was created.
    pub fn trips(&self) -> usize {
        self.trips.load(Ordering::Relaxed)
    }

    /// Every tracked provider and its breaker state, sorted by name.
    /// Providers that never failed have no entry (implicitly `Closed`);
    /// the HTTP `/readyz` endpoint renders this as its detail line.
    pub fn snapshot(&self) -> Vec<(String, BreakerState)> {
        let entries = self.entries.lock();
        let mut out: Vec<(String, BreakerState)> = entries
            .iter()
            .map(|(name, e)| (name.clone(), e.state))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl BreakerState {
    /// Lower-case name for operator-facing rendering (`/readyz`).
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// A shared, ordered collection of providers.
#[derive(Clone)]
pub struct Registry {
    providers: Vec<Arc<dyn Provider>>,
    health: Arc<HealthBoard>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            providers: Vec::new(),
            health: Arc::new(HealthBoard::default()),
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// An empty registry with explicit circuit-breaker tuning.
    pub fn with_breaker_config(config: BreakerConfig) -> Registry {
        Registry {
            providers: Vec::new(),
            health: Arc::new(HealthBoard::new(config)),
        }
    }

    /// The shared per-provider health board.
    pub fn health(&self) -> &HealthBoard {
        &self.health
    }

    /// Replace the breaker tuning (resets all health state).
    pub fn set_breaker_config(&mut self, config: BreakerConfig) {
        self.health = Arc::new(HealthBoard::new(config));
    }

    /// Register a provider (order matters only for tie-breaking).
    pub fn register(&mut self, p: Arc<dyn Provider>) {
        self.providers.push(p);
    }

    /// All providers, in registration order.
    pub fn providers(&self) -> &[Arc<dyn Provider>] {
        &self.providers
    }

    /// Provider by name.
    pub fn provider(&self, name: &str) -> Result<Arc<dyn Provider>> {
        self.providers
            .iter()
            .find(|p| p.name() == name)
            .cloned()
            .ok_or_else(|| CoreError::Plan(format!("unknown provider `{name}`")))
    }

    /// Names of providers holding the named dataset.
    pub fn locations_of(&self, dataset: &str) -> Vec<String> {
        self.providers
            .iter()
            .filter(|p| p.schema_of(dataset).is_some())
            .map(|p| p.name().to_string())
            .collect()
    }

    /// Schema of a dataset wherever it lives first.
    pub fn schema_of(&self, dataset: &str) -> Result<Schema> {
        self.providers
            .iter()
            .find_map(|p| p.schema_of(dataset))
            .ok_or_else(|| CoreError::UnknownDataset(dataset.to_string()))
    }

    /// Names of providers that support an operator kind natively.
    pub fn supporters_of(&self, op: OpKind) -> Vec<String> {
        self.providers
            .iter()
            .filter(|p| p.capabilities().supports(op))
            .map(|p| p.name().to_string())
            .collect()
    }

    /// Like [`Registry::locations_of`], restricted to providers whose
    /// circuit breaker currently admits traffic.
    pub fn available_locations_of(&self, dataset: &str) -> Vec<String> {
        self.locations_of(dataset)
            .into_iter()
            .filter(|n| self.health.is_available(n))
            .collect()
    }

    /// Like [`Registry::supporters_of`], restricted to providers whose
    /// circuit breaker currently admits traffic.
    pub fn available_supporters_of(&self, op: OpKind) -> Vec<String> {
        self.supporters_of(op)
            .into_iter()
            .filter(|n| self.health.is_available(n))
            .collect()
    }

    /// Table statistics for a dataset from the first provider that both
    /// holds it and keeps statistics.
    pub fn table_stats(&self, dataset: &str) -> Option<bda_storage::TableStats> {
        self.providers
            .iter()
            .filter(|p| p.schema_of(dataset).is_some())
            .find_map(|p| p.table_stats(dataset))
    }

    /// The union of all capability sets.
    pub fn combined_capabilities(&self) -> CapabilitySet {
        let mut set = CapabilitySet::new();
        for p in &self.providers {
            for op in p.capabilities().iter() {
                set = set.with(op);
            }
        }
        set
    }
}

/// How an operator can reach a back end (the T1/T2 coverage report entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Translation {
    /// At least one provider executes it natively.
    Native(Vec<String>),
    /// No native provider, but lowering rewrites it into operators that
    /// are (recursively) all translatable.
    ViaLowering(Vec<OpKind>),
    /// Untranslatable in this federation.
    No,
}

/// Classify how each operator kind reaches the registered back ends.
///
/// This is experiment T1/T2: desideratum 2 requires that no operator maps
/// to [`Translation::No`] in a complete federation.
pub fn translatability(registry: &Registry) -> Vec<(OpKind, Translation)> {
    OpKind::ALL
        .iter()
        .map(|&op| (op, classify(registry, op)))
        .collect()
}

fn classify(registry: &Registry, op: OpKind) -> Translation {
    let native = registry.supporters_of(op);
    if !native.is_empty() {
        return Translation::Native(native);
    }
    if let Some(target_ops) = lowering_target_ops(op) {
        // Lowering succeeds if every operator it produces is translatable
        // (all lowering targets are base ops, so one level suffices).
        if target_ops
            .iter()
            .all(|k| !registry.supporters_of(*k).is_empty())
        {
            return Translation::ViaLowering(target_ops);
        }
    }
    Translation::No
}

/// The set of base operator kinds a canonical lowering of `op` produces
/// (`None` when `op` is base and has no lowering).
pub fn lowering_target_ops(op: OpKind) -> Option<Vec<OpKind>> {
    use bda_core::lower::lower_node;
    let probe = probe_plan(op)?;
    let lowered = lower_node(&probe).ok()??;
    let mut kinds: Vec<OpKind> = lowered
        .op_kinds()
        .into_iter()
        .filter(|k| *k != OpKind::Scan && *k != OpKind::Values)
        .collect();
    kinds.sort();
    kinds.dedup();
    Some(kinds)
}

/// A minimal well-typed plan with `op` at the root, used to probe the
/// lowering rules.
fn probe_plan(op: OpKind) -> Option<Plan> {
    use bda_core::infer::edge_schema;
    use bda_core::{AggExpr, AggFunc, GraphOp};
    use bda_storage::{DataType, Field};

    let matrix = || {
        Plan::scan(
            "__probe_m",
            Schema::new(vec![
                Field::dimension_bounded("i", 0, 2),
                Field::dimension_bounded("j", 0, 2),
                Field::value("v", DataType::Float64),
            ])
            .expect("static schema"),
        )
    };
    let edges = || Plan::scan("__probe_e", edge_schema());
    Some(match op {
        OpKind::MatMul => matrix().matmul(matrix()),
        OpKind::ElemWise => matrix().elemwise(bda_core::BinOp::Add, matrix()),
        OpKind::Window => Plan::Window {
            input: matrix().boxed(),
            radii: vec![("i".into(), 1), ("j".into(), 1)],
            aggs: vec![AggExpr::new(AggFunc::Sum, bda_core::col("v"), "s")],
        },
        OpKind::Fill => Plan::Fill {
            input: matrix().boxed(),
            fill: bda_storage::Value::Float(0.0),
        },
        OpKind::SliceAt => Plan::SliceAt {
            input: matrix().boxed(),
            dim: "i".into(),
            index: 0,
        },
        OpKind::Permute => Plan::Permute {
            input: matrix().boxed(),
            order: vec!["j".into(), "i".into()],
        },
        OpKind::PageRank => Plan::Graph(GraphOp::PageRank {
            edges: edges().boxed(),
            damping: 0.85,
            max_iters: 10,
            epsilon: 1e-6,
        }),
        OpKind::ConnectedComponents => Plan::Graph(GraphOp::ConnectedComponents {
            edges: edges().boxed(),
            max_iters: 10,
        }),
        OpKind::TriangleCount => Plan::Graph(GraphOp::TriangleCount {
            edges: edges().boxed(),
        }),
        OpKind::Degrees => Plan::Graph(GraphOp::Degrees {
            edges: edges().boxed(),
        }),
        OpKind::BfsLevels => Plan::Graph(GraphOp::BfsLevels {
            edges: edges().boxed(),
            source: 0,
        }),
        _ => return None,
    })
}

/// A provider wrapper that hides some of the inner provider's
/// capabilities. Used by the ablation experiments (e.g. masking `Iterate`
/// forces the federation into client-driven loops) and by tests that need
/// a weaker back end than any real engine.
pub struct MaskedProvider {
    inner: Arc<dyn Provider>,
    removed: Vec<OpKind>,
}

impl MaskedProvider {
    /// Wrap `inner`, hiding the `removed` capabilities.
    pub fn new(inner: Arc<dyn Provider>, removed: Vec<OpKind>) -> MaskedProvider {
        MaskedProvider { inner, removed }
    }
}

impl Provider for MaskedProvider {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capabilities(&self) -> CapabilitySet {
        let mut caps = self.inner.capabilities();
        for op in &self.removed {
            caps = caps.without(*op);
        }
        caps
    }

    fn catalog(&self) -> Vec<(String, Schema)> {
        self.inner.catalog()
    }

    fn execute(&self, plan: &Plan) -> Result<bda_storage::DataSet> {
        let unsupported = self.capabilities().unsupported_in(plan);
        if !unsupported.is_empty() {
            return Err(CoreError::Unsupported {
                provider: self.name().to_string(),
                op: unsupported
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", "),
            });
        }
        self.inner.execute(plan)
    }

    fn store(&self, name: &str, data: bda_storage::DataSet) -> Result<()> {
        self.inner.store(name, data)
    }

    fn remove(&self, name: &str) {
        self.inner.remove(name)
    }

    fn row_count_of(&self, name: &str) -> Option<usize> {
        self.inner.row_count_of(name)
    }

    fn table_stats(&self, name: &str) -> Option<bda_storage::TableStats> {
        self.inner.table_stats(name)
    }

    fn build_index(
        &self,
        dataset: &str,
        column: &str,
        kind: bda_storage::IndexKind,
    ) -> Result<()> {
        self.inner.build_index(dataset, column, kind)
    }

    fn index_specs(&self, dataset: &str) -> Vec<bda_storage::IndexSpec> {
        self.inner.index_specs(dataset)
    }

    fn index_fingerprint(&self, dataset: &str, column: &str) -> Option<u64> {
        self.inner.index_fingerprint(dataset, column)
    }

    fn endpoint(&self) -> Option<String> {
        self.inner.endpoint()
    }

    fn execute_push(&self, plan: &Plan, peer_addr: &str, dest_name: &str) -> Option<Result<u64>> {
        if !self.capabilities().unsupported_in(plan).is_empty() {
            return None;
        }
        self.inner.execute_push(plan, peer_addr, dest_name)
    }

    fn wire_bytes(&self) -> (u64, u64) {
        self.inner.wire_bytes()
    }

    fn execute_traced(
        &self,
        plan: &Plan,
        ctx: &bda_obs::TraceContext,
    ) -> Result<(bda_storage::DataSet, Vec<bda_obs::Span>)> {
        let unsupported = self.capabilities().unsupported_in(plan);
        if !unsupported.is_empty() {
            return Err(CoreError::Unsupported {
                provider: self.name().to_string(),
                op: unsupported
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", "),
            });
        }
        self.inner.execute_traced(plan, ctx)
    }

    fn execute_push_traced(
        &self,
        plan: &Plan,
        peer_addr: &str,
        dest_name: &str,
        ctx: &bda_obs::TraceContext,
    ) -> Option<Result<(u64, Vec<bda_obs::Span>)>> {
        if !self.capabilities().unsupported_in(plan).is_empty() {
            return None;
        }
        self.inner
            .execute_push_traced(plan, peer_addr, dest_name, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::ReferenceProvider;
    use bda_storage::Column;
    use bda_storage::DataSet;

    fn registry() -> Registry {
        let mut r = Registry::new();
        let p = ReferenceProvider::new("ref");
        p.store(
            "t",
            DataSet::from_columns(vec![("k", Column::from(vec![1i64]))]).unwrap(),
        )
        .unwrap();
        r.register(Arc::new(p));
        r
    }

    #[test]
    fn lookup_and_locations() {
        let r = registry();
        assert!(r.provider("ref").is_ok());
        assert!(r.provider("nope").is_err());
        assert_eq!(r.locations_of("t"), vec!["ref"]);
        assert!(r.locations_of("absent").is_empty());
        assert!(r.schema_of("t").is_ok());
        assert!(r.schema_of("absent").is_err());
    }

    #[test]
    fn reference_provider_covers_everything() {
        let r = registry();
        for (op, t) in translatability(&r) {
            assert!(
                matches!(t, Translation::Native(_)),
                "{op:?} should be native on the reference provider"
            );
        }
    }

    #[test]
    fn empty_registry_translates_nothing() {
        let r = Registry::new();
        for (op, t) in translatability(&r) {
            assert_eq!(t, Translation::No, "{op:?}");
        }
    }

    #[test]
    fn masked_provider_hides_capabilities() {
        let inner = Arc::new(ReferenceProvider::new("ref"));
        inner
            .store(
                "t",
                DataSet::from_columns(vec![("k", Column::from(vec![1i64]))]).unwrap(),
            )
            .unwrap();
        let masked = MaskedProvider::new(inner, vec![OpKind::Iterate, OpKind::Distinct]);
        assert!(!masked.capabilities().supports(OpKind::Iterate));
        assert!(masked.capabilities().supports(OpKind::Select));
        let plan = Plan::scan("t", masked.schema_of("t").unwrap()).distinct();
        assert!(matches!(
            masked.execute(&plan),
            Err(CoreError::Unsupported { .. })
        ));
        let ok = Plan::scan("t", masked.schema_of("t").unwrap());
        assert_eq!(masked.execute(&ok).unwrap().num_rows(), 1);
    }

    #[test]
    fn breaker_trips_after_consecutive_failures() {
        let board = HealthBoard::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(3600),
        });
        assert!(board.is_available("p"));
        assert!(!board.record_failure("p"));
        assert!(!board.record_failure("p"));
        assert!(board.is_available("p"), "still closed below threshold");
        assert!(board.record_failure("p"), "third failure trips");
        assert_eq!(board.state("p"), BreakerState::Open);
        assert!(!board.is_available("p"), "open circuit rejects traffic");
        assert_eq!(board.trips(), 1);
    }

    #[test]
    fn snapshot_lists_tracked_breakers_sorted() {
        let board = HealthBoard::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(3600),
        });
        assert!(board.snapshot().is_empty(), "no entries before any call");
        board.record_success("zeta");
        board.record_failure("alpha");
        assert_eq!(
            board.snapshot(),
            vec![
                ("alpha".to_string(), BreakerState::Open),
                ("zeta".to_string(), BreakerState::Closed),
            ]
        );
        assert_eq!(BreakerState::HalfOpen.name(), "half-open");
    }

    #[test]
    fn success_resets_failure_streak() {
        let board = HealthBoard::default();
        board.record_failure("p");
        board.record_failure("p");
        board.record_success("p");
        assert!(!board.record_failure("p"), "streak restarted");
        assert_eq!(board.state("p"), BreakerState::Closed);
    }

    #[test]
    fn open_breaker_half_opens_after_cooldown() {
        let board = HealthBoard::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::ZERO,
        });
        assert!(board.record_failure("p"));
        // Zero cooldown: the very next availability check admits a probe.
        assert!(board.is_available("p"));
        assert_eq!(board.state("p"), BreakerState::HalfOpen);
        // A failed probe re-opens (and counts as a trip) ...
        assert!(board.record_failure("p"));
        assert_eq!(board.trips(), 2);
        // ... and a successful probe closes for good.
        assert!(board.is_available("p"));
        board.record_success("p");
        assert_eq!(board.state("p"), BreakerState::Closed);
    }

    #[test]
    fn availability_filters_registry_lookups() {
        let r = registry(); // holds "ref" with dataset "t"
        assert_eq!(r.available_locations_of("t"), vec!["ref"]);
        let threshold = r.health().config().failure_threshold;
        for _ in 0..threshold {
            r.health().record_failure("ref");
        }
        assert!(r.available_locations_of("t").is_empty());
        assert!(r.available_supporters_of(OpKind::Select).is_empty());
        // The raw lookups ignore health (capability truth is static).
        assert_eq!(r.locations_of("t"), vec!["ref"]);
    }

    #[test]
    fn cloned_registries_share_the_health_board() {
        let r = registry();
        let clone = r.clone();
        let threshold = r.health().config().failure_threshold;
        for _ in 0..threshold {
            clone.health().record_failure("ref");
        }
        assert_eq!(r.health().state("ref"), BreakerState::Open);
    }

    #[test]
    fn lowering_targets_are_base_ops() {
        for op in OpKind::ALL {
            if let Some(targets) = lowering_target_ops(op) {
                assert!(op.is_intent(), "{op:?} lowered but is not intent");
                assert!(
                    targets.iter().all(|k| k.is_base()),
                    "{op:?} lowering targets contain intent ops: {targets:?}"
                );
            }
        }
        // Every intent op must have a lowering (translatability!).
        for op in OpKind::ALL.iter().filter(|k| k.is_intent()) {
            assert!(lowering_target_ops(*op).is_some(), "{op:?} has no lowering");
        }
    }
}
