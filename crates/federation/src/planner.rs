//! Site assignment and plan fragmentation.
//!
//! The planner turns one logical plan into a DAG of **fragments**, each
//! pinned to a provider that can execute its whole subtree natively. A
//! fragment boundary is exactly a server-to-server transfer; desideratum 4
//! says those transfers should flow directly between servers rather than
//! through the application tier, and the executor honours (or, for the
//! baseline, deliberately violates) that.
//!
//! Algorithm:
//!
//! 1. **Pre-lowering**: any intent operator with no native provider in the
//!    registry is rewritten by its canonical lowering (desideratum 2 —
//!    translatability as a planning fallback).
//! 2. **Candidate analysis** (bottom-up): the set of providers able to run
//!    each subtree in one piece, considering capabilities and data
//!    locality.
//! 3. **Assignment & cutting** (top-down): where a subtree has candidates
//!    it stays whole at the preferred/cheapest site; where it has none,
//!    the node executes at a site chosen from its operator's supporters
//!    and each child becomes its own fragment, shipped in.
//!
//! `Iterate` nodes that no single provider can host become **app-driven**
//! fragments (site [`APP_SITE`]): the executor itself drives the loop,
//! shipping loop state every iteration — the expensive baseline that
//! experiment F4 compares against server-side iteration.

use bda_core::infer::infer_schema;
use bda_core::lower::lower_node;
use bda_core::{CoreError, OpKind, Plan};
use bda_obs::profile::CostBook;
use bda_storage::Schema;

use crate::registry::Registry;

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// The pseudo-site representing the application tier.
pub const APP_SITE: &str = "__app";

/// Prefix of staged intermediate dataset names.
pub const FRAG_PREFIX: &str = "__bda_frag_";

/// One executable fragment.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// Fragment id; also names its staged output (`__bda_frag_{id}`).
    pub id: usize,
    /// Provider that executes it, or [`APP_SITE`] for app-driven loops.
    pub site: String,
    /// The plan; its scans may reference staged outputs of earlier
    /// fragments.
    pub plan: Plan,
    /// Output schema.
    pub schema: Schema,
    /// Site that consumes the output ("app" for the root fragment).
    pub dest_site: String,
    /// Ids of fragments whose outputs this fragment scans.
    pub inputs: Vec<usize>,
}

/// A fragmented plan: `fragments` is in dependency order; the last entry
/// is the root whose output goes back to the application.
#[derive(Debug, Clone)]
pub struct Placement {
    /// All fragments, dependencies before dependents.
    pub fragments: Vec<Fragment>,
}

impl Placement {
    /// The root fragment (executes last).
    pub fn root(&self) -> &Fragment {
        self.fragments.last().expect("placement has a root")
    }

    /// Names of the distinct sites involved.
    pub fn sites(&self) -> Vec<String> {
        let mut out: Vec<String> = self.fragments.iter().map(|f| f.site.clone()).collect();
        out.sort();
        out.dedup();
        out
    }
}

/// Estimated wire bytes per shipped row when the cost model has no
/// better information (a handful of numeric columns).
const SHIP_BYTES_PER_ROW: f64 = 64.0;

/// Transfer cost assumed for a site link the [`CostBook`] has never
/// measured (ns/byte; roughly loopback TCP).
const DEFAULT_NS_PER_BYTE: f64 = 1.0;

/// Fragments whose modeled operator work falls below this many
/// nanoseconds are not worth the Exchange/Merge overhead of partition
/// parallelism.
const MIN_PARALLEL_WORK_NS: f64 = 200_000.0;

/// The planner.
pub struct Planner<'a> {
    registry: &'a Registry,
    workers: usize,
    /// Measured-cost calibration; `None` (the default) keeps every
    /// choice on the static heuristics, byte-identical to the
    /// pre-calibration planner.
    costs: Option<CostBook>,
    /// Consult provider table statistics (column NDV estimates) when
    /// choosing hash-exchange partition counts. Off by default so the
    /// bare planner stays byte-identical to the pre-statistics one.
    use_stats: bool,
}

impl<'a> Planner<'a> {
    /// A planner over the given registry.
    pub fn new(registry: &'a Registry) -> Planner<'a> {
        Planner {
            registry,
            workers: 1,
            costs: None,
            use_stats: false,
        }
    }

    /// Cap hash-exchange partition counts at the key column's distinct
    /// value estimate (partitions beyond the NDV sit empty). With `false`
    /// or when no holder publishes statistics for the key, the static
    /// worker count stands.
    pub fn with_stats(mut self, on: bool) -> Planner<'a> {
        self.use_stats = on;
        self
    }

    /// Consult a [`CostBook`] of measured costs for site assignment
    /// (which replica takes a fragment — the pushdown-toward-data
    /// choice at each cut) and partition-count decisions. An empty book
    /// (no folded profiles yet) is ignored, and `None` disables
    /// calibration entirely: both produce plans byte-identical to the
    /// static planner.
    pub fn with_costs(mut self, costs: Option<CostBook>) -> Planner<'a> {
        self.costs = costs;
        self
    }

    /// Plan for `n` partition-parallel workers: with `n > 1`, fragments
    /// pinned to providers that advertise [`OpKind::Exchange`] and
    /// [`OpKind::Merge`] get their hot operators wrapped in explicit
    /// `Merge(op(Exchange(..)))` markers, so repartitioning is visible in
    /// EXPLAIN output and drives the engines' partitioned kernels.
    pub fn with_workers(mut self, n: usize) -> Planner<'a> {
        self.workers = n.max(1);
        self
    }

    /// Fragment a plan.
    pub fn place(&self, plan: &Plan) -> Result<Placement> {
        let prepared = self.pre_lower(plan)?;
        let mut fragments = Vec::new();
        let mut counter = 0usize;
        let (root_plan, root_site) = self.assign(&prepared, None, &mut fragments, &mut counter)?;
        let schema = infer_schema(&root_plan)?;
        let inputs = staged_inputs(&root_plan);
        fragments.push(Fragment {
            id: counter,
            site: root_site,
            plan: root_plan,
            schema,
            dest_site: "app".to_string(),
            inputs,
        });
        // Fix dest sites: each fragment's destination is the site of the
        // fragment that consumes it.
        let consumers: Vec<(usize, String)> = fragments
            .iter()
            .flat_map(|f| {
                f.inputs
                    .iter()
                    .map(|&i| (i, f.site.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (input_id, consumer_site) in consumers {
            if let Some(f) = fragments.iter_mut().find(|f| f.id == input_id) {
                f.dest_site = consumer_site;
            }
        }
        if self.workers > 1 {
            for f in &mut fragments {
                if f.site != APP_SITE
                    && self.site_runs_partitioned(&f.site)
                    && self.worth_partitioning(&f.plan)
                {
                    f.plan = parallelize_fragment_with(&f.plan, self.workers, &|input, key| {
                        self.ndv_of(input, key)
                    });
                }
            }
        }
        Ok(Placement { fragments })
    }

    /// The distinct-value estimate for `key` over the base datasets a
    /// subtree scans, from whichever provider publishes table statistics
    /// for one of them. `None` when stats are off for this planner, the
    /// subtree scans only staged intermediates, or no holder has an
    /// estimate — the caller then keeps the static partition count.
    fn ndv_of(&self, input: &Plan, key: &str) -> Option<usize> {
        if !self.use_stats {
            return None;
        }
        input.scanned_datasets().iter().find_map(|d| {
            self.registry
                .table_stats(d)
                .and_then(|s| s.column(key).map(|z| z.distinct))
        })
    }

    /// Does the provider at `site` advertise partition-parallel execution
    /// (both `Exchange` and `Merge` in its capability set)?
    fn site_runs_partitioned(&self, site: &str) -> bool {
        self.registry
            .provider(site)
            .map(|p| {
                let caps = p.capabilities();
                caps.supports(OpKind::Exchange) && caps.supports(OpKind::Merge)
            })
            .unwrap_or(false)
    }

    /// Rewrite intent operators that no registered provider supports.
    fn pre_lower(&self, plan: &Plan) -> Result<Plan> {
        let children: Vec<Plan> = plan
            .children()
            .iter()
            .map(|c| self.pre_lower(c))
            .collect::<Result<_>>()?;
        let rebuilt = plan.with_children(children);
        let kind = rebuilt.op_kind();
        if kind.is_intent() && self.registry.supporters_of(kind).is_empty() {
            let lowered = lower_node(&rebuilt)?.ok_or_else(|| {
                CoreError::Lower(format!(
                    "intent op {} has no provider and no lowering",
                    kind.name()
                ))
            })?;
            // The lowering may itself contain intent ops (it does not
            // today, but be safe) — recurse.
            return self.pre_lower(&lowered);
        }
        Ok(rebuilt)
    }

    /// Candidate sites able to run the whole subtree in one fragment.
    ///
    /// Providers whose circuit breaker is open are skipped, so placement
    /// routes around sites that recently failed — unless *every* holder
    /// or supporter is open-circuit, in which case the full set is used
    /// (placing on a suspect provider doubles as the half-open probe and
    /// beats failing the query outright).
    fn candidates(&self, plan: &Plan) -> Vec<String> {
        match plan {
            Plan::Scan { dataset, .. } => {
                let available = self.registry.available_locations_of(dataset);
                if available.is_empty() {
                    self.registry.locations_of(dataset)
                } else {
                    available
                }
            }
            _ => {
                let mut cands = self.healthy_supporters(plan.op_kind());
                for c in plan.children() {
                    let child = self.candidates(c);
                    cands.retain(|s| child.contains(s));
                }
                cands
            }
        }
    }

    /// Supporters of `op`, preferring those with a closed breaker.
    fn healthy_supporters(&self, op: bda_core::OpKind) -> Vec<String> {
        let available = self.registry.available_supporters_of(op);
        if available.is_empty() {
            self.registry.supporters_of(op)
        } else {
            available
        }
    }

    /// Pick an execution site, preferring `preferred`, then — when a
    /// non-empty [`CostBook`] is mounted — the candidate with the
    /// lowest modeled cost, then the site holding the most scanned
    /// rows, then registration order.
    fn pick(&self, cands: &[String], preferred: Option<&str>, plan: &Plan) -> String {
        if let Some(p) = preferred {
            if cands.iter().any(|c| c == p) {
                return p.to_string();
            }
        }
        if let Some(book) = &self.costs {
            if let Some(site) = self.pick_by_cost(book, cands, plan) {
                return site;
            }
        }
        let scanned = plan.scanned_datasets();
        let mut best: Option<(usize, &String)> = None;
        for c in cands {
            let rows: usize = self
                .registry
                .provider(c)
                .ok()
                .map(|p| {
                    scanned
                        .iter()
                        .filter_map(|d| p.row_count_of(d))
                        .sum::<usize>()
                })
                .unwrap_or(0);
            let better = match best {
                Some((r, _)) => rows > r,
                None => true,
            };
            if better {
                best = Some((rows, c));
            }
        }
        best.map(|(_, c)| c.clone())
            .unwrap_or_else(|| cands[0].clone())
    }

    /// Cost-based site choice: per candidate, the measured per-fragment
    /// dispatch cost at that site plus the modeled cost of shipping in
    /// every scanned dataset the site does not hold. Sites the book has
    /// never measured cost an optimistic zero dispatch — exploration,
    /// so a fast replica that static placement never exercised still
    /// gets its first fragment. `None` when the book holds no profiles
    /// yet (the caller falls through to the static heuristics — this is
    /// what keeps disabled/empty calibration byte-identical).
    fn pick_by_cost(&self, book: &CostBook, cands: &[String], plan: &Plan) -> Option<String> {
        if book.samples() == 0 {
            return None;
        }
        let scanned = plan.scanned_datasets();
        let mut best: Option<(f64, &String)> = None;
        for c in cands {
            let provider = self.registry.provider(c).ok();
            let mut shipped_rows = 0f64;
            for d in &scanned {
                let held = provider.as_ref().and_then(|p| p.row_count_of(d));
                if held.is_none() {
                    shipped_rows += self.rows_anywhere(d) as f64;
                }
            }
            let dispatch = book.dispatch_ns(c).unwrap_or(0.0);
            let per_byte = book.ns_per_byte(c).unwrap_or(DEFAULT_NS_PER_BYTE);
            let cost = dispatch + shipped_rows * SHIP_BYTES_PER_ROW * per_byte;
            let better = match best {
                Some((b, _)) => cost < b,
                None => true,
            };
            if better {
                best = Some((cost, c));
            }
        }
        best.map(|(_, c)| c.clone())
    }

    /// Row count of a dataset at whichever site holds it (0 when no
    /// holder publishes statistics).
    fn rows_anywhere(&self, dataset: &str) -> usize {
        self.registry
            .locations_of(dataset)
            .iter()
            .filter_map(|s| self.registry.provider(s).ok())
            .find_map(|p| p.row_count_of(dataset))
            .unwrap_or(0)
    }

    /// Partition-count choice: with a calibrated book, a fragment whose
    /// modeled operator work (measured ns/row × scanned rows) is below
    /// [`MIN_PARALLEL_WORK_NS`] keeps running sequentially — the
    /// Exchange/Merge overhead would outweigh it. Unknown classes,
    /// unknown cardinalities, or an empty/absent book leave the static
    /// choice untouched.
    fn worth_partitioning(&self, plan: &Plan) -> bool {
        let Some(book) = &self.costs else { return true };
        if book.samples() == 0 {
            return true;
        }
        let mut per_row = 0.0f64;
        let mut modeled = false;
        for kind in plan.op_kinds() {
            if let Some(c) = book.ns_per_row(kind.name()) {
                per_row += c;
                modeled = true;
            }
        }
        if !modeled {
            return true;
        }
        let rows: usize = plan
            .scanned_datasets()
            .iter()
            .map(|d| self.rows_anywhere(d))
            .sum();
        if rows == 0 {
            return true;
        }
        per_row * rows as f64 >= MIN_PARALLEL_WORK_NS
    }

    fn assign(
        &self,
        plan: &Plan,
        preferred: Option<&str>,
        fragments: &mut Vec<Fragment>,
        counter: &mut usize,
    ) -> Result<(Plan, String)> {
        let cands = self.candidates(plan);
        if !cands.is_empty() {
            let site = self.pick(&cands, preferred, plan);
            return Ok((plan.clone(), site));
        }
        // No single site can host the subtree: handle the node itself.
        if let Plan::Scan { dataset, .. } = plan {
            // A scan with no candidates means the dataset exists nowhere.
            return Err(CoreError::UnknownDataset(dataset.clone()));
        }
        if let Plan::Iterate { .. } = plan {
            // Cutting through a loop body is unsound (the state is
            // loop-carried); fall back to app-driven iteration.
            return Ok((plan.clone(), APP_SITE.to_string()));
        }
        let supporters = self.healthy_supporters(plan.op_kind());
        if supporters.is_empty() {
            return Err(CoreError::Unsupported {
                provider: "<federation>".into(),
                op: format!(
                    "{} (no provider supports it and it has no lowering)",
                    plan.op_kind().name()
                ),
            });
        }
        let site = self.pick(&supporters, preferred, plan);
        let mut new_children = Vec::new();
        for child in plan.children() {
            let (child_plan, child_site) = self.assign(child, Some(&site), fragments, counter)?;
            if child_site == site {
                new_children.push(child_plan);
            } else {
                // Cut: the child becomes its own fragment; the parent
                // scans its staged output.
                let schema = infer_schema(&child_plan)?;
                let id = *counter;
                *counter += 1;
                let inputs = staged_inputs(&child_plan);
                fragments.push(Fragment {
                    id,
                    site: child_site,
                    plan: child_plan,
                    schema: schema.clone(),
                    dest_site: site.clone(), // refined in `place`
                    inputs,
                });
                new_children.push(Plan::Scan {
                    dataset: format!("{FRAG_PREFIX}{id}"),
                    schema,
                });
            }
        }
        Ok((plan.with_children(new_children), site))
    }
}

/// Fragment ids referenced by staged scans in a plan.
fn staged_inputs(plan: &Plan) -> Vec<usize> {
    plan.scanned_datasets()
        .iter()
        .filter_map(|d| d.strip_prefix(FRAG_PREFIX).and_then(|s| s.parse().ok()))
        .collect()
}

/// Wrap the hot operators of a fragment plan in explicit
/// `Merge(op(Exchange(..)))` markers so engines run their partitioned
/// kernels with `parts` partitions. Joins and grouped aggregates get hash
/// partitioning on their keys; matmul and elementwise get contiguous block
/// splits. Already-marked operators are left alone, so re-planning an
/// iterating body never double-wraps.
#[cfg(test)]
fn parallelize_fragment(plan: &Plan, parts: usize) -> Plan {
    parallelize_fragment_with(plan, parts, &|_, _| None)
}

/// [`parallelize_fragment`] with a statistics hook: `ndv(input, key)`
/// returns the distinct-value estimate for a hash key over `input`'s base
/// scans, and hash exchanges are capped at `min(workers, max(1, ndv))` —
/// partitions beyond the key's cardinality would sit empty while still
/// paying the Exchange/Merge plumbing. Block splits (matmul, elementwise)
/// are row-range based and always use the full worker count.
fn parallelize_fragment_with(
    plan: &Plan,
    parts: usize,
    ndv: &dyn Fn(&Plan, &str) -> Option<usize>,
) -> Plan {
    let is_exchange = |p: &Plan| matches!(p, Plan::Exchange { .. });
    let capped = |estimate: Option<usize>| match estimate {
        Some(n) => parts.min(n.max(1)),
        None => parts,
    };
    plan.transform_up(&|node| match node {
        Plan::Join {
            left,
            right,
            on,
            join_type,
            suffix,
        } if !is_exchange(&left) && !is_exchange(&right) => {
            let (lkey, rkey) = match on.first() {
                Some((l, r)) => (Some(l.clone()), Some(r.clone())),
                None => (None, None),
            };
            // Both sides of a hash join must agree on the partition
            // count; the richer side's NDV bounds the useful number.
            let estimate = match (&lkey, &rkey) {
                (Some(l), Some(r)) => match (ndv(&left, l), ndv(&right, r)) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (one, other) => one.or(other),
                },
                _ => None,
            };
            let parts = capped(estimate);
            Plan::Merge {
                input: Box::new(Plan::Join {
                    left: Box::new(Plan::Exchange {
                        input: left,
                        parts,
                        key: lkey,
                    }),
                    right: Box::new(Plan::Exchange {
                        input: right,
                        parts,
                        key: rkey,
                    }),
                    on,
                    join_type,
                    suffix,
                }),
            }
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } if !group_by.is_empty() && !is_exchange(&input) => {
            let parts = capped(ndv(&input, &group_by[0]));
            let key = Some(group_by[0].clone());
            Plan::Merge {
                input: Box::new(Plan::Aggregate {
                    input: Box::new(Plan::Exchange { input, parts, key }),
                    group_by,
                    aggs,
                }),
            }
        }
        Plan::MatMul { left, right } if !is_exchange(&left) => Plan::Merge {
            input: Box::new(Plan::MatMul {
                left: Box::new(Plan::Exchange {
                    input: left,
                    parts,
                    key: None,
                }),
                right,
            }),
        },
        Plan::ElemWise { op, left, right } if !is_exchange(&left) && !is_exchange(&right) => {
            Plan::Merge {
                input: Box::new(Plan::ElemWise {
                    op,
                    left: Box::new(Plan::Exchange {
                        input: left,
                        parts,
                        key: None,
                    }),
                    right: Box::new(Plan::Exchange {
                        input: right,
                        parts,
                        key: None,
                    }),
                }),
            }
        }
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{col, lit, Provider};
    use bda_linalg::LinAlgEngine;
    use bda_relational::RelationalEngine;
    use bda_storage::dataset::matrix_dataset;
    use bda_storage::{Column, DataSet};
    use std::sync::Arc;

    fn registry() -> Registry {
        let rel = RelationalEngine::new("rel");
        rel.store(
            "sales",
            DataSet::from_columns(vec![
                ("k", Column::from(vec![1i64, 2])),
                ("v", Column::from(vec![1.0f64, 2.0])),
            ])
            .unwrap(),
        )
        .unwrap();
        rel.store(
            "m_rows",
            matrix_dataset(2, 2, vec![1., 2., 3., 4.]).unwrap(),
        )
        .unwrap();
        let la = LinAlgEngine::new("la");
        la.store("m", matrix_dataset(2, 2, vec![1., 0., 0., 1.]).unwrap())
            .unwrap();
        let mut r = Registry::new();
        r.register(Arc::new(rel));
        r.register(Arc::new(la));
        r
    }

    #[test]
    fn single_site_plan_is_one_fragment() {
        let r = registry();
        let plan = Plan::scan("sales", r.schema_of("sales").unwrap()).select(col("v").gt(lit(1.0)));
        let placement = Planner::new(&r).place(&plan).unwrap();
        assert_eq!(placement.fragments.len(), 1);
        assert_eq!(placement.root().site, "rel");
        assert_eq!(placement.root().dest_site, "app");
    }

    #[test]
    fn cross_engine_matmul_fragments() {
        let r = registry();
        // Left matrix lives (as rows) on the relational engine; right on
        // the linalg engine; matmul is only native on linalg.
        let plan = Plan::scan("m_rows", r.schema_of("m_rows").unwrap()).matmul(Plan::scan(
            "m",
            r.provider("la").unwrap().schema_of("m").unwrap(),
        ));
        let placement = Planner::new(&r).place(&plan).unwrap();
        assert_eq!(placement.fragments.len(), 2, "{placement:?}");
        let shipped = &placement.fragments[0];
        assert_eq!(shipped.site, "rel");
        assert_eq!(shipped.dest_site, "la");
        assert_eq!(placement.root().site, "la");
        // The root scans the staged fragment.
        assert!(placement
            .root()
            .plan
            .scanned_datasets()
            .iter()
            .any(|d| d.starts_with(FRAG_PREFIX)));
    }

    #[test]
    fn unplaceable_iterate_goes_to_app() {
        // Registry with only linalg: no Iterate support anywhere.
        let mut r = Registry::new();
        let la = LinAlgEngine::new("la");
        la.store("m", matrix_dataset(2, 2, vec![1., 0., 0., 1.]).unwrap())
            .unwrap();
        r.register(Arc::new(la));
        let schema = r.provider("la").unwrap().schema_of("m").unwrap();
        let plan = Plan::Iterate {
            init: Plan::scan("m", schema.clone()).boxed(),
            body: Plan::IterState {
                schema: schema.clone(),
            }
            .matmul(Plan::scan("m", schema))
            .boxed(),
            max_iters: 3,
            epsilon: None,
        };
        let placement = Planner::new(&r).place(&plan).unwrap();
        assert_eq!(placement.root().site, APP_SITE);
    }

    #[test]
    fn pre_lowering_kicks_in_without_specialists() {
        // Only the relational engine: matmul must be pre-lowered.
        let mut r = Registry::new();
        let rel = RelationalEngine::new("rel");
        rel.store(
            "m_rows",
            matrix_dataset(2, 2, vec![1., 2., 3., 4.]).unwrap(),
        )
        .unwrap();
        r.register(Arc::new(rel));
        let schema = r.schema_of("m_rows").unwrap();
        let plan = Plan::scan("m_rows", schema.clone()).matmul(Plan::scan("m_rows", schema));
        let placement = Planner::new(&r).place(&plan).unwrap();
        assert_eq!(placement.fragments.len(), 1);
        assert!(placement.root().plan.op_kinds().iter().all(|k| k.is_base()));
    }

    #[test]
    fn placement_skips_open_circuit_providers() {
        // Two linalg replicas both hold `m`; trip one's breaker and the
        // planner must place on the other.
        let la1 = LinAlgEngine::new("la1");
        la1.store("m", matrix_dataset(2, 2, vec![1., 0., 0., 1.]).unwrap())
            .unwrap();
        let la2 = LinAlgEngine::new("la2");
        la2.store("m", matrix_dataset(2, 2, vec![1., 0., 0., 1.]).unwrap())
            .unwrap();
        // Long cooldown so an open breaker cannot half-open mid-test.
        let mut r = Registry::with_breaker_config(crate::registry::BreakerConfig {
            failure_threshold: 3,
            cooldown: std::time::Duration::from_secs(3600),
        });
        r.register(Arc::new(la1));
        r.register(Arc::new(la2));
        let schema = r.schema_of("m").unwrap();
        let plan = Plan::scan("m", schema.clone()).matmul(Plan::scan("m", schema));

        let before = Planner::new(&r).place(&plan).unwrap();
        assert_eq!(before.root().site, "la1", "registration order wins");

        let threshold = r.health().config().failure_threshold;
        for _ in 0..threshold {
            r.health().record_failure("la1");
        }
        let after = Planner::new(&r).place(&plan).unwrap();
        assert_eq!(after.root().site, "la2", "open circuit is skipped");

        // With every holder open-circuit, placement still succeeds (the
        // suspect provider becomes the half-open probe).
        for _ in 0..threshold {
            r.health().record_failure("la2");
        }
        assert!(Planner::new(&r).place(&plan).is_ok());
    }

    fn site_profile(site: &str, fragment_wall_ns: u64) -> bda_obs::profile::QueryProfile {
        bda_obs::profile::QueryProfile {
            trace_id: 1,
            tenant: String::new(),
            wall_ns: fragment_wall_ns,
            slow: false,
            ops: vec![],
            sites: vec![bda_obs::profile::SiteProfile {
                site: site.to_string(),
                fragments: 1,
                fragment_wall_ns,
                transfer_bytes: 0,
                transfer_wall_ns: 0,
                retries: 0,
                failovers: 0,
            }],
        }
    }

    #[test]
    fn calibrated_pick_prefers_the_measured_fast_replica() {
        let la1 = LinAlgEngine::new("la1");
        la1.store("m", matrix_dataset(2, 2, vec![1., 0., 0., 1.]).unwrap())
            .unwrap();
        let la2 = LinAlgEngine::new("la2");
        la2.store("m", matrix_dataset(2, 2, vec![1., 0., 0., 1.]).unwrap())
            .unwrap();
        let mut r = Registry::new();
        r.register(Arc::new(la1));
        r.register(Arc::new(la2));
        let schema = r.schema_of("m").unwrap();
        let plan = Plan::scan("m", schema.clone()).matmul(Plan::scan("m", schema));

        // None and an *empty* book are both byte-identical to the
        // static planner (and keep its registration-order choice).
        let book = bda_obs::profile::CostBook::new(7);
        let static_p = Planner::new(&r).place(&plan).unwrap();
        let with_none = Planner::new(&r).with_costs(None).place(&plan).unwrap();
        let with_empty = Planner::new(&r)
            .with_costs(Some(book.clone()))
            .place(&plan)
            .unwrap();
        assert_eq!(format!("{static_p:?}"), format!("{with_none:?}"));
        assert_eq!(format!("{static_p:?}"), format!("{with_empty:?}"));
        assert_eq!(static_p.root().site, "la1", "registration order wins");

        // Measure la1 slow (5ms per fragment): the still-unmeasured la2
        // costs an optimistic zero and gets explored.
        book.observe(&site_profile("la1", 5_000_000));
        let calibrated = Planner::new(&r)
            .with_costs(Some(book.clone()))
            .place(&plan)
            .unwrap();
        assert_eq!(
            calibrated.root().site,
            "la2",
            "explore the unmeasured replica"
        );

        // Once la2 measures slower than la1, placement swings back.
        book.observe(&site_profile("la2", 50_000_000));
        let back = Planner::new(&r)
            .with_costs(Some(book))
            .place(&plan)
            .unwrap();
        assert_eq!(back.root().site, "la1", "measured costs decide");
    }

    #[test]
    fn calibrated_partitioning_skips_tiny_fragments() {
        let r = registry();
        let schema = r.schema_of("sales").unwrap();
        let scan = Plan::scan("sales", schema);
        let plan = scan
            .clone()
            .join(scan, vec![("k", "k")])
            .aggregate(vec!["k"], vec![bda_core::AggExpr::count_star("n")]);

        let op_profile = |wall_ns: u64| bda_obs::profile::QueryProfile {
            trace_id: 2,
            tenant: String::new(),
            wall_ns,
            slow: false,
            ops: vec![bda_obs::profile::OpProfile {
                class: "join".to_string(),
                count: 1,
                rows: 2,
                bytes: 0,
                wall_ns,
            }],
            sites: vec![],
        };

        // Measured cheap: 2 rows at ~10ns/row is far below the
        // Exchange/Merge overhead, so the calibrated planner keeps the
        // fragment sequential where the static one would mark it.
        let cheap = bda_obs::profile::CostBook::new(1);
        cheap.observe(&op_profile(20));
        let gated = Planner::new(&r)
            .with_workers(4)
            .with_costs(Some(cheap))
            .place(&plan)
            .unwrap();
        assert_eq!(marker_counts(&gated.root().plan), (0, 0), "not worth it");

        // Measured expensive: the markers come back.
        let heavy = bda_obs::profile::CostBook::new(1);
        heavy.observe(&op_profile(1_000_000_000));
        let marked = Planner::new(&r)
            .with_workers(4)
            .with_costs(Some(heavy))
            .place(&plan)
            .unwrap();
        assert_eq!(marker_counts(&marked.root().plan), (3, 2));
    }

    /// Count Exchange and Merge markers in a plan.
    fn marker_counts(plan: &Plan) -> (usize, usize) {
        let ops = plan.op_kinds();
        (
            ops.iter().filter(|k| **k == OpKind::Exchange).count(),
            ops.iter().filter(|k| **k == OpKind::Merge).count(),
        )
    }

    #[test]
    fn parallel_planner_adds_markers_for_capable_sites() {
        let r = registry();
        let schema = r.schema_of("sales").unwrap();
        let scan = Plan::scan("sales", schema);
        let plan = scan
            .clone()
            .join(scan, vec![("k", "k")])
            .aggregate(vec!["k"], vec![bda_core::AggExpr::count_star("n")]);

        let seq = Planner::new(&r).place(&plan).unwrap();
        assert_eq!(
            marker_counts(&seq.root().plan),
            (0, 0),
            "workers=1: no markers"
        );

        let par = Planner::new(&r).with_workers(4).place(&plan).unwrap();
        let (ex, mg) = marker_counts(&par.root().plan);
        assert_eq!(mg, 2, "join and grouped aggregate each merged");
        assert_eq!(ex, 3, "two join inputs + one aggregate input exchanged");
        // Markers carry the worker count as the partition count.
        let mut seen_parts = Vec::new();
        fn walk(p: &Plan, out: &mut Vec<usize>) {
            if let Plan::Exchange { parts, .. } = p {
                out.push(*parts);
            }
            for c in p.children() {
                walk(c, out);
            }
        }
        walk(&par.root().plan, &mut seen_parts);
        assert!(seen_parts.iter().all(|p| *p == 4), "{seen_parts:?}");
    }

    #[test]
    fn stats_cap_hash_partitions_at_key_cardinality() {
        let r = registry();
        let schema = r.schema_of("sales").unwrap();
        let scan = Plan::scan("sales", schema);
        // `k` holds two distinct values, so four-way hash partitioning
        // would leave half the partitions empty.
        let plan = scan
            .clone()
            .join(scan, vec![("k", "k")])
            .aggregate(vec!["k"], vec![bda_core::AggExpr::count_star("n")]);
        fn exchange_parts(p: &Plan, out: &mut Vec<usize>) {
            if let Plan::Exchange { parts, .. } = p {
                out.push(*parts);
            }
            for c in p.children() {
                exchange_parts(c, out);
            }
        }
        let plain = Planner::new(&r).with_workers(4).place(&plan).unwrap();
        let mut parts = Vec::new();
        exchange_parts(&plain.root().plan, &mut parts);
        assert!(parts.iter().all(|p| *p == 4), "{parts:?}");

        let capped = Planner::new(&r)
            .with_workers(4)
            .with_stats(true)
            .place(&plan)
            .unwrap();
        parts.clear();
        exchange_parts(&capped.root().plan, &mut parts);
        assert_eq!(parts.len(), 3, "two join inputs + one aggregate input");
        assert!(parts.iter().all(|p| *p == 2), "NDV caps parts: {parts:?}");
    }

    #[test]
    fn parallel_planner_does_not_double_wrap() {
        let r = registry();
        let schema = r.schema_of("sales").unwrap();
        let scan = Plan::scan("sales", schema);
        let plan = scan.clone().join(scan, vec![("k", "k")]);
        let once = Planner::new(&r).with_workers(3).place(&plan).unwrap();
        // Re-parallelizing an already-marked plan is a no-op (this is what
        // happens when an iterating body is re-placed every round).
        let again = parallelize_fragment(&once.root().plan, 3);
        assert_eq!(
            marker_counts(&again),
            marker_counts(&once.root().plan),
            "idempotent"
        );
    }

    #[test]
    fn parallel_planner_skips_sites_without_markers() {
        // A provider that runs relational ops but does not advertise
        // Exchange/Merge keeps its fragments sequential even under a
        // parallel planner.
        struct Sequential(RelationalEngine);
        impl Provider for Sequential {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn capabilities(&self) -> bda_core::CapabilitySet {
                let caps = self.0.capabilities();
                let kept: Vec<OpKind> = OpKind::ALL
                    .iter()
                    .copied()
                    .filter(|k| caps.supports(*k) && *k != OpKind::Exchange && *k != OpKind::Merge)
                    .collect();
                bda_core::CapabilitySet::from_ops(&kept)
            }
            fn catalog(&self) -> Vec<(String, bda_storage::Schema)> {
                self.0.catalog()
            }
            fn execute(&self, plan: &Plan) -> std::result::Result<DataSet, CoreError> {
                self.0.execute(plan)
            }
            fn store(&self, name: &str, data: DataSet) -> std::result::Result<(), CoreError> {
                self.0.store(name, data)
            }
            fn remove(&self, name: &str) {
                self.0.remove(name)
            }
        }
        let rel = RelationalEngine::new("seq");
        rel.store(
            "sales",
            DataSet::from_columns(vec![
                ("k", Column::from(vec![1i64, 2])),
                ("v", Column::from(vec![1.0f64, 2.0])),
            ])
            .unwrap(),
        )
        .unwrap();
        let mut r = Registry::new();
        r.register(Arc::new(Sequential(rel)));
        let schema = r.schema_of("sales").unwrap();
        let scan = Plan::scan("sales", schema);
        let plan = scan.clone().join(scan, vec![("k", "k")]);
        let placement = Planner::new(&r).with_workers(4).place(&plan).unwrap();
        assert_eq!(placement.root().site, "seq");
        assert_eq!(marker_counts(&placement.root().plan), (0, 0));
    }

    #[test]
    fn missing_dataset_is_an_error() {
        let r = registry();
        let plan = Plan::scan(
            "nope",
            bda_storage::Schema::new(vec![bda_storage::Field::value(
                "x",
                bda_storage::DataType::Int64,
            )])
            .unwrap(),
        );
        // A scan with no location has no candidates and Scan has
        // supporters, but its children (none) — scanning proceeds to cut
        // with zero candidates at the leaf...
        let res = Planner::new(&r).place(&plan);
        assert!(res.is_err(), "{res:?}");
    }
}
