//! The simulated network and the execution metrics the experiments report.
//!
//! All transfers serialize through the real wire codec, so `bytes` fields
//! are actual message sizes, not estimates. Time is **simulated**: a
//! virtual clock charged `latency + bytes / bandwidth` per message, which
//! makes latency sweeps deterministic and platform-independent.

use std::fmt;

/// Network parameters of the simulated fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Per-message latency in (simulated) seconds.
    pub latency_s: f64,
    /// Link bandwidth in bytes per (simulated) second.
    pub bandwidth_bytes_per_s: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        // A 0.5 ms datacenter RTT-ish latency and ~1 GB/s links.
        NetConfig {
            latency_s: 5e-4,
            bandwidth_bytes_per_s: 1e9,
        }
    }
}

impl NetConfig {
    /// Simulated wall time to move one `bytes`-sized message.
    pub fn message_time(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }
}

/// One recorded transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferRecord {
    /// Sending site ("app" for the application tier).
    pub from: String,
    /// Receiving site.
    pub to: String,
    /// Payload size in (wire-encoded) bytes.
    pub bytes: usize,
    /// True when this hop passed through the application tier.
    pub via_app: bool,
}

/// Aggregated metrics for one federated execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Every transfer, in order.
    pub transfers: Vec<TransferRecord>,
    /// Total messages exchanged (transfers + plan shipments).
    pub messages: usize,
    /// Bytes of plan trees shipped to providers.
    pub plan_bytes: usize,
    /// Simulated seconds spent on the network.
    pub sim_network_s: f64,
    /// Number of plan fragments executed.
    pub fragments: usize,
    /// Number of iterations driven by the client/app tier (0 when
    /// iteration ran server-side).
    pub client_driven_iterations: usize,
    /// Actual bytes observed on real transport connections (framed TCP
    /// traffic of remote providers, including direct server-to-server
    /// pushes). Zero when every provider is in-process; the simulated
    /// model above is charged either way.
    ///
    /// **Invariant: each wire byte is counted exactly once.** The
    /// executor charges this field from *deltas* of each provider's
    /// cumulative `Provider::wire_bytes()` counter taken around the
    /// specific call it issued — never from the absolute counter — so a
    /// byte can only ever land in the one [`Metrics`] that triggered it.
    /// [`Metrics::absorb`] sums child executions (nested app-driven
    /// iterations) into the parent; because the children charged deltas
    /// disjoint from the parent's, the sum stays double-count-free.
    pub real_wire_bytes: u64,
    /// Fragment execution attempts repeated after a transient failure.
    pub retries: usize,
    /// Fragments re-placed on a different provider after their assigned
    /// provider failed permanently.
    pub failovers: usize,
    /// Transfers that fell down the degradation ladder (a direct
    /// server-to-server push degraded to a store-based transfer, or a
    /// direct transfer degraded to an app-routed one).
    pub degraded_transfers: usize,
    /// Circuit breakers that tripped open during this execution.
    pub breaker_trips: usize,
}

impl Metrics {
    /// Total data bytes moved between sites (all hops).
    pub fn data_bytes(&self) -> usize {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// Data bytes that traversed the application tier.
    pub fn app_tier_bytes(&self) -> usize {
        self.transfers
            .iter()
            .filter(|t| t.via_app)
            .map(|t| t.bytes)
            .sum()
    }

    /// Record a transfer and charge the virtual clock.
    pub fn record_transfer(
        &mut self,
        net: &NetConfig,
        from: &str,
        to: &str,
        bytes: usize,
        via_app: bool,
    ) {
        // A hop through the app tier is two messages (server→app, app→server).
        let hops = if via_app { 2 } else { 1 };
        self.messages += hops;
        self.sim_network_s += hops as f64 * net.message_time(bytes);
        self.transfers.push(TransferRecord {
            from: from.to_string(),
            to: to.to_string(),
            bytes,
            via_app,
        });
    }

    /// Record shipping a plan tree to a provider.
    pub fn record_plan_shipment(&mut self, net: &NetConfig, bytes: usize) {
        self.messages += 1;
        self.plan_bytes += bytes;
        self.sim_network_s += net.message_time(bytes);
    }

    /// Merge another metrics record into this one.
    pub fn absorb(&mut self, other: Metrics) {
        self.transfers.extend(other.transfers);
        self.messages += other.messages;
        self.plan_bytes += other.plan_bytes;
        self.sim_network_s += other.sim_network_s;
        self.fragments += other.fragments;
        self.client_driven_iterations += other.client_driven_iterations;
        self.real_wire_bytes += other.real_wire_bytes;
        self.retries += other.retries;
        self.failovers += other.failovers;
        self.degraded_transfers += other.degraded_transfers;
        self.breaker_trips += other.breaker_trips;
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fragments: {}, messages: {}, plan bytes: {}",
            self.fragments, self.messages, self.plan_bytes
        )?;
        writeln!(
            f,
            "data bytes: {} (through app tier: {})",
            self.data_bytes(),
            self.app_tier_bytes()
        )?;
        writeln!(f, "simulated network time: {:.6}s", self.sim_network_s)?;
        writeln!(f, "real wire bytes: {}", self.real_wire_bytes)?;
        write!(
            f,
            "recovery: {} retries, {} failovers, {} degraded transfers, {} breaker trips",
            self.retries, self.failovers, self.degraded_transfers, self.breaker_trips
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_model() {
        let net = NetConfig {
            latency_s: 0.001,
            bandwidth_bytes_per_s: 1000.0,
        };
        assert!((net.message_time(500) - 0.501).abs() < 1e-12);
    }

    #[test]
    fn app_routed_costs_double() {
        let net = NetConfig {
            latency_s: 0.001,
            bandwidth_bytes_per_s: 1e6,
        };
        let mut direct = Metrics::default();
        direct.record_transfer(&net, "a", "b", 1000, false);
        let mut routed = Metrics::default();
        routed.record_transfer(&net, "a", "b", 1000, true);
        assert_eq!(direct.messages, 1);
        assert_eq!(routed.messages, 2);
        assert!(routed.sim_network_s > direct.sim_network_s * 1.99);
        assert_eq!(direct.app_tier_bytes(), 0);
        assert_eq!(routed.app_tier_bytes(), 1000);
        assert_eq!(direct.data_bytes(), routed.data_bytes());
    }

    #[test]
    fn absorb_sums_wire_bytes_from_disjoint_deltas() {
        // The executor charges `real_wire_bytes` from per-call counter
        // deltas, so nested executions hold disjoint byte ranges and
        // absorb() is a plain sum — never a re-count of the same bytes.
        let mut parent = Metrics {
            real_wire_bytes: 100,
            ..Metrics::default()
        };
        let child_a = Metrics {
            real_wire_bytes: 40,
            ..Metrics::default()
        };
        let child_b = Metrics {
            real_wire_bytes: 0, // fully in-process child
            ..Metrics::default()
        };
        parent.absorb(child_a);
        parent.absorb(child_b);
        assert_eq!(parent.real_wire_bytes, 140);
    }

    #[test]
    fn absorb_accumulates() {
        let net = NetConfig::default();
        let mut a = Metrics::default();
        a.record_plan_shipment(&net, 100);
        let mut b = Metrics::default();
        b.record_transfer(&net, "x", "y", 50, false);
        b.fragments = 2;
        a.absorb(b);
        assert_eq!(a.messages, 2);
        assert_eq!(a.plan_bytes, 100);
        assert_eq!(a.data_bytes(), 50);
        assert_eq!(a.fragments, 2);
    }
}
