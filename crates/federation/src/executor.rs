//! The federated executor: runs fragment DAGs across providers, moving
//! intermediates either **directly between servers** (desideratum 4) or
//! through the application tier (the baseline it is measured against).

use bda_core::codec::encode_plan;
use bda_core::convergence::converged;
use bda_core::{CoreError, Plan};
use bda_storage::wire::encode_dataset;
use bda_storage::{DataSet, Row, Value};

use crate::metrics::{Metrics, NetConfig};
use crate::optimize::{optimize, OptimizerConfig};
use crate::planner::{Placement, Planner, APP_SITE, FRAG_PREFIX};
use crate::registry::Registry;

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// How fragment outputs travel between servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferMode {
    /// Server → server, one hop (what the paper advocates).
    Direct,
    /// Server → application tier → server, two hops (the baseline the
    /// paper argues against).
    AppRouted,
    /// Server → server over a real TCP transport: the executing provider
    /// pushes its result straight to the consuming provider's endpoint
    /// (`Provider::execute_push`), so the intermediate bytes never reach
    /// the application tier even physically. Falls back to [`Direct`]
    /// hop-by-hop when a provider has no network endpoint.
    RemoteTcp,
}

/// Execution options.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Transfer mode for inter-server intermediates.
    pub transfer: TransferMode,
    /// Logical optimizer configuration.
    pub optimizer: OptimizerConfig,
    /// Simulated network parameters.
    pub net: NetConfig,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            transfer: TransferMode::Direct,
            optimizer: OptimizerConfig::default(),
            net: NetConfig::default(),
        }
    }
}

/// Optimize, place and execute a plan across the registry's providers.
pub fn run_plan(
    registry: &Registry,
    plan: &Plan,
    opts: &ExecOptions,
) -> Result<(DataSet, Metrics)> {
    let optimized = optimize(plan, opts.optimizer);
    let placement = Planner::new(registry).place(&optimized)?;
    execute_placement(registry, &placement, opts)
}

/// Execute an already-fragmented plan.
pub fn execute_placement(
    registry: &Registry,
    placement: &Placement,
    opts: &ExecOptions,
) -> Result<(DataSet, Metrics)> {
    let mut metrics = Metrics::default();
    let mut staged: Vec<(String, String)> = Vec::new(); // (site, name) cleanup list

    let outcome = (|| -> Result<DataSet> {
        let last = placement.fragments.len() - 1;
        for (pos, frag) in placement.fragments.iter().enumerate() {
            metrics.fragments += 1;
            if frag.site != APP_SITE && pos != last && opts.transfer == TransferMode::RemoteTcp {
                // Try a real direct push: the executing server sends its
                // result straight to the consuming server's endpoint.
                let provider = registry.provider(&frag.site)?;
                let dest = registry.provider(&frag.dest_site)?;
                if let Some(dest_ep) = dest.endpoint() {
                    let name = format!("{FRAG_PREFIX}{}", frag.id);
                    let plan_bytes = encode_plan(&frag.plan);
                    metrics.record_plan_shipment(&opts.net, plan_bytes.len());
                    let before = wire_total(provider.as_ref());
                    if let Some(pushed) = provider.execute_push(&frag.plan, &dest_ep, &name) {
                        let pushed = pushed?;
                        // Client-side traffic (request + ack) plus the
                        // server-to-server payload are all real bytes.
                        metrics.real_wire_bytes +=
                            pushed + (wire_total(provider.as_ref()) - before);
                        metrics.record_transfer(
                            &opts.net,
                            &frag.site,
                            &frag.dest_site,
                            pushed as usize,
                            false,
                        );
                        staged.push((frag.dest_site.clone(), name));
                        continue;
                    }
                    // Provider has no transport: un-count the shipment we
                    // charged optimistically and fall through below.
                    metrics.messages -= 1;
                    metrics.plan_bytes -= plan_bytes.len();
                    metrics.sim_network_s -= opts.net.message_time(plan_bytes.len());
                }
            }

            let out = if frag.site == APP_SITE {
                // App-driven control iteration (see planner docs).
                run_app_iterate(registry, &frag.plan, opts, &mut metrics)?
            } else {
                let provider = registry.provider(&frag.site)?;
                // The plan ships to the provider as one expression tree.
                let plan_bytes = encode_plan(&frag.plan);
                metrics.record_plan_shipment(&opts.net, plan_bytes.len());
                let before = wire_total(provider.as_ref());
                let out = provider.execute(&frag.plan)?;
                metrics.real_wire_bytes += wire_total(provider.as_ref()) - before;
                out
            };

            if pos == last {
                // Root fragment: result returns to the application.
                let bytes = encode_dataset(&out).len();
                metrics.record_transfer(&opts.net, &frag.site, "app", bytes, false);
                return Ok(out);
            }
            // Stage the output at the consuming site.
            let name = format!("{FRAG_PREFIX}{}", frag.id);
            let dest = registry.provider(&frag.dest_site)?;
            let bytes = encode_dataset(&out).len();
            let via_app = opts.transfer == TransferMode::AppRouted;
            metrics.record_transfer(&opts.net, &frag.site, &frag.dest_site, bytes, via_app);
            let before = wire_total(dest.as_ref());
            dest.store(&name, out)?;
            metrics.real_wire_bytes += wire_total(dest.as_ref()) - before;
            staged.push((frag.dest_site.clone(), name));
        }
        unreachable!("placement always has a root fragment")
    })();

    // Clean up staged intermediates regardless of success.
    for (site, name) in staged {
        if let Ok(p) = registry.provider(&site) {
            p.remove(&name);
        }
    }
    outcome.map(|ds| (ds, metrics))
}

/// Total real transport traffic of a provider (sent + received).
fn wire_total(p: &dyn bda_core::Provider) -> u64 {
    let (sent, received) = p.wire_bytes();
    sent + received
}

/// Client/app-driven iteration: the fallback when no provider can host an
/// `Iterate` node. Each iteration re-enters the federation with the loop
/// state inlined as a `Values` literal — so the state crosses the wire
/// (inside the shipped plan) every round, which is precisely the cost the
/// paper's "control iteration" extension avoids.
fn run_app_iterate(
    registry: &Registry,
    plan: &Plan,
    opts: &ExecOptions,
    metrics: &mut Metrics,
) -> Result<DataSet> {
    let Plan::Iterate {
        init,
        body,
        max_iters,
        epsilon,
    } = plan
    else {
        return Err(CoreError::Plan(format!(
            "app-site fragment must be an iterate, got {}",
            plan.op_kind().name()
        )));
    };
    let (mut cur, m) = run_plan(registry, init, opts)?;
    metrics.absorb(m);
    for _ in 0..*max_iters {
        let state_rows: Vec<Row> = cur.rows()?;
        let body_inlined = substitute_state(body, &cur, &state_rows);
        let (next, m) = run_plan(registry, &body_inlined, opts)?;
        metrics.absorb(m);
        metrics.client_driven_iterations += 1;
        let done = converged(&cur, &next, *epsilon)?;
        cur = next;
        if done {
            break;
        }
    }
    Ok(cur)
}

/// Replace every `IterState` leaf by a `Values` literal of the current
/// state.
fn substitute_state(body: &Plan, state: &DataSet, rows: &[Row]) -> Plan {
    body.transform_up(&|node| match node {
        Plan::IterState { .. } => Plan::Values {
            schema: state.schema().clone(),
            rows: rows.to_vec(),
        },
        other => other,
    })
}

/// Convenience for tests: the total float of a single-cell result.
pub fn scalar_of(ds: &DataSet) -> Result<Value> {
    let rows = ds.rows()?;
    if rows.len() != 1 || rows[0].len() != 1 {
        return Err(CoreError::Plan(format!(
            "expected a scalar result, got {} rows x {} cols",
            rows.len(),
            rows.first().map(|r| r.len()).unwrap_or(0)
        )));
    }
    Ok(rows[0].get(0).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::reference::evaluate;
    use bda_core::{col, lit, AggExpr, AggFunc, Provider};
    use bda_linalg::LinAlgEngine;
    use bda_relational::RelationalEngine;
    use bda_storage::dataset::{dataset_matrix, matrix_dataset};
    use bda_storage::Column;
    use std::collections::HashMap;
    use std::sync::Arc;

    fn registry() -> Registry {
        let rel = RelationalEngine::new("rel");
        rel.store(
            "sales",
            DataSet::from_columns(vec![
                ("k", Column::from(vec![1i64, 2, 3, 4])),
                ("v", Column::from(vec![1.0f64, 2.0, 3.0, 4.0])),
            ])
            .unwrap(),
        )
        .unwrap();
        rel.store(
            "a_rows",
            matrix_dataset(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap(),
        )
        .unwrap();
        let la = LinAlgEngine::new("la");
        la.store(
            "b",
            matrix_dataset(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap(),
        )
        .unwrap();
        let mut r = Registry::new();
        r.register(Arc::new(rel));
        r.register(Arc::new(la));
        r
    }

    #[test]
    fn single_site_query() {
        let r = registry();
        let plan = Plan::scan("sales", r.schema_of("sales").unwrap())
            .select(col("v").gt(lit(1.5)))
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, col("v"), "s")]);
        let (out, m) = run_plan(&r, &plan, &ExecOptions::default()).unwrap();
        assert_eq!(scalar_of(&out).unwrap(), Value::Float(9.0));
        assert_eq!(m.fragments, 1);
        assert_eq!(m.app_tier_bytes(), 0);
    }

    #[test]
    fn cross_engine_matmul_direct_vs_routed() {
        let r = registry();
        let plan = Plan::scan("a_rows", r.schema_of("a_rows").unwrap()).matmul(Plan::scan(
            "b",
            r.provider("la").unwrap().schema_of("b").unwrap(),
        ));
        let direct = run_plan(&r, &plan, &ExecOptions::default()).unwrap();
        let routed = run_plan(
            &r,
            &plan,
            &ExecOptions {
                transfer: TransferMode::AppRouted,
                ..Default::default()
            },
        )
        .unwrap();
        // Same answer either way.
        let (_, _, d1) = dataset_matrix(&direct.0).unwrap();
        let (_, _, d2) = dataset_matrix(&routed.0).unwrap();
        assert_eq!(d1, vec![58., 64., 139., 154.]);
        assert_eq!(d1, d2);
        // Direct: zero bytes through the app tier; routed: all
        // intermediate bytes through it; both move the same data total.
        assert_eq!(direct.1.app_tier_bytes(), 0);
        assert!(routed.1.app_tier_bytes() > 0);
        assert_eq!(direct.1.data_bytes(), routed.1.data_bytes());
        assert!(routed.1.sim_network_s > direct.1.sim_network_s);
        // Intermediates are cleaned up afterwards.
        assert!(r
            .provider("la")
            .unwrap()
            .catalog()
            .iter()
            .all(|(n, _)| !n.starts_with(FRAG_PREFIX)));
    }

    #[test]
    fn federated_result_matches_reference() {
        let r = registry();
        let plan = Plan::scan("a_rows", r.schema_of("a_rows").unwrap()).matmul(Plan::scan(
            "b",
            r.provider("la").unwrap().schema_of("b").unwrap(),
        ));
        let (out, _) = run_plan(&r, &plan, &ExecOptions::default()).unwrap();
        // Oracle over a merged source.
        let mut src = HashMap::new();
        src.insert(
            "a_rows".to_string(),
            matrix_dataset(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap(),
        );
        src.insert(
            "b".to_string(),
            matrix_dataset(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap(),
        );
        let oracle = evaluate(&plan, &src).unwrap();
        // linalg result is dense; compare after normalizing layout.
        assert_eq!(out.sorted_rows().unwrap(), oracle.sorted_rows().unwrap());
    }

    #[test]
    fn server_side_iteration_stays_on_server() {
        let r = registry();
        // halve `v` until it converges; relational engine hosts Iterate.
        let schema = r.schema_of("sales").unwrap();
        let plan = Plan::Iterate {
            init: Plan::scan("sales", schema.clone()).boxed(),
            body: Plan::IterState { schema }
                .project(vec![("k", col("k")), ("v", col("v").mul(lit(0.5)))])
                .boxed(),
            max_iters: 50,
            epsilon: Some(1e-6),
        };
        let (out, m) = run_plan(&r, &plan, &ExecOptions::default()).unwrap();
        assert_eq!(m.client_driven_iterations, 0, "loop must run server-side");
        assert_eq!(m.fragments, 1);
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn app_driven_iteration_when_no_server_supports_it() {
        // Registry with linalg only: Iterate is driven by the app tier.
        let la = LinAlgEngine::new("la");
        la.store("m", matrix_dataset(2, 2, vec![0.5, 0., 0., 0.5]).unwrap())
            .unwrap();
        la.store("x", matrix_dataset(2, 2, vec![1., 0., 0., 1.]).unwrap())
            .unwrap();
        let mut r = Registry::new();
        r.register(Arc::new(la));
        let m_schema = r.provider("la").unwrap().schema_of("m").unwrap();
        let x_schema = r.provider("la").unwrap().schema_of("x").unwrap();
        let plan = Plan::Iterate {
            init: Plan::scan("x", x_schema.clone()).boxed(),
            body: Plan::scan("m", m_schema)
                .matmul(Plan::IterState { schema: x_schema })
                .boxed(),
            max_iters: 4,
            epsilon: None,
        };
        let (out, m) = run_plan(&r, &plan, &ExecOptions::default()).unwrap();
        assert_eq!(m.client_driven_iterations, 4);
        let (_, _, data) = dataset_matrix(&out).unwrap();
        // (0.5 I)^4 = 0.0625 I.
        assert!((data[0] - 0.0625).abs() < 1e-12, "{data:?}");
        assert!((data[3] - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn plan_shipping_counts_bytes() {
        let r = registry();
        let plan = Plan::scan("sales", r.schema_of("sales").unwrap()).limit(1);
        let (_, m) = run_plan(&r, &plan, &ExecOptions::default()).unwrap();
        assert!(m.plan_bytes > 0);
        assert!(m.messages >= 2); // plan shipment + result return
    }
}
