//! The federated executor: runs fragment DAGs across providers, moving
//! intermediates either **directly between servers** (desideratum 4) or
//! through the application tier (the baseline it is measured against).
//!
//! Execution is fault tolerant (see DESIGN.md, "The failure model"):
//! transient fragment failures retry with exponential backoff, permanent
//! failures trigger **failover** onto another provider whose capability
//! set covers the fragment (staged inputs are re-shipped), and transfer
//! failures walk a degradation ladder (`RemoteTcp` push → store-based
//! `Direct` → `AppRouted`). Provider health feeds the registry's circuit
//! breakers, which the planner consults on the next placement.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use bda_core::codec::encode_plan;
use bda_core::convergence::report;
use bda_core::{pool, CoreError, Plan};
use bda_obs::progress::ProgressHandle;
use bda_obs::{flight, progress, SpanGuard, TraceContext, Tracer};
use bda_storage::wire::encode_dataset;
use bda_storage::{DataSet, Row, Value};

use crate::metrics::{Metrics, NetConfig};
use crate::optimize::{optimize_with_stats, OptimizerConfig};
use crate::planner::{Fragment, Placement, Planner, APP_SITE, FRAG_PREFIX};
use crate::registry::Registry;

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// How fragment outputs travel between servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferMode {
    /// Server → server, one hop (what the paper advocates).
    Direct,
    /// Server → application tier → server, two hops (the baseline the
    /// paper argues against).
    AppRouted,
    /// Server → server over a real TCP transport: the executing provider
    /// pushes its result straight to the consuming provider's endpoint
    /// (`Provider::execute_push`), so the intermediate bytes never reach
    /// the application tier even physically. Falls back to [`Direct`]
    /// hop-by-hop when a provider has no network endpoint.
    RemoteTcp,
}

/// How the executor reacts to provider failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Master switch; `false` reproduces the pre-fault-tolerance
    /// behaviour (any failure aborts the plan).
    pub enabled: bool,
    /// Execution attempts per provider (first try included) for
    /// *transient* failures. Permanent failures never retry.
    pub max_attempts: u32,
    /// Delay before the second attempt; doubles each retry.
    pub backoff: Duration,
    /// On permanent failure, re-place the fragment on another provider
    /// whose capabilities cover it (re-shipping staged inputs).
    pub failover: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            enabled: true,
            max_attempts: 3,
            backoff: Duration::from_millis(2),
            failover: true,
        }
    }
}

impl RecoveryPolicy {
    /// No retries, no failover: every failure aborts the plan.
    pub fn disabled() -> RecoveryPolicy {
        RecoveryPolicy {
            enabled: false,
            max_attempts: 1,
            backoff: Duration::ZERO,
            failover: false,
        }
    }

    fn attempts(&self) -> u32 {
        if self.enabled {
            self.max_attempts.max(1)
        } else {
            1
        }
    }
}

/// Execution options.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Transfer mode for inter-server intermediates.
    pub transfer: TransferMode,
    /// Logical optimizer configuration.
    pub optimizer: OptimizerConfig,
    /// Simulated network parameters.
    pub net: NetConfig,
    /// Fault-tolerance policy.
    pub recovery: RecoveryPolicy,
    /// Partition-parallel worker count. With `1` the executor runs its
    /// fragments sequentially and plans carry no `Exchange`/`Merge`
    /// markers; with `n > 1` independent fragments dispatch onto a pool
    /// of `n` threads and capable providers run their hot operators over
    /// `n` partitions. Defaults to the `BDA_WORKERS` environment
    /// variable (falling back to 1).
    pub workers: usize,
    /// Consult the process-global [`bda_obs::profile::CostBook`] of
    /// measured costs during planning (site assignment and
    /// partition-count choices). Off by default — disabled calibration
    /// produces plans byte-identical to the static planner. Defaults to
    /// the `BDA_CALIBRATE` environment variable (`1`/`true`/`on`).
    pub calibrate: bool,
}

/// Environment variable enabling measured-cost calibration by default.
pub const CALIBRATE_ENV: &str = "BDA_CALIBRATE";

fn calibrate_from_env() -> bool {
    matches!(
        std::env::var(CALIBRATE_ENV).ok().as_deref().map(str::trim),
        Some("1") | Some("true") | Some("on")
    )
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            transfer: TransferMode::Direct,
            optimizer: OptimizerConfig::default(),
            net: NetConfig::default(),
            recovery: RecoveryPolicy::default(),
            workers: pool::workers_from_env(),
            calibrate: calibrate_from_env(),
        }
    }
}

/// Optimize, place and execute a plan across the registry's providers.
pub fn run_plan(
    registry: &Registry,
    plan: &Plan,
    opts: &ExecOptions,
) -> Result<(DataSet, Metrics)> {
    run_plan_traced(registry, plan, opts, &Tracer::disabled(), None)
}

/// [`run_plan`], recording spans into `tracer`. `parent` is the span the
/// query hangs under (`None` for a top-level query; app-driven iteration
/// nests its inner queries under the iterating fragment's span).
pub fn run_plan_traced(
    registry: &Registry,
    plan: &Plan,
    opts: &ExecOptions,
    tracer: &Tracer,
    parent: Option<u64>,
) -> Result<(DataSet, Metrics)> {
    let (optimized, fragments_pruned) =
        optimize_with_stats(plan, opts.optimizer, &|name| registry.table_stats(name));
    if fragments_pruned > 0 {
        // A dedicated span (rather than an event on `parent`, which is
        // `None` for top-level queries) so `EXPLAIN ANALYZE`'s pruning
        // section sees statistics-disproved fragments.
        let mut s = tracer.start(parent, || "optimize".into(), "app");
        s.event(|| format!("pruning: {fragments_pruned} fragment(s) eliminated by table stats"));
        s.finish();
    }
    let costs = opts
        .calibrate
        .then(|| bda_obs::profile::global_costs().clone());
    let placement = Planner::new(registry)
        .with_workers(opts.workers)
        .with_costs(costs)
        .with_stats(opts.optimizer.use_stats)
        .place(&optimized)?;
    execute_placement_traced(registry, &placement, opts, tracer, parent)
}

/// Execute an already-fragmented plan.
pub fn execute_placement(
    registry: &Registry,
    placement: &Placement,
    opts: &ExecOptions,
) -> Result<(DataSet, Metrics)> {
    execute_placement_traced(registry, placement, opts, &Tracer::disabled(), None)
}

/// [`execute_placement`], recording spans into `tracer`.
///
/// Span model (see DESIGN.md, "Observability"): one `query` span per
/// placement; under it one `fragment:{id}` span per fragment (site =
/// executing provider, rows = output cardinality) whose events record
/// retries, breaker trips and failovers; one `transfer:{id}` span per
/// staged fragment output whose events record every delivery attempt on
/// the degradation ladder; `reship:{id}` spans for failover re-shipment;
/// and a `transfer:result` span for the root result's return hop.
/// Provider-side spans (per-operator timings, server handling) are
/// absorbed under the owning fragment span.
pub fn execute_placement_traced(
    registry: &Registry,
    placement: &Placement,
    opts: &ExecOptions,
    tracer: &Tracer,
    parent: Option<u64>,
) -> Result<(DataSet, Metrics)> {
    if placement.fragments.is_empty() {
        return Err(CoreError::Plan(
            "empty placement: no fragments to execute".into(),
        ));
    }
    let mut metrics = Metrics::default();
    // (site, name) cleanup list. Fragment outputs the app tier has custody
    // of live in `cache`, keyed by fragment id; failover re-ships a failed
    // fragment's inputs from there. Both are shared with the worker pool
    // when fragments dispatch in parallel.
    let staged: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());
    let cache: Mutex<HashMap<usize, DataSet>> = Mutex::new(HashMap::new());
    let query_span = tracer.start(parent, || "query".into(), "app");
    let query_id = query_span.id();
    // Only the outermost placement on this thread registers on the
    // progress board; app-driven iteration re-enters the executor per
    // round and those inner queries ride the outer query's entry.
    let progress = enter_query(placement, tracer);

    let outcome = if opts.workers <= 1 {
        (|| -> Result<DataSet> {
            let last = placement.fragments.len() - 1;
            progress.set_fragments_total(placement.fragments.len());
            for (pos, frag) in placement.fragments.iter().enumerate() {
                metrics.fragments += 1;
                let frag_started = Instant::now();
                let mut fspan =
                    tracer.start(query_id, || format!("fragment:{}", frag.id), &frag.site);
                // The transfer log accumulates the attempt history of this
                // fragment's output delivery (push and/or store attempts)
                // into one `transfer:{id}` span. Root fragments stage
                // nothing, so they get an inert log.
                let mut tlog = if pos == last {
                    TransferLog::inert()
                } else {
                    TransferLog::start(tracer, fspan.id(), frag)
                };
                if frag.site != APP_SITE
                    && pos != last
                    && opts.transfer == TransferMode::RemoteTcp
                    && try_remote_push(
                        registry,
                        frag,
                        opts,
                        &mut metrics,
                        &staged,
                        tracer,
                        &mut tlog,
                    )?
                {
                    progress.fragment_done(
                        frag.id,
                        &frag.site,
                        frag_started.elapsed().as_secs_f64(),
                    );
                    continue;
                }

                let out = if frag.site == APP_SITE {
                    // App-driven control iteration (see planner docs).
                    run_app_iterate(
                        registry,
                        &frag.plan,
                        opts,
                        &mut metrics,
                        tracer,
                        fspan.id(),
                        &progress,
                    )?
                } else {
                    execute_fragment(
                        registry,
                        placement,
                        frag,
                        opts,
                        &mut metrics,
                        &cache,
                        &staged,
                        tracer,
                        fspan.id(),
                    )?
                };
                fspan.set_rows(out.num_rows());
                progress.fragment_done(frag.id, &frag.site, frag_started.elapsed().as_secs_f64());

                if pos == last {
                    // Root fragment: result returns to the application.
                    let bytes = encode_dataset(&out).len();
                    metrics.record_transfer(&opts.net, &frag.site, "app", bytes, false);
                    let mut rspan = tracer.start(query_id, || "transfer:result".into(), &frag.site);
                    rspan.set_bytes(bytes as u64);
                    rspan.set_rows(out.num_rows());
                    rspan.finish();
                    return Ok(out);
                }
                if opts.recovery.enabled && opts.recovery.failover {
                    cache.lock().unwrap().insert(frag.id, out.clone());
                }
                if let Err(e) = stage_output(
                    registry,
                    frag,
                    out,
                    opts,
                    &mut metrics,
                    &staged,
                    tracer,
                    &mut tlog,
                ) {
                    if !(opts.recovery.enabled && opts.recovery.failover) {
                        return Err(e);
                    }
                    // The consuming site refused the staged input. Leave
                    // delivery to the consumer's failover path, which re-ships
                    // inputs from the app-tier cache onto whichever provider
                    // ends up running the fragment.
                }
            }
            unreachable!("placement always has a root fragment")
        })()
    } else {
        run_fragments_parallel(
            registry,
            placement,
            opts,
            &mut metrics,
            &cache,
            &staged,
            tracer,
            query_id,
            &progress,
        )
    };

    // Clean up staged intermediates regardless of success.
    for (site, name) in staged.into_inner().unwrap() {
        if let Ok(p) = registry.provider(&site) {
            p.remove(&name);
        }
    }
    leave_query(progress, tracer, outcome).map(|ds| (ds, metrics))
}

/// Dispatch a placement's fragments onto a pool of `opts.workers` threads,
/// honouring the dependency edges recorded in [`Fragment::inputs`]. Root
/// and app-site fragments run inline on the coordinator thread — the root
/// so its result transfer stays last, app-driven iteration because it
/// re-enters the executor and must keep riding this thread's progress
/// entry. Every fragment body (including inline ones) runs under
/// [`pool::with_workers`], so capable providers execute their
/// `Exchange`/`Merge`-marked operators partition-parallel too.
///
/// Per-fragment [`Metrics`] accumulate into thread-local instances and are
/// absorbed in **placement order** once every fragment settles, so counters
/// and the transfer log are identical run-to-run regardless of completion
/// order. On failure, dispatch stops, in-flight fragments drain, and the
/// error of the earliest-placed failed fragment surfaces — mirroring what
/// the sequential loop would have reported.
#[allow(clippy::too_many_arguments)]
fn run_fragments_parallel(
    registry: &Registry,
    placement: &Placement,
    opts: &ExecOptions,
    metrics: &mut Metrics,
    cache: &Mutex<HashMap<usize, DataSet>>,
    staged: &Mutex<Vec<(String, String)>>,
    tracer: &Tracer,
    query_id: Option<u64>,
    progress: &ProgressHandle,
) -> Result<DataSet> {
    let frags = &placement.fragments;
    let n = frags.len();
    let last = n - 1;
    progress.set_fragments_total(n);
    // Fragment ids are planner counters, not positions; map them back.
    let pos_of: HashMap<usize, usize> = frags.iter().enumerate().map(|(p, f)| (f.id, p)).collect();
    let deps: Vec<Vec<usize>> = frags
        .iter()
        .map(|f| {
            f.inputs
                .iter()
                .filter_map(|id| pos_of.get(id).copied())
                .collect()
        })
        .collect();

    let mut done = vec![false; n];
    let mut dispatched = vec![false; n];
    let mut slots: Vec<Option<Metrics>> = (0..n).map(|_| None).collect();
    let mut failures: Vec<(usize, CoreError)> = Vec::new();
    let mut root_out: Option<DataSet> = None;
    let mut in_flight = 0usize;

    let threads = opts.workers.min(n.saturating_sub(1)).max(1);
    let (job_tx, job_rx) = crossbeam::channel::unbounded::<usize>();
    let job_rx = Mutex::new(job_rx);
    type Completion = (usize, f64, Metrics, Result<Option<DataSet>>);
    let (res_tx, res_rx) = crossbeam::channel::unbounded::<Completion>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let job_rx = &job_rx;
            let res_tx = res_tx.clone();
            scope.spawn(move || loop {
                // The mutex only serializes job pickup; execution runs
                // unlocked and therefore concurrently across workers.
                let job = job_rx.lock().unwrap().recv();
                let Ok(pos) = job else { break };
                let started = Instant::now();
                let (m, result) = pool::with_workers(opts.workers, || {
                    parallel_fragment_body(
                        registry, placement, pos, opts, cache, staged, tracer, query_id, None,
                    )
                });
                if res_tx
                    .send((pos, started.elapsed().as_secs_f64(), m, result))
                    .is_err()
                {
                    break;
                }
            });
        }
        drop(res_tx);

        loop {
            if failures.is_empty() {
                // Launch everything ready, rescanning after each inline
                // completion (an inline fragment may unblock others).
                loop {
                    let mut inline_ran = false;
                    for pos in 0..n {
                        if dispatched[pos] || !deps[pos].iter().all(|d| done[*d]) {
                            continue;
                        }
                        dispatched[pos] = true;
                        if pos == last || frags[pos].site == APP_SITE {
                            let started = Instant::now();
                            let (m, result) = pool::with_workers(opts.workers, || {
                                parallel_fragment_body(
                                    registry,
                                    placement,
                                    pos,
                                    opts,
                                    cache,
                                    staged,
                                    tracer,
                                    query_id,
                                    Some(progress),
                                )
                            });
                            progress.fragment_done(
                                frags[pos].id,
                                &frags[pos].site,
                                started.elapsed().as_secs_f64(),
                            );
                            slots[pos] = Some(m);
                            match result {
                                Ok(out) => {
                                    done[pos] = true;
                                    if pos == last {
                                        root_out = out;
                                    }
                                }
                                Err(e) => failures.push((pos, e)),
                            }
                            inline_ran = true;
                        } else {
                            in_flight += 1;
                            let _ = job_tx.send(pos);
                        }
                    }
                    if !inline_ran || !failures.is_empty() {
                        break;
                    }
                }
            }
            if in_flight == 0 {
                break;
            }
            let Ok((pos, secs, m, result)) = res_rx.recv() else {
                break;
            };
            in_flight -= 1;
            progress.fragment_done(frags[pos].id, &frags[pos].site, secs);
            slots[pos] = Some(m);
            match result {
                Ok(_) => done[pos] = true,
                Err(e) => failures.push((pos, e)),
            }
        }
        drop(job_tx); // closes the job channel; workers exit their loops
    });

    for m in slots.into_iter().flatten() {
        metrics.absorb(m);
    }
    if let Some((_, e)) = failures.into_iter().min_by_key(|(p, _)| *p) {
        return Err(e);
    }
    root_out
        .ok_or_else(|| CoreError::Plan("parallel scheduler finished without a root result".into()))
}

/// The per-fragment body of the parallel scheduler: the exact sequence the
/// sequential loop runs for one fragment (fragment span, transfer log,
/// RemoteTcp push short-circuit, execute/iterate, failover cache, output
/// staging), against a thread-local [`Metrics`]. Returns `Some(result)`
/// only for the root fragment. `progress` is `Some` only on the
/// coordinator thread, where app-driven iteration reports its rounds.
#[allow(clippy::too_many_arguments)]
fn parallel_fragment_body(
    registry: &Registry,
    placement: &Placement,
    pos: usize,
    opts: &ExecOptions,
    cache: &Mutex<HashMap<usize, DataSet>>,
    staged: &Mutex<Vec<(String, String)>>,
    tracer: &Tracer,
    query_id: Option<u64>,
    progress: Option<&ProgressHandle>,
) -> (Metrics, Result<Option<DataSet>>) {
    let frags = &placement.fragments;
    let last = frags.len() - 1;
    let frag = &frags[pos];
    let mut metrics = Metrics::default();
    metrics.fragments += 1;
    let result = (|| -> Result<Option<DataSet>> {
        let mut fspan = tracer.start(query_id, || format!("fragment:{}", frag.id), &frag.site);
        let mut tlog = if pos == last {
            TransferLog::inert()
        } else {
            TransferLog::start(tracer, fspan.id(), frag)
        };
        if frag.site != APP_SITE
            && pos != last
            && opts.transfer == TransferMode::RemoteTcp
            && try_remote_push(
                registry,
                frag,
                opts,
                &mut metrics,
                staged,
                tracer,
                &mut tlog,
            )?
        {
            return Ok(None);
        }
        let out = if frag.site == APP_SITE {
            let inert;
            let handle = match progress {
                Some(p) => p,
                None => {
                    inert = progress::ProgressTracker::noop();
                    &inert
                }
            };
            run_app_iterate(
                registry,
                &frag.plan,
                opts,
                &mut metrics,
                tracer,
                fspan.id(),
                handle,
            )?
        } else {
            execute_fragment(
                registry,
                placement,
                frag,
                opts,
                &mut metrics,
                cache,
                staged,
                tracer,
                fspan.id(),
            )?
        };
        fspan.set_rows(out.num_rows());
        if pos == last {
            let bytes = encode_dataset(&out).len();
            metrics.record_transfer(&opts.net, &frag.site, "app", bytes, false);
            let mut rspan = tracer.start(query_id, || "transfer:result".into(), &frag.site);
            rspan.set_bytes(bytes as u64);
            rspan.set_rows(out.num_rows());
            rspan.finish();
            return Ok(Some(out));
        }
        if opts.recovery.enabled && opts.recovery.failover {
            cache.lock().unwrap().insert(frag.id, out.clone());
        }
        if let Err(e) = stage_output(
            registry,
            frag,
            out,
            opts,
            &mut metrics,
            staged,
            tracer,
            &mut tlog,
        ) {
            if !(opts.recovery.enabled && opts.recovery.failover) {
                return Err(e);
            }
            // Leave delivery to the consumer's failover path (see the
            // sequential loop).
        }
        Ok(None)
    })();
    (metrics, result)
}

thread_local! {
    /// Placement nesting depth on this thread: 0 outside a query, >0
    /// inside (app-driven iteration re-enters the executor per round).
    static QUERY_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Register the outermost placement of this thread on the global
/// progress board; nested placements get an inert handle.
fn enter_query(placement: &Placement, tracer: &Tracer) -> ProgressHandle {
    let depth = QUERY_DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    if depth > 0 {
        return progress::ProgressTracker::noop();
    }
    let root = placement
        .fragments
        .last()
        .expect("placement checked non-empty");
    let label = format!("query:{}", root.plan.op_kind().name());
    flight::global().record("app", || {
        format!(
            "query start: {label} ({} fragments)",
            placement.fragments.len()
        )
    });
    progress::global().start(&label, tracer.trace_id())
}

/// Counterpart of [`enter_query`]: pop the depth, settle the progress
/// entry, and — when the outermost query failed permanently — dump the
/// flight recorder and attach the dump path to the surfaced error.
fn leave_query(
    progress: ProgressHandle,
    tracer: &Tracer,
    outcome: Result<DataSet>,
) -> Result<DataSet> {
    let top_level = progress.is_active();
    QUERY_DEPTH.with(|d| d.set(d.get() - 1));
    match outcome {
        Ok(ds) => {
            progress.finish();
            Ok(ds)
        }
        Err(e) => {
            flight::global().record("app", || format!("query failed permanently: {e}"));
            progress.fail();
            if !top_level {
                return Err(e);
            }
            let tag = dump_tag(tracer);
            match flight::global().dump_for_failure(&tag) {
                Some(path) => Err(attach_note(e, &format!("flight:{}", path.display()))),
                None => Err(e),
            }
        }
    }
}

/// A unique-enough dump-file tag: the trace id when tracing, else a
/// process-wide failure counter.
fn dump_tag(tracer: &Tracer) -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static FAILURES: AtomicU64 = AtomicU64::new(0);
    let n = FAILURES.fetch_add(1, Ordering::Relaxed);
    if tracer.is_enabled() {
        format!("{:016x}", tracer.trace_id())
    } else {
        format!("q{n}")
    }
}

/// Append an operator-facing note (the flight-dump path) to an error
/// without changing its variant or transience. Structured variants that
/// carry no free-form message pass through untouched — the dump file
/// still exists on disk either way.
fn attach_note(e: CoreError, note: &str) -> CoreError {
    match e {
        CoreError::Plan(m) => CoreError::Plan(format!("{m} [{note}]")),
        CoreError::Expr(m) => CoreError::Expr(format!("{m} [{note}]")),
        CoreError::Lower(m) => CoreError::Lower(format!("{m} [{note}]")),
        CoreError::Corrupt(m) => CoreError::Corrupt(format!("{m} [{note}]")),
        CoreError::Net(m) => CoreError::Net(format!("{m} [{note}]")),
        CoreError::Remote { addr, msg } => CoreError::Remote {
            addr,
            msg: format!("{msg} [{note}]"),
        },
        CoreError::Transient(inner) => CoreError::transient(attach_note(*inner, note)),
        other => other,
    }
}

/// The attempt history of one fragment-output transfer, emitted as a
/// single `transfer:{id}` span once delivery succeeds (or, on total
/// failure, when the log drops — the span then ends without a `mode:`
/// event). Inert when tracing is disabled: every method is a null check.
struct TransferLog {
    guard: Option<SpanGuard>,
}

impl TransferLog {
    fn start(tracer: &Tracer, parent: Option<u64>, frag: &Fragment) -> TransferLog {
        TransferLog {
            guard: Some(tracer.start(parent, || format!("transfer:{}", frag.id), &frag.site)),
        }
    }

    /// A log that records nothing (root fragments stage no output).
    fn inert() -> TransferLog {
        TransferLog { guard: None }
    }

    /// The transfer span's id, for parenting retry events onto it.
    fn span_id(&self) -> Option<u64> {
        self.guard.as_ref().and_then(|g| g.id())
    }

    fn event(&mut self, label: impl FnOnce() -> String) {
        if let Some(g) = &mut self.guard {
            g.event(label);
        }
    }

    /// Delivery succeeded on the given ladder rung: stamp the final mode
    /// and payload size and close the span.
    fn delivered(&mut self, mode: &'static str, bytes: usize) {
        if let Some(mut g) = self.guard.take() {
            g.event(|| format!("mode:{mode}"));
            g.set_bytes(bytes as u64);
            g.finish();
        }
    }
}

/// Attempt the real server→server push of a non-root fragment's output
/// (RemoteTcp mode). Returns `Ok(true)` when the output was delivered,
/// `Ok(false)` to fall back to the store-based path — either because the
/// providers have no transport, or because the push failed and the
/// executor degrades the transfer (counted in `degraded_transfers`).
#[allow(clippy::too_many_arguments)]
fn try_remote_push(
    registry: &Registry,
    frag: &Fragment,
    opts: &ExecOptions,
    metrics: &mut Metrics,
    staged: &Mutex<Vec<(String, String)>>,
    tracer: &Tracer,
    tlog: &mut TransferLog,
) -> Result<bool> {
    let provider = registry.provider(&frag.site)?;
    let dest = registry.provider(&frag.dest_site)?;
    let Some(dest_ep) = dest.endpoint() else {
        return Ok(false);
    };
    let name = format!("{FRAG_PREFIX}{}", frag.id);
    let plan_bytes = encode_plan(&frag.plan);
    let attempts = opts.recovery.attempts();
    let mut backoff = opts.recovery.backoff;
    for attempt in 0..attempts {
        if attempt > 0 {
            metrics.retries += 1;
            sleep_backoff(&mut backoff);
        }
        tlog.event(|| "attempt:push".into());
        metrics.record_plan_shipment(&opts.net, plan_bytes.len());
        let before = wire_total(provider.as_ref());
        let pushed = if tracer.is_enabled() {
            let ctx = TraceContext {
                trace_id: tracer.trace_id(),
                parent_span: tlog.span_id().unwrap_or(0),
            };
            let anchor = tracer.now_ns();
            provider
                .execute_push_traced(&frag.plan, &dest_ep, &name, &ctx)
                .map(|r| {
                    r.map(|(bytes, spans)| {
                        tracer.absorb_remote(spans, tlog.span_id(), anchor);
                        bytes
                    })
                })
        } else {
            provider.execute_push(&frag.plan, &dest_ep, &name)
        };
        match pushed {
            None => {
                // Provider has no transport: un-count the shipment we
                // charged optimistically and fall back to store-based.
                metrics.messages -= 1;
                metrics.plan_bytes -= plan_bytes.len();
                metrics.sim_network_s -= opts.net.message_time(plan_bytes.len());
                return Ok(false);
            }
            Some(Ok(pushed)) => {
                // Client-side traffic (request + ack) plus the
                // server-to-server payload are all real bytes.
                metrics.real_wire_bytes += pushed + (wire_total(provider.as_ref()) - before);
                metrics.record_transfer(
                    &opts.net,
                    &frag.site,
                    &frag.dest_site,
                    pushed as usize,
                    false,
                );
                registry.health().record_success(&frag.site);
                staged.lock().unwrap().push((frag.dest_site.clone(), name));
                tlog.delivered("push", pushed as usize);
                return Ok(true);
            }
            Some(Err(e)) => {
                metrics.real_wire_bytes += wire_total(provider.as_ref()) - before;
                tlog.event(|| format!("error:{e}"));
                flight::global().record(&frag.site, || {
                    format!("push fragment:{}@{} failed: {e}", frag.id, frag.site)
                });
                if registry.health().record_failure(&frag.site) {
                    metrics.breaker_trips += 1;
                    tlog.event(|| format!("breaker:trip:{}", frag.site));
                    flight::global().record(&frag.site, || format!("breaker trip: {}", frag.site));
                }
                if opts.recovery.enabled && e.is_transient() && attempt + 1 < attempts {
                    continue;
                }
                if !opts.recovery.enabled {
                    return Err(e);
                }
                // Push is unrecoverable here: degrade to the store-based
                // Direct path (the executor re-runs the fragment below).
                metrics.degraded_transfers += 1;
                tlog.event(|| "degrade:direct".into());
                return Ok(false);
            }
        }
    }
    unreachable!("push loop returns from its last attempt")
}

/// Run one non-app fragment with retry and, when that fails for good,
/// failover onto another capable provider.
#[allow(clippy::too_many_arguments)]
fn execute_fragment(
    registry: &Registry,
    placement: &Placement,
    frag: &Fragment,
    opts: &ExecOptions,
    metrics: &mut Metrics,
    cache: &Mutex<HashMap<usize, DataSet>>,
    staged: &Mutex<Vec<(String, String)>>,
    tracer: &Tracer,
    span: Option<u64>,
) -> Result<DataSet> {
    let primary = match execute_at(
        registry, &frag.site, &frag.plan, opts, metrics, tracer, span,
    ) {
        Ok(out) => return Ok(out),
        Err(e) => e,
    };
    if !(opts.recovery.enabled && opts.recovery.failover) {
        return Err(primary);
    }
    tracer.event(span, || format!("failed:{}:{primary}", frag.site));
    flight::global().record(&frag.site, || {
        format!(
            "fragment:{}@{} failed permanently: {primary}",
            frag.id, frag.site
        )
    });
    for candidate in failover_candidates(registry, frag) {
        if reship_inputs(
            registry, placement, frag, &candidate, opts, metrics, cache, staged, tracer, span,
        )
        .is_err()
        {
            continue;
        }
        if let Ok(out) = execute_at(
            registry, &candidate, &frag.plan, opts, metrics, tracer, span,
        ) {
            metrics.failovers += 1;
            tracer.event(span, || format!("failover:{candidate}"));
            flight::global().record(&candidate, || {
                format!("failover: fragment:{} {}→{candidate}", frag.id, frag.site)
            });
            return Ok(out);
        }
    }
    // No candidate could take over: surface the original failure.
    Err(primary)
}

/// Ship `plan` to the provider at `site` and execute it, retrying
/// transient failures per the recovery policy. Reports outcomes to the
/// registry's health board.
#[allow(clippy::too_many_arguments)]
fn execute_at(
    registry: &Registry,
    site: &str,
    plan: &Plan,
    opts: &ExecOptions,
    metrics: &mut Metrics,
    tracer: &Tracer,
    span: Option<u64>,
) -> Result<DataSet> {
    let provider = registry.provider(site)?;
    let plan_bytes = encode_plan(plan);
    let attempts = opts.recovery.attempts();
    let mut backoff = opts.recovery.backoff;
    let mut last_err = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            metrics.retries += 1;
            tracer.event(span, || {
                format!("retry:execute@{site} attempt {}", attempt + 1)
            });
            sleep_backoff(&mut backoff);
        }
        // The plan ships to the provider as one expression tree, once per
        // attempt — retries are not free.
        metrics.record_plan_shipment(&opts.net, plan_bytes.len());
        let before = wire_total(provider.as_ref());
        // When tracing, the provider call carries the trace context and
        // returns its internal spans (per-operator timings, server-side
        // handling), which land under this fragment's span anchored at
        // the moment the call was issued.
        let result = if tracer.is_enabled() {
            let ctx = TraceContext {
                trace_id: tracer.trace_id(),
                parent_span: span.unwrap_or(0),
            };
            let anchor = tracer.now_ns();
            provider.execute_traced(plan, &ctx).map(|(ds, spans)| {
                tracer.absorb_remote(spans, span, anchor);
                ds
            })
        } else {
            provider.execute(plan)
        };
        metrics.real_wire_bytes += wire_total(provider.as_ref()) - before;
        match result {
            Ok(out) => {
                registry.health().record_success(site);
                return Ok(out);
            }
            Err(e) => {
                flight::global().record(site, || {
                    format!("execute@{site} attempt {} failed: {e}", attempt + 1)
                });
                if registry.health().record_failure(site) {
                    metrics.breaker_trips += 1;
                    tracer.event(span, || format!("breaker:trip:{site}"));
                    flight::global().record(site, || format!("breaker trip: {site}"));
                }
                let transient = e.is_transient();
                last_err = Some(e);
                if !transient {
                    break;
                }
            }
        }
    }
    Err(last_err.expect("at least one attempt ran"))
}

/// Providers able to take over `frag` after its pinned site failed for
/// good: breaker-available, capability-covering, and already holding every
/// base dataset the fragment scans (staged inputs are re-shipped, base
/// data is not).
fn failover_candidates(registry: &Registry, frag: &Fragment) -> Vec<String> {
    let base_scans: Vec<String> = frag
        .plan
        .scanned_datasets()
        .into_iter()
        .filter(|d| !d.starts_with(FRAG_PREFIX))
        .collect();
    registry
        .providers()
        .iter()
        .filter(|p| p.name() != frag.site)
        .filter(|p| registry.health().is_available(p.name()))
        .filter(|p| p.capabilities().supports_plan(&frag.plan))
        .filter(|p| base_scans.iter().all(|d| p.schema_of(d).is_some()))
        .map(|p| p.name().to_string())
        .collect()
}

/// Re-ship a failed-over fragment's staged inputs to its new site. Inputs
/// the app tier never saw (RemoteTcp pushes) are recovered by re-running
/// their producer fragments.
#[allow(clippy::too_many_arguments)]
fn reship_inputs(
    registry: &Registry,
    placement: &Placement,
    frag: &Fragment,
    new_site: &str,
    opts: &ExecOptions,
    metrics: &mut Metrics,
    cache: &Mutex<HashMap<usize, DataSet>>,
    staged: &Mutex<Vec<(String, String)>>,
    tracer: &Tracer,
    span: Option<u64>,
) -> Result<()> {
    let dest = registry.provider(new_site)?;
    for &input in &frag.inputs {
        // Never hold the cache lock across a provider call: on a miss the
        // producer re-runs (possibly slowly) and other fragments must keep
        // making progress.
        let cached = cache.lock().unwrap().get(&input).cloned();
        let data = match cached {
            Some(d) => d,
            None => {
                let producer = placement
                    .fragments
                    .iter()
                    .find(|f| f.id == input)
                    .ok_or_else(|| CoreError::Plan(format!("unknown fragment input {input}")))?;
                let out = execute_at(
                    registry,
                    &producer.site,
                    &producer.plan,
                    opts,
                    metrics,
                    tracer,
                    span,
                )?;
                cache.lock().unwrap().insert(input, out.clone());
                out
            }
        };
        let name = format!("{FRAG_PREFIX}{input}");
        let bytes = encode_dataset(&data).len();
        // The recovery hop goes through the app tier by construction.
        metrics.record_transfer(&opts.net, "app", new_site, bytes, true);
        let mut rspan = tracer.start(span, || format!("reship:{input}"), "app");
        rspan.set_bytes(bytes as u64);
        let before = wire_total(dest.as_ref());
        dest.store(&name, data)?;
        metrics.real_wire_bytes += wire_total(dest.as_ref()) - before;
        rspan.finish();
        staged.lock().unwrap().push((new_site.to_string(), name));
    }
    Ok(())
}

/// Stage a fragment's output at the consuming site, retrying transient
/// store failures; a Direct transfer that keeps failing degrades to the
/// app-routed path (counted in `degraded_transfers`) before giving up.
#[allow(clippy::too_many_arguments)]
fn stage_output(
    registry: &Registry,
    frag: &Fragment,
    out: DataSet,
    opts: &ExecOptions,
    metrics: &mut Metrics,
    staged: &Mutex<Vec<(String, String)>>,
    tracer: &Tracer,
    tlog: &mut TransferLog,
) -> Result<()> {
    let name = format!("{FRAG_PREFIX}{}", frag.id);
    let bytes = encode_dataset(&out).len();
    let via_app = opts.transfer == TransferMode::AppRouted;
    let rung = if via_app { "app-routed" } else { "direct" };
    tlog.event(|| format!("attempt:{rung}"));
    match store_with_retry(
        registry,
        &frag.dest_site,
        &name,
        &out,
        opts,
        metrics,
        tracer,
        tlog.span_id(),
    ) {
        Ok(()) => {
            metrics.record_transfer(&opts.net, &frag.site, &frag.dest_site, bytes, via_app);
            staged.lock().unwrap().push((frag.dest_site.clone(), name));
            tlog.delivered(rung, bytes);
            Ok(())
        }
        Err(e) if !via_app && opts.recovery.enabled => {
            // Degrade Direct → AppRouted: the app tier takes custody of
            // the intermediate and re-delivers it on the two-hop path.
            metrics.degraded_transfers += 1;
            tlog.event(|| format!("error:{e}"));
            tlog.event(|| "degrade:app-routed".into());
            tlog.event(|| "attempt:app-routed".into());
            store_with_retry(
                registry,
                &frag.dest_site,
                &name,
                &out,
                opts,
                metrics,
                tracer,
                tlog.span_id(),
            )
            .map_err(|_| e)?;
            metrics.record_transfer(&opts.net, &frag.site, &frag.dest_site, bytes, true);
            staged.lock().unwrap().push((frag.dest_site.clone(), name));
            tlog.delivered("app-routed", bytes);
            Ok(())
        }
        Err(e) => Err(e),
    }
}

/// `Provider::store` with transient-failure retry and health reporting.
#[allow(clippy::too_many_arguments)]
fn store_with_retry(
    registry: &Registry,
    site: &str,
    name: &str,
    data: &DataSet,
    opts: &ExecOptions,
    metrics: &mut Metrics,
    tracer: &Tracer,
    span: Option<u64>,
) -> Result<()> {
    let provider = registry.provider(site)?;
    let attempts = opts.recovery.attempts();
    let mut backoff = opts.recovery.backoff;
    let mut last_err = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            metrics.retries += 1;
            tracer.event(span, || {
                format!("retry:store@{site} attempt {}", attempt + 1)
            });
            sleep_backoff(&mut backoff);
        }
        let before = wire_total(provider.as_ref());
        let result = provider.store(name, data.clone());
        metrics.real_wire_bytes += wire_total(provider.as_ref()) - before;
        match result {
            Ok(()) => {
                registry.health().record_success(site);
                return Ok(());
            }
            Err(e) => {
                flight::global().record(site, || {
                    format!("store {name}@{site} attempt {} failed: {e}", attempt + 1)
                });
                if registry.health().record_failure(site) {
                    metrics.breaker_trips += 1;
                    tracer.event(span, || format!("breaker:trip:{site}"));
                    flight::global().record(site, || format!("breaker trip: {site}"));
                }
                let transient = e.is_transient();
                last_err = Some(e);
                if !transient {
                    break;
                }
            }
        }
    }
    Err(last_err.expect("at least one attempt ran"))
}

/// Sleep the current backoff, then double it for the next retry.
fn sleep_backoff(backoff: &mut Duration) {
    if !backoff.is_zero() {
        std::thread::sleep(*backoff);
        *backoff = backoff.saturating_mul(2);
    }
}

/// Total real transport traffic of a provider (sent + received).
fn wire_total(p: &dyn bda_core::Provider) -> u64 {
    let (sent, received) = p.wire_bytes();
    sent + received
}

/// Client/app-driven iteration: the fallback when no provider can host an
/// `Iterate` node. Each iteration re-enters the federation with the loop
/// state inlined as a `Values` literal — so the state crosses the wire
/// (inside the shipped plan) every round, which is precisely the cost the
/// paper's "control iteration" extension avoids.
fn run_app_iterate(
    registry: &Registry,
    plan: &Plan,
    opts: &ExecOptions,
    metrics: &mut Metrics,
    tracer: &Tracer,
    span: Option<u64>,
    progress: &ProgressHandle,
) -> Result<DataSet> {
    let Plan::Iterate {
        init,
        body,
        max_iters,
        epsilon,
    } = plan
    else {
        return Err(CoreError::Plan(format!(
            "app-site fragment must be an iterate, got {}",
            plan.op_kind().name()
        )));
    };
    let (mut cur, m) = run_plan_traced(registry, init, opts, tracer, span)?;
    metrics.absorb(m);
    for round in 0..*max_iters {
        tracer.event(span, || format!("iteration:{}", round + 1));
        // One span per iteration: the round's fragments nest under it and
        // its events carry the convergence numbers the `/progress`
        // endpoint and `EXPLAIN ANALYZE`'s convergence table render.
        let mut ispan = tracer.start(span, || format!("iteration:{}", round + 1), APP_SITE);
        let state_rows: Vec<Row> = cur.rows()?;
        let body_inlined = substitute_state(body, &cur, &state_rows);
        let (next, m) = run_plan_traced(registry, &body_inlined, opts, tracer, ispan.id())?;
        metrics.absorb(m);
        metrics.client_driven_iterations += 1;
        let rep = report(&cur, &next, *epsilon)?;
        ispan.set_rows(next.num_rows());
        ispan.event(|| match rep.delta {
            Some(d) => format!("delta:{d:.9}"),
            None => "delta:undefined".into(),
        });
        ispan.event(|| format!("rows_changed:{}", rep.rows_changed));
        ispan.finish();
        progress.iteration(round + 1, *max_iters, rep.delta, Some(rep.rows_changed));
        flight::global().record(APP_SITE, || {
            format!(
                "iteration:{} delta:{:?} rows_changed:{}",
                round + 1,
                rep.delta,
                rep.rows_changed
            )
        });
        cur = next;
        if rep.converged {
            break;
        }
    }
    Ok(cur)
}

/// Replace every `IterState` leaf by a `Values` literal of the current
/// state.
fn substitute_state(body: &Plan, state: &DataSet, rows: &[Row]) -> Plan {
    body.transform_up(&|node| match node {
        Plan::IterState { .. } => Plan::Values {
            schema: state.schema().clone(),
            rows: rows.to_vec(),
        },
        other => other,
    })
}

/// Convenience for tests: the total float of a single-cell result.
pub fn scalar_of(ds: &DataSet) -> Result<Value> {
    let rows = ds.rows()?;
    if rows.len() != 1 || rows[0].len() != 1 {
        return Err(CoreError::Plan(format!(
            "expected a scalar result, got {} rows x {} cols",
            rows.len(),
            rows.first().map(|r| r.len()).unwrap_or(0)
        )));
    }
    Ok(rows[0].get(0).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::reference::evaluate;
    use bda_core::{col, lit, AggExpr, AggFunc, Provider};
    use bda_linalg::LinAlgEngine;
    use bda_relational::RelationalEngine;
    use bda_storage::dataset::{dataset_matrix, matrix_dataset};
    use bda_storage::Column;
    use std::collections::HashMap;
    use std::sync::Arc;

    fn registry() -> Registry {
        let rel = RelationalEngine::new("rel");
        rel.store(
            "sales",
            DataSet::from_columns(vec![
                ("k", Column::from(vec![1i64, 2, 3, 4])),
                ("v", Column::from(vec![1.0f64, 2.0, 3.0, 4.0])),
            ])
            .unwrap(),
        )
        .unwrap();
        rel.store(
            "a_rows",
            matrix_dataset(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap(),
        )
        .unwrap();
        let la = LinAlgEngine::new("la");
        la.store(
            "b",
            matrix_dataset(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap(),
        )
        .unwrap();
        let mut r = Registry::new();
        r.register(Arc::new(rel));
        r.register(Arc::new(la));
        r
    }

    #[test]
    fn single_site_query() {
        let r = registry();
        let plan = Plan::scan("sales", r.schema_of("sales").unwrap())
            .select(col("v").gt(lit(1.5)))
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, col("v"), "s")]);
        let (out, m) = run_plan(&r, &plan, &ExecOptions::default()).unwrap();
        assert_eq!(scalar_of(&out).unwrap(), Value::Float(9.0));
        assert_eq!(m.fragments, 1);
        assert_eq!(m.app_tier_bytes(), 0);
    }

    #[test]
    fn cross_engine_matmul_direct_vs_routed() {
        let r = registry();
        let plan = Plan::scan("a_rows", r.schema_of("a_rows").unwrap()).matmul(Plan::scan(
            "b",
            r.provider("la").unwrap().schema_of("b").unwrap(),
        ));
        let direct = run_plan(&r, &plan, &ExecOptions::default()).unwrap();
        let routed = run_plan(
            &r,
            &plan,
            &ExecOptions {
                transfer: TransferMode::AppRouted,
                ..Default::default()
            },
        )
        .unwrap();
        // Same answer either way.
        let (_, _, d1) = dataset_matrix(&direct.0).unwrap();
        let (_, _, d2) = dataset_matrix(&routed.0).unwrap();
        assert_eq!(d1, vec![58., 64., 139., 154.]);
        assert_eq!(d1, d2);
        // Direct: zero bytes through the app tier; routed: all
        // intermediate bytes through it; both move the same data total.
        assert_eq!(direct.1.app_tier_bytes(), 0);
        assert!(routed.1.app_tier_bytes() > 0);
        assert_eq!(direct.1.data_bytes(), routed.1.data_bytes());
        assert!(routed.1.sim_network_s > direct.1.sim_network_s);
        // Intermediates are cleaned up afterwards.
        assert!(r
            .provider("la")
            .unwrap()
            .catalog()
            .iter()
            .all(|(n, _)| !n.starts_with(FRAG_PREFIX)));
    }

    #[test]
    fn federated_result_matches_reference() {
        let r = registry();
        let plan = Plan::scan("a_rows", r.schema_of("a_rows").unwrap()).matmul(Plan::scan(
            "b",
            r.provider("la").unwrap().schema_of("b").unwrap(),
        ));
        let (out, _) = run_plan(&r, &plan, &ExecOptions::default()).unwrap();
        // Oracle over a merged source.
        let mut src = HashMap::new();
        src.insert(
            "a_rows".to_string(),
            matrix_dataset(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap(),
        );
        src.insert(
            "b".to_string(),
            matrix_dataset(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap(),
        );
        let oracle = evaluate(&plan, &src).unwrap();
        // linalg result is dense; compare after normalizing layout.
        assert_eq!(out.sorted_rows().unwrap(), oracle.sorted_rows().unwrap());
    }

    #[test]
    fn server_side_iteration_stays_on_server() {
        let r = registry();
        // halve `v` until it converges; relational engine hosts Iterate.
        let schema = r.schema_of("sales").unwrap();
        let plan = Plan::Iterate {
            init: Plan::scan("sales", schema.clone()).boxed(),
            body: Plan::IterState { schema }
                .project(vec![("k", col("k")), ("v", col("v").mul(lit(0.5)))])
                .boxed(),
            max_iters: 50,
            epsilon: Some(1e-6),
        };
        let (out, m) = run_plan(&r, &plan, &ExecOptions::default()).unwrap();
        assert_eq!(m.client_driven_iterations, 0, "loop must run server-side");
        assert_eq!(m.fragments, 1);
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn app_driven_iteration_when_no_server_supports_it() {
        // Registry with linalg only: Iterate is driven by the app tier.
        let la = LinAlgEngine::new("la");
        la.store("m", matrix_dataset(2, 2, vec![0.5, 0., 0., 0.5]).unwrap())
            .unwrap();
        la.store("x", matrix_dataset(2, 2, vec![1., 0., 0., 1.]).unwrap())
            .unwrap();
        let mut r = Registry::new();
        r.register(Arc::new(la));
        let m_schema = r.provider("la").unwrap().schema_of("m").unwrap();
        let x_schema = r.provider("la").unwrap().schema_of("x").unwrap();
        let plan = Plan::Iterate {
            init: Plan::scan("x", x_schema.clone()).boxed(),
            body: Plan::scan("m", m_schema)
                .matmul(Plan::IterState { schema: x_schema })
                .boxed(),
            max_iters: 4,
            epsilon: None,
        };
        let (out, m) = run_plan(&r, &plan, &ExecOptions::default()).unwrap();
        assert_eq!(m.client_driven_iterations, 4);
        let (_, _, data) = dataset_matrix(&out).unwrap();
        // (0.5 I)^4 = 0.0625 I.
        assert!((data[0] - 0.0625).abs() < 1e-12, "{data:?}");
        assert!((data[3] - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn empty_placement_is_an_error() {
        let r = registry();
        let err = execute_placement(
            &r,
            &Placement { fragments: vec![] },
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("empty placement"), "{err}");
    }

    #[test]
    fn transient_failures_retry_to_success() {
        use crate::fault::{FaultConfig, FaultyProvider};
        let rel = RelationalEngine::new("rel");
        rel.store(
            "sales",
            DataSet::from_columns(vec![
                ("k", Column::from(vec![1i64, 2, 3, 4])),
                ("v", Column::from(vec![1.0f64, 2.0, 3.0, 4.0])),
            ])
            .unwrap(),
        )
        .unwrap();
        let faulty = FaultyProvider::new(
            Arc::new(rel),
            FaultConfig {
                fail_first: 2,
                ..FaultConfig::default()
            },
        );
        let mut r = Registry::new();
        r.register(Arc::new(faulty));
        let plan = Plan::scan("sales", r.schema_of("sales").unwrap())
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, col("v"), "s")]);
        let (out, m) = run_plan(&r, &plan, &ExecOptions::default()).unwrap();
        assert_eq!(scalar_of(&out).unwrap(), Value::Float(10.0));
        assert_eq!(m.retries, 2);
        assert_eq!(m.failovers, 0);
    }

    #[test]
    fn recovery_disabled_surfaces_the_failure() {
        use crate::fault::{FaultConfig, FaultyProvider};
        let rel = RelationalEngine::new("rel");
        rel.store(
            "sales",
            DataSet::from_columns(vec![("v", Column::from(vec![1.0f64]))]).unwrap(),
        )
        .unwrap();
        let faulty = FaultyProvider::new(
            Arc::new(rel),
            FaultConfig {
                fail_first: 1,
                ..FaultConfig::default()
            },
        );
        let mut r = Registry::new();
        r.register(Arc::new(faulty));
        let plan = Plan::scan("sales", r.schema_of("sales").unwrap()).limit(1);
        let opts = ExecOptions {
            recovery: RecoveryPolicy::disabled(),
            ..Default::default()
        };
        let err = run_plan(&r, &plan, &opts).unwrap_err();
        assert!(err.to_string().contains("injected transient"), "{err}");
    }

    #[test]
    fn crashed_provider_fails_over_to_replica() {
        use crate::fault::{FaultConfig, FaultyProvider};
        let rel = RelationalEngine::new("rel");
        rel.store(
            "a_rows",
            matrix_dataset(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap(),
        )
        .unwrap();
        let b = matrix_dataset(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let la1 = LinAlgEngine::new("la1");
        la1.store("b", b.clone()).unwrap();
        let la2 = LinAlgEngine::new("la2");
        la2.store("b", b).unwrap();
        let mut r = Registry::new();
        r.register(Arc::new(rel));
        // la1 registers first, so the planner pins the matmul there — but
        // it is dead on arrival. la2 is the identical replica.
        r.register(Arc::new(FaultyProvider::new(
            Arc::new(la1),
            FaultConfig::crash_after(0),
        )));
        r.register(Arc::new(la2));
        let plan = Plan::scan("a_rows", r.schema_of("a_rows").unwrap()).matmul(Plan::scan(
            "b",
            r.provider("la2").unwrap().schema_of("b").unwrap(),
        ));
        let (out, m) = run_plan(&r, &plan, &ExecOptions::default()).unwrap();
        let (_, _, data) = dataset_matrix(&out).unwrap();
        assert_eq!(data, vec![58., 64., 139., 154.]);
        assert_eq!(m.failovers, 1);
        assert!(m.degraded_transfers >= 1, "staging at la1 degraded first");
        // The failover re-ship is cleaned up like any staged intermediate.
        assert!(r
            .provider("la2")
            .unwrap()
            .catalog()
            .iter()
            .all(|(n, _)| !n.starts_with(FRAG_PREFIX)));
    }

    #[test]
    fn degraded_transfer_is_one_span_with_every_attempt() {
        use crate::fault::{FaultConfig, FaultyProvider};

        /// A provider with a (fake) network endpoint, so the RemoteTcp
        /// path actually attempts a push at its producer.
        struct WithEndpoint {
            inner: LinAlgEngine,
        }
        impl Provider for WithEndpoint {
            fn name(&self) -> &str {
                self.inner.name()
            }
            fn capabilities(&self) -> bda_core::CapabilitySet {
                self.inner.capabilities()
            }
            fn catalog(&self) -> Vec<(String, bda_storage::Schema)> {
                self.inner.catalog()
            }
            fn execute(&self, plan: &Plan) -> Result<DataSet> {
                self.inner.execute(plan)
            }
            fn store(&self, name: &str, data: DataSet) -> Result<()> {
                self.inner.store(name, data)
            }
            fn remove(&self, name: &str) {
                self.inner.remove(name)
            }
            fn row_count_of(&self, name: &str) -> Option<usize> {
                self.inner.row_count_of(name)
            }
            fn endpoint(&self) -> Option<String> {
                Some("127.0.0.1:9".into())
            }
        }

        let rel = RelationalEngine::new("rel");
        rel.store(
            "a_rows",
            matrix_dataset(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap(),
        )
        .unwrap();
        let la = LinAlgEngine::new("la");
        la.store(
            "b",
            matrix_dataset(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap(),
        )
        .unwrap();
        // Producer: its first 3 faultable calls (the 3 push attempts)
        // fail, then the fragment's execute succeeds. Consumer: its
        // first 3 faultable calls (the 3 direct-store attempts) fail,
        // then the app-routed store and the matmul succeed. Both
        // streams are seeded and deterministic.
        let mut r = Registry::new();
        r.register(Arc::new(FaultyProvider::new(
            Arc::new(rel),
            FaultConfig {
                seed: 7,
                fail_first: 3,
                ..FaultConfig::default()
            },
        )));
        r.register(Arc::new(FaultyProvider::new(
            Arc::new(WithEndpoint { inner: la }),
            FaultConfig {
                seed: 7,
                fail_first: 3,
                ..FaultConfig::default()
            },
        )));
        let plan = Plan::scan("a_rows", r.schema_of("a_rows").unwrap()).matmul(Plan::scan(
            "b",
            r.provider("la").unwrap().schema_of("b").unwrap(),
        ));
        let opts = ExecOptions {
            transfer: TransferMode::RemoteTcp,
            ..Default::default()
        };
        let tracer = Tracer::new(7);
        let (out, m) = run_plan_traced(&r, &plan, &opts, &tracer, None).unwrap();
        let (_, _, data) = dataset_matrix(&out).unwrap();
        assert_eq!(data, vec![58., 64., 139., 154.]);
        assert_eq!(m.degraded_transfers, 2, "push→direct and direct→app-routed");

        // The whole ladder is ONE transfer span whose events record
        // every attempt: 3 pushes, the direct try, the app-routed try.
        let trace = tracer.finish();
        let transfers = trace.spans_named("transfer:0");
        assert_eq!(transfers.len(), 1, "one span per transfer:\n{transfers:#?}");
        let t = transfers[0];
        let labels: Vec<&str> = t.events.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(
            labels.iter().filter(|l| **l == "attempt:push").count(),
            3,
            "{labels:?}"
        );
        for needed in [
            "degrade:direct",
            "attempt:direct",
            "degrade:app-routed",
            "attempt:app-routed",
            "mode:app-routed",
        ] {
            assert!(labels.contains(&needed), "missing {needed}: {labels:?}");
        }
        // Attempts appear in ladder order.
        let pos = |l: &str| labels.iter().position(|x| *x == l).unwrap();
        assert!(pos("attempt:push") < pos("attempt:direct"), "{labels:?}");
        assert!(
            pos("attempt:direct") < pos("attempt:app-routed"),
            "{labels:?}"
        );
        assert!(t.bytes.is_some(), "delivered payload size recorded");
    }

    #[test]
    fn parallel_execution_matches_sequential_and_records_partition_spans() {
        let r = registry();
        let schema = r.schema_of("sales").unwrap();
        let scan = Plan::scan("sales", schema);
        let plan = scan
            .clone()
            .join(scan, vec![("k", "k")])
            .aggregate(vec!["k"], vec![AggExpr::new(AggFunc::Sum, col("v"), "s")]);
        let seq = run_plan(
            &r,
            &plan,
            &ExecOptions {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let tracer = Tracer::new(11);
        let opts = ExecOptions {
            workers: 4,
            ..Default::default()
        };
        let (out, m) = run_plan_traced(&r, &plan, &opts, &tracer, None).unwrap();
        assert!(out.same_bag(&seq.0).unwrap());
        assert_eq!(m.fragments, seq.1.fragments);
        // The engine ran partitioned kernels: per-partition spans land in
        // the trace (join and aggregate each split into 4).
        let parts = tracer.finish().spans_named("partition:").len();
        assert!(parts >= 8, "expected per-partition spans, got {parts}");
    }

    #[test]
    fn parallel_execution_preserves_failover() {
        use crate::fault::{FaultConfig, FaultyProvider};
        let rel = RelationalEngine::new("rel");
        rel.store(
            "a_rows",
            matrix_dataset(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap(),
        )
        .unwrap();
        let b = matrix_dataset(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let la1 = LinAlgEngine::new("la1");
        la1.store("b", b.clone()).unwrap();
        let la2 = LinAlgEngine::new("la2");
        la2.store("b", b).unwrap();
        let mut r = Registry::new();
        r.register(Arc::new(rel));
        r.register(Arc::new(FaultyProvider::new(
            Arc::new(la1),
            FaultConfig::crash_after(0),
        )));
        r.register(Arc::new(la2));
        let plan = Plan::scan("a_rows", r.schema_of("a_rows").unwrap()).matmul(Plan::scan(
            "b",
            r.provider("la2").unwrap().schema_of("b").unwrap(),
        ));
        let opts = ExecOptions {
            workers: 4,
            ..Default::default()
        };
        let (out, m) = run_plan(&r, &plan, &opts).unwrap();
        let (_, _, data) = dataset_matrix(&out).unwrap();
        assert_eq!(data, vec![58., 64., 139., 154.]);
        assert_eq!(m.failovers, 1);
        assert!(r
            .provider("la2")
            .unwrap()
            .catalog()
            .iter()
            .all(|(n, _)| !n.starts_with(FRAG_PREFIX)));
    }

    #[test]
    fn parallel_app_driven_iteration_matches_sequential() {
        let la = LinAlgEngine::new("la");
        la.store("m", matrix_dataset(2, 2, vec![0.5, 0., 0., 0.5]).unwrap())
            .unwrap();
        la.store("x", matrix_dataset(2, 2, vec![1., 0., 0., 1.]).unwrap())
            .unwrap();
        let mut r = Registry::new();
        r.register(Arc::new(la));
        let m_schema = r.provider("la").unwrap().schema_of("m").unwrap();
        let x_schema = r.provider("la").unwrap().schema_of("x").unwrap();
        let plan = Plan::Iterate {
            init: Plan::scan("x", x_schema.clone()).boxed(),
            body: Plan::scan("m", m_schema)
                .matmul(Plan::IterState { schema: x_schema })
                .boxed(),
            max_iters: 4,
            epsilon: None,
        };
        let opts = ExecOptions {
            workers: 4,
            ..Default::default()
        };
        let (out, m) = run_plan(&r, &plan, &opts).unwrap();
        assert_eq!(m.client_driven_iterations, 4);
        let (_, _, data) = dataset_matrix(&out).unwrap();
        assert!((data[0] - 0.0625).abs() < 1e-12, "{data:?}");
        assert!((data[3] - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn parallel_failure_surfaces_earliest_fragment_error() {
        use crate::fault::{FaultConfig, FaultyProvider};
        let rel = RelationalEngine::new("rel");
        rel.store(
            "sales",
            DataSet::from_columns(vec![("v", Column::from(vec![1.0f64]))]).unwrap(),
        )
        .unwrap();
        let faulty = FaultyProvider::new(
            Arc::new(rel),
            FaultConfig {
                fail_first: 10,
                ..FaultConfig::default()
            },
        );
        let mut r = Registry::new();
        r.register(Arc::new(faulty));
        let plan = Plan::scan("sales", r.schema_of("sales").unwrap()).limit(1);
        let opts = ExecOptions {
            recovery: RecoveryPolicy::disabled(),
            workers: 4,
            ..Default::default()
        };
        let err = run_plan(&r, &plan, &opts).unwrap_err();
        assert!(err.to_string().contains("injected transient"), "{err}");
    }

    #[test]
    fn plan_shipping_counts_bytes() {
        let r = registry();
        let plan = Plan::scan("sales", r.schema_of("sales").unwrap()).limit(1);
        let (_, m) = run_plan(&r, &plan, &ExecOptions::default()).unwrap();
        assert!(m.plan_bytes > 0);
        assert!(m.messages >= 2); // plan shipment + result return
    }
}
