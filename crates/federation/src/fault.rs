//! Fault injection: a decorator that makes any [`Provider`] misbehave on
//! demand, driven by a seeded deterministic RNG.
//!
//! [`FaultyProvider`] is how every recovery path in the executor is
//! exercised in-process: transient execute/store failures at a
//! configurable rate, latency spikes, a hard crash after N calls (the
//! provider never answers again), and corrupt direct-push outcomes. The
//! same seed always injects the same fault sequence, so recovery tests
//! and the fault-recovery experiment are reproducible bit for bit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bda_core::{CapabilitySet, CoreError, Plan, Provider};
use bda_storage::{DataSet, Schema};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

// Disk faults (torn WAL appends, ENOSPC-style refusals, truncated
// snapshots) live in `bda-durability`; re-exported here so chaos tests
// configure the whole fault surface — provider, transport, disk — from
// one module, all keyed off the same seed.
pub use bda_durability::DiskFaults;

/// Environment variable the chaos CI job sets to sweep fault seeds.
pub const FAULT_SEED_ENV: &str = "BDA_FAULT_SEED";

/// The seed to drive fault injection with: `BDA_FAULT_SEED` when set (and
/// parseable as `u64`), otherwise `default`.
pub fn fault_seed_from_env(default: u64) -> u64 {
    std::env::var(FAULT_SEED_ENV)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

/// The disk-fault plan for the current chaos seed: `BDA_FAULT_SEED`
/// (else `default`) picks deterministically among the three disk
/// failure modes via [`DiskFaults::plan_from_seed`].
pub fn disk_faults_from_env(default: u64) -> DiskFaults {
    DiskFaults::plan_from_seed(fault_seed_from_env(default))
}

/// What to inject, and how often.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability that an `execute`/`execute_push` call fails with a
    /// transient error.
    pub execute_error_rate: f64,
    /// Probability that a `store` call fails with a transient error.
    pub store_error_rate: f64,
    /// The first `fail_first` faultable calls fail transiently no matter
    /// what the RNG says — a deterministic way to guarantee retries.
    pub fail_first: u64,
    /// After this many faultable calls the provider "crashes": every
    /// subsequent call fails permanently.
    pub crash_after: Option<u64>,
    /// Probability that a call stalls for [`FaultConfig::latency`] first.
    pub latency_rate: f64,
    /// The injected latency spike.
    pub latency: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xBDA,
            execute_error_rate: 0.0,
            store_error_rate: 0.0,
            fail_first: 0,
            crash_after: None,
            latency_rate: 0.0,
            latency: Duration::ZERO,
        }
    }
}

impl FaultConfig {
    /// Transient execute/store failures at rate `p`, seeded.
    pub fn transient(seed: u64, p: f64) -> FaultConfig {
        FaultConfig {
            seed,
            execute_error_rate: p,
            store_error_rate: p,
            ..FaultConfig::default()
        }
    }

    /// A provider that works for `n` calls, then crashes permanently.
    pub fn crash_after(n: u64) -> FaultConfig {
        FaultConfig {
            crash_after: Some(n),
            ..FaultConfig::default()
        }
    }
}

/// Wraps any provider and injects faults per a [`FaultConfig`].
///
/// `catalog`, `schema_of`, `row_count_of` and `remove` pass through
/// unfaulted: they model the control plane (and cleanup), which the
/// executor's recovery paths must be able to rely on even while the data
/// plane misbehaves. A crashed provider *does* refuse everything.
pub struct FaultyProvider {
    inner: Arc<dyn Provider>,
    config: FaultConfig,
    rng: Mutex<StdRng>,
    calls: AtomicU64,
    injected: AtomicU64,
}

impl FaultyProvider {
    /// Wrap `inner` with the given fault plan.
    pub fn new(inner: Arc<dyn Provider>, config: FaultConfig) -> FaultyProvider {
        FaultyProvider {
            inner,
            rng: Mutex::new(StdRng::seed_from_u64(config.seed)),
            config,
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Faultable calls observed so far (execute + store + push).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Faults injected so far (transient errors + crash refusals).
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Has the crash-after-N point been passed?
    pub fn crashed(&self) -> bool {
        matches!(self.config.crash_after, Some(n) if self.calls() > n)
    }

    /// Decide the fate of one faultable call: `Err` for an injected
    /// fault, `Ok(())` to let it through (after any latency spike).
    fn faultable(&self, error_rate: f64, what: &str) -> Result<()> {
        let n = self.calls.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(limit) = self.config.crash_after {
            if n > limit {
                self.injected.fetch_add(1, Ordering::Relaxed);
                // A crash is permanent: retrying this provider is futile.
                return Err(CoreError::Plan(format!(
                    "injected crash: `{}` is down (call {n} > {limit})",
                    self.inner.name()
                )));
            }
        }
        let (spike, fail) = {
            let mut rng = self.rng.lock();
            let spike = self.config.latency_rate > 0.0 && rng.gen_bool(self.config.latency_rate);
            let fail =
                n <= self.config.fail_first || (error_rate > 0.0 && rng.gen_bool(error_rate));
            (spike, fail)
        };
        if spike {
            std::thread::sleep(self.config.latency);
        }
        if fail {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(CoreError::transient(CoreError::Net(format!(
                "injected transient {what} failure at `{}` (call {n})",
                self.inner.name()
            ))));
        }
        Ok(())
    }
}

impl Provider for FaultyProvider {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capabilities(&self) -> CapabilitySet {
        self.inner.capabilities()
    }

    fn catalog(&self) -> Vec<(String, Schema)> {
        self.inner.catalog()
    }

    fn execute(&self, plan: &Plan) -> Result<DataSet> {
        self.faultable(self.config.execute_error_rate, "execute")?;
        self.inner.execute(plan)
    }

    fn store(&self, name: &str, data: DataSet) -> Result<()> {
        self.faultable(self.config.store_error_rate, "store")?;
        self.inner.store(name, data)
    }

    fn remove(&self, name: &str) {
        self.inner.remove(name)
    }

    fn row_count_of(&self, name: &str) -> Option<usize> {
        self.inner.row_count_of(name)
    }

    fn endpoint(&self) -> Option<String> {
        self.inner.endpoint()
    }

    fn execute_push(&self, plan: &Plan, peer_addr: &str, dest_name: &str) -> Option<Result<u64>> {
        // A corrupt push: the call is charged and the error is transient,
        // mirroring a dropped/garbled peer transfer on a live provider.
        if let Err(e) = self.faultable(self.config.execute_error_rate, "push") {
            return Some(Err(e));
        }
        self.inner.execute_push(plan, peer_addr, dest_name)
    }

    fn wire_bytes(&self) -> (u64, u64) {
        self.inner.wire_bytes()
    }

    fn execute_traced(
        &self,
        plan: &Plan,
        ctx: &bda_obs::TraceContext,
    ) -> Result<(DataSet, Vec<bda_obs::Span>)> {
        // Same fault stream as `execute`: the decision is charged to the
        // shared call counter, so a traced run sees identical faults.
        self.faultable(self.config.execute_error_rate, "execute")?;
        self.inner.execute_traced(plan, ctx)
    }

    fn execute_push_traced(
        &self,
        plan: &Plan,
        peer_addr: &str,
        dest_name: &str,
        ctx: &bda_obs::TraceContext,
    ) -> Option<Result<(u64, Vec<bda_obs::Span>)>> {
        if let Err(e) = self.faultable(self.config.execute_error_rate, "push") {
            return Some(Err(e));
        }
        self.inner
            .execute_push_traced(plan, peer_addr, dest_name, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::ReferenceProvider;
    use bda_storage::Column;

    fn inner() -> Arc<dyn Provider> {
        let p = ReferenceProvider::new("ref");
        p.store(
            "t",
            DataSet::from_columns(vec![("k", Column::from(vec![1i64, 2, 3]))]).unwrap(),
        )
        .unwrap();
        Arc::new(p)
    }

    fn scan(p: &dyn Provider) -> Plan {
        Plan::scan("t", p.schema_of("t").unwrap())
    }

    #[test]
    fn zero_rates_are_transparent() {
        let f = FaultyProvider::new(inner(), FaultConfig::default());
        let out = f.execute(&scan(&f)).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(f.injected_faults(), 0);
        assert_eq!(f.calls(), 1);
    }

    #[test]
    fn fault_stream_is_deterministic() {
        let outcomes = |seed| -> Vec<bool> {
            let f = FaultyProvider::new(inner(), FaultConfig::transient(seed, 0.5));
            (0..32).map(|_| f.execute(&scan(&f)).is_ok()).collect()
        };
        assert_eq!(outcomes(7), outcomes(7));
        assert_ne!(outcomes(7), outcomes(8), "different seeds differ");
    }

    #[test]
    fn injected_errors_are_transient() {
        let f = FaultyProvider::new(
            inner(),
            FaultConfig {
                fail_first: 1,
                ..FaultConfig::default()
            },
        );
        let err = f.execute(&scan(&f)).unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert!(err.to_string().contains("injected transient"), "{err}");
        // After the deterministic failure the provider works again.
        assert!(f.execute(&scan(&f)).is_ok());
    }

    #[test]
    fn crash_after_n_is_permanent() {
        let f = FaultyProvider::new(inner(), FaultConfig::crash_after(2));
        assert!(f.execute(&scan(&f)).is_ok());
        assert!(f.execute(&scan(&f)).is_ok());
        // Call 3 onwards: dead, permanently.
        for _ in 0..3 {
            let err = f.execute(&scan(&f)).unwrap_err();
            assert!(!err.is_transient(), "{err}");
            assert!(err.to_string().contains("injected crash"), "{err}");
        }
        assert!(f.crashed());
        // A crashed provider refuses stores too ...
        let ds = DataSet::from_columns(vec![("k", Column::from(vec![1i64]))]).unwrap();
        assert!(f.store("u", ds).is_err());
        // ... but the control plane still answers (catalog is metadata).
        assert_eq!(f.catalog().len(), 1);
    }

    #[test]
    fn disk_fault_plan_is_seed_deterministic() {
        std::env::remove_var(FAULT_SEED_ENV);
        assert_eq!(disk_faults_from_env(7), DiskFaults::plan_from_seed(7));
    }

    #[test]
    fn durability_ephemeral_prefix_matches_staging_prefix() {
        // The durability layer excludes staged fragments from WAL and
        // snapshots by name prefix; if the planner's staging prefix ever
        // drifts, staged intermediates would silently become durable.
        assert_eq!(
            bda_durability::DEFAULT_EPHEMERAL_PREFIX,
            crate::planner::FRAG_PREFIX
        );
    }

    #[test]
    fn seed_env_override() {
        // Avoid polluting other tests: set, read, restore.
        std::env::set_var(FAULT_SEED_ENV, "1234");
        assert_eq!(fault_seed_from_env(1), 1234);
        std::env::set_var(FAULT_SEED_ENV, "not a number");
        assert_eq!(fault_seed_from_env(1), 1);
        std::env::remove_var(FAULT_SEED_ENV);
        assert_eq!(fault_seed_from_env(1), 1);
    }
}
