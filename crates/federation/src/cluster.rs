//! The simulated cluster: one OS thread per provider, message-passing via
//! channels, every payload wire-encoded.
//!
//! This module exists to measure the paper's *expression-tree shipping*
//! claim (experiment F3): a LINQ-style framework sends a whole plan tree
//! in **one** request, whereas an RPC-per-operator API pays one round trip
//! per operator. Both styles are implemented against the same provider
//! threads; only the protocol differs.

use crossbeam::channel::{bounded, unbounded, Sender};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use bda_core::codec::{decode_plan, encode_plan};
use bda_core::infer::infer_schema;
use bda_core::{CoreError, Plan, Provider};
use bda_storage::wire::{decode_dataset, encode_dataset};
use bda_storage::DataSet;

use crate::metrics::NetConfig;

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

enum Request {
    /// Execute a shipped plan tree, reply with the encoded result.
    Execute {
        plan_bytes: Vec<u8>,
        reply: Sender<std::result::Result<Vec<u8>, String>>,
    },
    /// Execute a shipped plan tree and keep the result server-side under
    /// `name` (the RPC-per-operator style's intermediate handling).
    ExecuteStore {
        plan_bytes: Vec<u8>,
        name: String,
        reply: Sender<std::result::Result<usize, String>>,
    },
    /// Ingest a dataset.
    Store {
        name: String,
        data_bytes: Vec<u8>,
        reply: Sender<std::result::Result<(), String>>,
    },
    /// Drop a dataset.
    Remove { name: String },
    /// Terminate the node thread.
    Shutdown,
}

struct Node {
    tx: Sender<Request>,
    handle: Option<JoinHandle<()>>,
}

/// Accounting for one protocol interaction sequence.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireStats {
    /// Request/response round trips performed.
    pub round_trips: usize,
    /// Bytes sent to the server (plans, datasets).
    pub bytes_sent: usize,
    /// Bytes received from the server (results, acks are free).
    pub bytes_received: usize,
    /// Simulated seconds (latency per round trip + transmission).
    pub sim_seconds: f64,
}

impl WireStats {
    fn charge(&mut self, net: &NetConfig, sent: usize, received: usize) {
        self.round_trips += 1;
        self.bytes_sent += sent;
        self.bytes_received += received;
        // One request and one response, each with latency + transmission.
        self.sim_seconds += net.message_time(sent) + net.message_time(received);
    }
}

/// A running cluster of provider threads.
pub struct Cluster {
    nodes: HashMap<String, Node>,
    net: NetConfig,
}

impl Cluster {
    /// Spawn one thread per provider. Fails with [`CoreError::Net`] when
    /// the OS refuses a node thread (already-spawned nodes are shut down
    /// cleanly by `Cluster`'s `Drop`).
    pub fn spawn(providers: Vec<Arc<dyn Provider>>, net: NetConfig) -> Result<Cluster> {
        let mut cluster = Cluster {
            nodes: HashMap::new(),
            net,
        };
        for provider in providers {
            let (tx, rx) = unbounded::<Request>();
            let name = provider.name().to_string();
            let handle = std::thread::Builder::new()
                .name(format!("bda-node-{name}"))
                .spawn(move || {
                    while let Ok(req) = rx.recv() {
                        match req {
                            Request::Execute { plan_bytes, reply } => {
                                let result = decode_plan(&plan_bytes)
                                    .and_then(|p| provider.execute(&p))
                                    .map(|ds| encode_dataset(&ds))
                                    .map_err(|e| e.to_string());
                                let _ = reply.send(result);
                            }
                            Request::ExecuteStore {
                                plan_bytes,
                                name,
                                reply,
                            } => {
                                let result = decode_plan(&plan_bytes)
                                    .and_then(|p| provider.execute(&p))
                                    .and_then(|ds| {
                                        let n = ds.num_rows();
                                        provider.store(&name, ds)?;
                                        Ok(n)
                                    })
                                    .map_err(|e| e.to_string());
                                let _ = reply.send(result);
                            }
                            Request::Store {
                                name,
                                data_bytes,
                                reply,
                            } => {
                                let result = decode_dataset(&data_bytes)
                                    .map_err(CoreError::from)
                                    .and_then(|ds| provider.store(&name, ds))
                                    .map_err(|e| e.to_string());
                                let _ = reply.send(result);
                            }
                            Request::Remove { name } => provider.remove(&name),
                            Request::Shutdown => break,
                        }
                    }
                })
                .map_err(|e| CoreError::Net(format!("spawn node thread for `{name}`: {e}")))?;
            cluster.nodes.insert(
                name,
                Node {
                    tx,
                    handle: Some(handle),
                },
            );
        }
        Ok(cluster)
    }

    fn node(&self, site: &str) -> Result<&Node> {
        self.nodes
            .get(site)
            .ok_or_else(|| CoreError::Plan(format!("unknown cluster site `{site}`")))
    }

    /// Ship a whole plan tree to `site` in one request (the LINQ style).
    pub fn ship_tree(&self, site: &str, plan: &Plan) -> Result<(DataSet, WireStats)> {
        let mut stats = WireStats::default();
        let plan_bytes = encode_plan(plan);
        let (reply_tx, reply_rx) = bounded(1);
        self.node(site)?
            .tx
            .send(Request::Execute {
                plan_bytes: plan_bytes.clone(),
                reply: reply_tx,
            })
            .map_err(|_| CoreError::Plan("cluster node hung up".into()))?;
        let result_bytes = reply_rx
            .recv()
            .map_err(|_| CoreError::Plan("cluster node hung up".into()))?
            .map_err(CoreError::Plan)?;
        stats.charge(&self.net, plan_bytes.len(), result_bytes.len());
        let ds = decode_dataset(&result_bytes)?;
        Ok((ds, stats))
    }

    /// Execute the same plan as one remote call **per operator** (the
    /// cursor/RPC style the paper contrasts with expression shipping).
    /// Intermediates stay server-side under temporary names; the final
    /// operator's result comes back to the client.
    pub fn per_operator(&self, site: &str, plan: &Plan) -> Result<(DataSet, WireStats)> {
        let mut stats = WireStats::default();
        let mut counter = 0usize;
        let result = self.per_operator_rec(site, plan, &mut stats, &mut counter)?;
        // Fetch the final temp with one more call.
        let schema = infer_schema(plan)?;
        let final_plan = Plan::Scan {
            dataset: result.clone(),
            schema,
        };
        let plan_bytes = encode_plan(&final_plan);
        let (reply_tx, reply_rx) = bounded(1);
        self.node(site)?
            .tx
            .send(Request::Execute {
                plan_bytes: plan_bytes.clone(),
                reply: reply_tx,
            })
            .map_err(|_| CoreError::Plan("cluster node hung up".into()))?;
        let result_bytes = reply_rx
            .recv()
            .map_err(|_| CoreError::Plan("cluster node hung up".into()))?
            .map_err(CoreError::Plan)?;
        stats.charge(&self.net, plan_bytes.len(), result_bytes.len());
        let ds = decode_dataset(&result_bytes)?;
        // Clean up temps.
        for i in 0..counter {
            let _ = self
                .node(site)?
                .tx
                .send(Request::Remove { name: temp_name(i) });
        }
        Ok((ds, stats))
    }

    fn per_operator_rec(
        &self,
        site: &str,
        plan: &Plan,
        stats: &mut WireStats,
        counter: &mut usize,
    ) -> Result<String> {
        // Leaves that are plain scans need no call: the data is already
        // on the server.
        if let Plan::Scan { dataset, .. } = plan {
            return Ok(dataset.clone());
        }
        // Recurse: children become server-side temps.
        let mut new_children = Vec::new();
        for c in plan.children() {
            let name = self.per_operator_rec(site, c, stats, counter)?;
            let schema = infer_schema(c)?;
            new_children.push(Plan::Scan {
                dataset: name,
                schema,
            });
        }
        let single = plan.with_children(new_children);
        let name = temp_name(*counter);
        *counter += 1;
        let plan_bytes = encode_plan(&single);
        let (reply_tx, reply_rx) = bounded(1);
        self.node(site)?
            .tx
            .send(Request::ExecuteStore {
                plan_bytes: plan_bytes.clone(),
                name: name.clone(),
                reply: reply_tx,
            })
            .map_err(|_| CoreError::Plan("cluster node hung up".into()))?;
        reply_rx
            .recv()
            .map_err(|_| CoreError::Plan("cluster node hung up".into()))?
            .map_err(CoreError::Plan)?;
        // The ack is small; model it as 16 bytes.
        stats.charge(&self.net, plan_bytes.len(), 16);
        Ok(name)
    }

    /// Store a dataset on a site (one round trip).
    pub fn store(&self, site: &str, name: &str, ds: &DataSet) -> Result<WireStats> {
        let mut stats = WireStats::default();
        let data_bytes = encode_dataset(ds);
        let (reply_tx, reply_rx) = bounded(1);
        self.node(site)?
            .tx
            .send(Request::Store {
                name: name.to_string(),
                data_bytes: data_bytes.clone(),
                reply: reply_tx,
            })
            .map_err(|_| CoreError::Plan("cluster node hung up".into()))?;
        reply_rx
            .recv()
            .map_err(|_| CoreError::Plan("cluster node hung up".into()))?
            .map_err(CoreError::Plan)?;
        stats.charge(&self.net, data_bytes.len(), 16);
        Ok(stats)
    }

    /// Sites in this cluster.
    pub fn sites(&self) -> Vec<String> {
        let mut out: Vec<String> = self.nodes.keys().cloned().collect();
        out.sort();
        out
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for node in self.nodes.values_mut() {
            let _ = node.tx.send(Request::Shutdown);
            if let Some(h) = node.handle.take() {
                let _ = h.join();
            }
        }
    }
}

fn temp_name(i: usize) -> String {
    format!("__bda_tmp_{i}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{col, lit, AggExpr, AggFunc};
    use bda_relational::RelationalEngine;
    use bda_storage::Column;

    fn cluster() -> Cluster {
        let rel = RelationalEngine::new("rel");
        rel.store(
            "t",
            DataSet::from_columns(vec![
                ("k", Column::from(vec![1i64, 2, 3, 4, 5])),
                ("v", Column::from(vec![1.0f64, 2.0, 3.0, 4.0, 5.0])),
            ])
            .unwrap(),
        )
        .unwrap();
        Cluster::spawn(vec![Arc::new(rel)], NetConfig::default()).unwrap()
    }

    fn pipeline(k: usize, schema: bda_storage::Schema) -> Plan {
        // k stacked filters, each keeping everything.
        let mut p = Plan::scan("t", schema);
        for i in 0..k {
            p = p.select(col("v").gt(lit(-(i as f64) - 1.0)));
        }
        p
    }

    #[test]
    fn tree_shipping_is_one_round_trip() {
        let c = cluster();
        let schema = bda_storage::Schema::new(vec![
            bda_storage::Field::value("k", bda_storage::DataType::Int64),
            bda_storage::Field::value("v", bda_storage::DataType::Float64),
        ])
        .unwrap();
        let plan =
            pipeline(6, schema).aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, col("v"), "s")]);
        let (out, stats) = c.ship_tree("rel", &plan).unwrap();
        assert_eq!(stats.round_trips, 1);
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn per_operator_pays_one_round_trip_per_op() {
        let c = cluster();
        let schema = bda_storage::Schema::new(vec![
            bda_storage::Field::value("k", bda_storage::DataType::Int64),
            bda_storage::Field::value("v", bda_storage::DataType::Float64),
        ])
        .unwrap();
        let k = 5;
        let plan = pipeline(k, schema);
        let (tree_out, tree_stats) = c.ship_tree("rel", &plan).unwrap();
        let (op_out, op_stats) = c.per_operator("rel", &plan).unwrap();
        assert!(tree_out.same_bag(&op_out).unwrap());
        assert_eq!(tree_stats.round_trips, 1);
        // k operator calls + 1 fetch.
        assert_eq!(op_stats.round_trips, k + 1);
        assert!(op_stats.sim_seconds > tree_stats.sim_seconds);
    }

    #[test]
    fn store_and_execute_round_trip() {
        let c = cluster();
        let extra = DataSet::from_columns(vec![("x", Column::from(vec![9i64]))]).unwrap();
        let stats = c.store("rel", "extra", &extra).unwrap();
        assert_eq!(stats.round_trips, 1);
        let (out, _) = c
            .ship_tree("rel", &Plan::scan("extra", extra.schema().clone()))
            .unwrap();
        assert!(out.same_bag(&extra).unwrap());
    }

    #[test]
    fn unknown_site_errors() {
        let c = cluster();
        let schema = bda_storage::Schema::new(vec![bda_storage::Field::value(
            "k",
            bda_storage::DataType::Int64,
        )])
        .unwrap();
        assert!(c.ship_tree("nope", &Plan::scan("t", schema)).is_err());
    }

    #[test]
    fn server_errors_propagate() {
        let c = cluster();
        let schema = bda_storage::Schema::new(vec![bda_storage::Field::value(
            "zz",
            bda_storage::DataType::Int64,
        )])
        .unwrap();
        let err = c
            .ship_tree("rel", &Plan::scan("missing", schema))
            .unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
    }
}
