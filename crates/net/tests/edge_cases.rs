//! Transport edge cases: half-written messages, hostile frames, faulty
//! servers, and shutdown races. The invariant under test is always the
//! same — clean errors (or clean recovery), never a panic or a hang.

use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use bda_core::{CapabilitySet, CoreError, Plan, Provider, ReferenceProvider};
use bda_net::{serve, serve_with_faults, NetFaults, RemoteOptions, RemoteProvider, RetryPolicy};
use bda_storage::{Column, DataSet, Schema};

fn sample() -> DataSet {
    DataSet::from_columns(vec![
        ("k", Column::from(vec![1i64, 2, 3])),
        ("v", Column::from(vec![1.0f64, 2.0, 3.0])),
    ])
    .unwrap()
}

fn fast_opts() -> RemoteOptions {
    RemoteOptions {
        timeout: Duration::from_secs(2),
        retry: RetryPolicy {
            attempts: 2,
            initial_backoff: Duration::from_millis(1),
        },
        ..RemoteOptions::default()
    }
}

/// A peer that writes part of a request frame and hangs up must not take
/// the server down: the next well-formed client still gets answers.
#[test]
fn half_written_request_leaves_server_healthy() {
    let engine = Arc::new(ReferenceProvider::new("ref"));
    engine.store("t", sample()).unwrap();
    let server = serve(engine, "127.0.0.1:0").unwrap();

    {
        let mut rude = TcpStream::connect(server.addr()).unwrap();
        // A header promising 100 payload bytes, then only 3, then EOF.
        let mut partial = vec![0x02u8, 0x00];
        partial.extend_from_slice(&100u32.to_le_bytes());
        partial.extend_from_slice(b"abc");
        rude.write_all(&partial).unwrap();
        rude.flush().unwrap();
    } // dropped: disconnect mid-message

    let remote = RemoteProvider::connect_with(server.addr().to_string(), fast_opts()).unwrap();
    let out = remote
        .execute(&Plan::scan("t", remote.schema_of("t").unwrap()))
        .unwrap();
    assert_eq!(out.num_rows(), 3);
}

/// Garbage that parses as a frame but not as a request gets an error
/// response (not a dropped connection, not a panic).
#[test]
fn unknown_request_kind_is_reported_not_fatal() {
    let engine = Arc::new(ReferenceProvider::new("ref"));
    let server = serve(engine, "127.0.0.1:0").unwrap();
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    bda_net::frame::write_message(&mut conn, 0x7E, b"junk").unwrap();
    conn.flush().unwrap();
    let (kind, payload, _) = bda_net::frame::read_message(&mut conn).unwrap();
    match bda_net::proto::decode_response(kind, &payload).unwrap() {
        bda_net::Response::Error { msg, transient } => {
            assert!(msg.contains("unknown request kind"), "{msg}");
            assert!(!transient, "a protocol violation never retries");
        }
        other => panic!("expected an error response, got {other:?}"),
    }
}

/// A server that drops and truncates every response produces clean
/// errors after the client's retries — never a hang.
#[test]
fn always_faulty_server_yields_clean_errors() {
    let engine = Arc::new(ReferenceProvider::new("ref"));
    let server = serve_with_faults(engine, "127.0.0.1:0", NetFaults::new(42, 1.0)).unwrap();
    let err = RemoteProvider::connect_with(server.addr().to_string(), fast_opts()).unwrap_err();
    assert!(err.is_transient(), "transport faults are transient: {err}");
    assert!(err.to_string().contains("2 attempts"), "{err}");
}

/// At a moderate fault rate the client's retry-and-redial machinery
/// grinds through: every request eventually succeeds.
#[test]
fn flaky_server_is_survivable_with_retries() {
    let engine = Arc::new(ReferenceProvider::new("ref"));
    engine.store("t", sample()).unwrap();
    let server = serve_with_faults(engine, "127.0.0.1:0", NetFaults::new(7, 0.3)).unwrap();
    let opts = RemoteOptions {
        timeout: Duration::from_secs(2),
        retry: RetryPolicy {
            attempts: 10,
            initial_backoff: Duration::from_millis(1),
        },
        ..RemoteOptions::default()
    };
    let remote = RemoteProvider::connect_with(server.addr().to_string(), opts).unwrap();
    for _ in 0..10 {
        let out = remote
            .execute(&Plan::scan("t", remote.schema_of("t").unwrap()))
            .unwrap();
        assert_eq!(out.num_rows(), 3);
    }
}

/// An engine that takes its time to answer.
struct SlowProvider {
    inner: ReferenceProvider,
    delay: Duration,
}

impl Provider for SlowProvider {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn capabilities(&self) -> CapabilitySet {
        self.inner.capabilities()
    }
    fn catalog(&self) -> Vec<(String, Schema)> {
        self.inner.catalog()
    }
    fn execute(&self, plan: &Plan) -> Result<DataSet, CoreError> {
        std::thread::sleep(self.delay);
        self.inner.execute(plan)
    }
    fn store(&self, name: &str, data: DataSet) -> Result<(), CoreError> {
        self.inner.store(name, data)
    }
    fn remove(&self, name: &str) {
        self.inner.remove(name)
    }
}

/// Shutting the server down while a request is executing must neither
/// hang the shutdown nor strand the client: the in-flight request is
/// answered, then everything joins.
#[test]
fn shutdown_with_request_in_flight_completes_cleanly() {
    let slow = SlowProvider {
        inner: ReferenceProvider::new("slow"),
        delay: Duration::from_millis(400),
    };
    slow.inner.store("t", sample()).unwrap();
    let mut server = serve(Arc::new(slow), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let remote = RemoteProvider::connect_with(addr, fast_opts()).unwrap();
        let result = remote.execute(&Plan::scan("t", remote.schema_of("t").unwrap()));
        tx.send(result).unwrap();
    });

    // Let the request get in flight, then pull the plug.
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();

    let result = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("client neither hung nor was stranded");
    let out = result.expect("in-flight request is answered before shutdown");
    assert_eq!(out.num_rows(), 3);
    worker.join().unwrap();
}
