//! Property tests for the tenant-tagged wire frames: a `Tenant` wrapper
//! must round-trip faithfully for arbitrary tenant identities, stay
//! byte-compatible with untagged (pre-tenant) frames in both
//! directions, and never panic on malformed or truncated input — the
//! peek path included, since the reactor runs it on every admission.

use bda_net::proto::{
    decode_request, encode_request, encode_tenant_wrapped, kind, peek_frame, Request,
};
use proptest::prelude::*;

/// Tenant identities: empty, ascii slug of varying length, and a
/// multibyte unicode name (the codec carries UTF-8 lengths in bytes).
fn tenant_id() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        "[a-zA-Z0-9_.:-]{1,24}",
        Just("tenant-\u{7d42}\u{03b1}".to_string()),
    ]
}

/// A small pool of inner requests covering the tag-relevant shapes:
/// plain, traced, and payload-bearing.
fn inner_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Hello),
        Just(Request::Catalog),
        Just(Request::Metrics),
        "[a-z]{0,12}".prop_map(|name| Request::Remove { name }),
        (any::<u64>(), any::<u64>()).prop_map(|(trace_id, parent_span)| Request::Traced {
            trace_id,
            parent_span,
            inner: Box::new(Request::Catalog),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A tenant wrapper survives encode→decode byte-faithfully for any
    /// tenant string (unicode included), and the cheap peek used at
    /// admission sees the same identity without a full decode.
    #[test]
    fn tenant_wrapper_round_trips_and_peeks(
        tenant in tenant_id(),
        inner in inner_request(),
    ) {
        let req = Request::Tenant { tenant: tenant.clone(), inner: Box::new(inner) };
        let (k, payload) = encode_request(&req);
        prop_assert_eq!(k, kind::TENANT);
        let decoded = decode_request(k, &payload).unwrap();
        prop_assert_eq!(&decoded, &req);
        let peek = peek_frame(k, &payload);
        prop_assert_eq!(peek.tenant.as_deref(), Some(tenant.as_str()));
        prop_assert_eq!(peek.tag, None);
    }

    /// Wrapping already-encoded bytes (the client's clone-free path)
    /// produces the exact wire image of encoding the wrapped request —
    /// old and new encoders can never disagree.
    #[test]
    fn clone_free_wrapping_matches_direct_encoding(
        tenant in tenant_id(),
        inner in inner_request(),
    ) {
        let (ik, ipayload) = encode_request(&inner);
        let wrapped = encode_tenant_wrapped(&tenant, ik, &ipayload);
        let direct =
            encode_request(&Request::Tenant { tenant, inner: Box::new(inner) });
        prop_assert_eq!(wrapped, direct);
    }

    /// Old→new compatibility: untagged frames from a pre-tenant client
    /// decode unchanged, and the peek reports no tenant (so the server
    /// falls back to the peer address, the pre-tenant behaviour).
    #[test]
    fn untagged_frames_decode_as_before(inner in inner_request()) {
        let (k, payload) = encode_request(&inner);
        prop_assert_eq!(decode_request(k, &payload).unwrap(), inner);
        prop_assert_eq!(peek_frame(k, &payload).tenant, None);
    }

    /// New→old shape guarantee: the tenant wrapper adds exactly the tag
    /// prefix (len + utf8 + kind byte + block header) in front of the
    /// unchanged inner bytes, so a reader that strips the prefix sees a
    /// byte-identical pre-tenant frame.
    #[test]
    fn wrapper_embeds_inner_bytes_verbatim(
        tenant in tenant_id(),
        inner in inner_request(),
    ) {
        let (ik, ipayload) = encode_request(&inner);
        let (_, wrapped) =
            encode_tenant_wrapped(&tenant, ik, &ipayload);
        let prefix = 4 + tenant.len() + 1 + 4;
        prop_assert_eq!(wrapped.len(), prefix + ipayload.len());
        prop_assert_eq!(wrapped[4 + tenant.len()], ik);
        prop_assert_eq!(&wrapped[prefix..], &ipayload[..]);
    }

    /// Truncating a tagged frame at any point is an error from the full
    /// decoder and a graceful non-panic from the peek.
    #[test]
    fn truncated_tagged_frames_error_and_peek_never_panics(
        tenant in tenant_id(),
        inner in inner_request(),
        frac in 0.0f64..1.0,
    ) {
        let (k, payload) =
            encode_request(&Request::Tenant { tenant, inner: Box::new(inner) });
        let cut = ((payload.len() as f64) * frac) as usize; // always < len
        prop_assert!(decode_request(k, &payload[..cut]).is_err());
        let _ = peek_frame(k, &payload[..cut]);
    }

    /// Arbitrary bytes presented as a tenant frame never panic either
    /// decoder, and a self-nested tenant tag is always rejected.
    #[test]
    fn malformed_tagged_frames_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        tenant in tenant_id(),
    ) {
        let _ = decode_request(kind::TENANT, &bytes);
        let _ = peek_frame(kind::TENANT, &bytes);
        // Hand-build Tenant{Tenant{Hello}} — illegal nesting.
        let (ik, ipayload) = encode_request(&Request::Hello);
        let (nk, nested) = encode_tenant_wrapped(&tenant, ik, &ipayload);
        let (ok, outer) = encode_tenant_wrapped(&tenant, nk, &nested);
        prop_assert!(decode_request(ok, &outer).is_err());
    }
}
