//! Property tests for the `bda-net` frame codec: network bytes are
//! adversarial input, so decoding must round-trip faithfully and must
//! fail *as an error* — never a panic — on anything malformed.

use bda_net::frame::{read_message, write_message, FrameError, FLAG_MORE, HEADER_LEN};
use proptest::prelude::*;

/// Hand-encode one frame so tests can build wire images `write_message`
/// itself would never produce (bad flags, tiny continuation chains, …).
fn raw_frame(kind: u8, flags: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = vec![kind, flags];
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any `(kind, payload)` survives the wire byte-identically, and both
    /// sides agree on how many bytes it occupied.
    #[test]
    fn round_trips_arbitrary_payloads(
        kind in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let mut wire = Vec::new();
        let written = write_message(&mut wire, kind, &payload).unwrap();
        prop_assert_eq!(written as usize, wire.len());
        let (k, p, consumed) = read_message(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(k, kind);
        prop_assert_eq!(p, payload);
        prop_assert_eq!(consumed as usize, wire.len());
    }

    /// A message split across many continuation frames reassembles
    /// byte-identically — the multi-frame dataset path in miniature.
    #[test]
    fn multi_frame_message_reassembles_byte_identically(
        kind in any::<u8>(),
        chunks in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..64),
            1..12,
        ),
    ) {
        let mut wire = Vec::new();
        for (i, chunk) in chunks.iter().enumerate() {
            let flags = if i + 1 < chunks.len() { FLAG_MORE } else { 0 };
            wire.extend_from_slice(&raw_frame(kind, flags, chunk));
        }
        let (k, p, consumed) = read_message(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(k, kind);
        prop_assert_eq!(p, chunks.concat());
        prop_assert_eq!(consumed as usize, wire.len());
    }

    /// Cutting a valid wire image anywhere before its end is an I/O
    /// error (truncation), never a panic and never a bogus success.
    #[test]
    fn truncated_wire_is_an_error_at_every_cut(
        kind in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
        frac in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        write_message(&mut wire, kind, &payload).unwrap();
        let cut = ((wire.len() as f64) * frac) as usize; // always < len
        let err = read_message(&mut &wire[..cut]).unwrap_err();
        prop_assert!(matches!(err, FrameError::Io(_)), "cut {}: {}", cut, err);
    }

    /// A header that declares an over-limit payload is rejected before
    /// any allocation of that size.
    #[test]
    fn oversized_declared_length_is_an_error(
        kind in any::<u8>(),
        excess in 1u32..1025,
    ) {
        let len = bda_net::MAX_FRAME_PAYLOAD as u32 + excess;
        let mut wire = vec![kind, 0];
        wire.extend_from_slice(&len.to_le_bytes());
        prop_assert!(matches!(
            read_message(&mut wire.as_slice()),
            Err(FrameError::OversizedFrame { .. })
        ));
    }

    /// Arbitrary garbage never panics the decoder: it either parses as
    /// some message or returns an error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_message(&mut bytes.as_slice());
    }

    /// Flipping one byte of a valid image never panics, and header
    /// corruption in the flag byte is flagged explicitly.
    #[test]
    fn single_byte_corruption_never_panics(
        payload in prop::collection::vec(any::<u8>(), 1..128),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..255,
    ) {
        let mut wire = Vec::new();
        write_message(&mut wire, 2, &payload).unwrap();
        let pos = ((wire.len() as f64) * pos_frac) as usize;
        wire[pos] ^= xor;
        if let Ok((k, p, _)) = read_message(&mut wire.as_slice()) {
            // Only payload or kind corruption can still parse.
            prop_assert!(pos == 0 || pos >= HEADER_LEN);
            if pos >= HEADER_LEN {
                prop_assert_eq!(k, 2);
                prop_assert_eq!(p.len(), payload.len());
            }
        }
    }
}
