//! End-to-end test of the `bda-served` **binary**: two genuinely
//! separate OS processes serve engines over loopback TCP, and a client
//! in this process queries them and triggers a direct process-to-process
//! transfer. This is the README quick-start, automated.

use std::io::BufRead;
use std::process::{Child, Command, Stdio};

use bda_core::{col, lit, Plan, Provider};
use bda_net::RemoteProvider;

struct Served(Child);

impl Served {
    /// Launch `bda-served` on an OS-assigned port and wait for its
    /// "listening on" line to learn the address.
    fn launch(engine: &str, name: &str) -> (Served, String) {
        let mut child = Command::new(env!("CARGO_BIN_EXE_bda-served"))
            .args([
                "--engine",
                engine,
                "--name",
                name,
                "--listen",
                "127.0.0.1:0",
                "--demo",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn bda-served");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("server prints a banner")
            .expect("readable banner");
        let addr = banner
            .rsplit("listening on ")
            .next()
            .expect("banner names the address")
            .trim()
            .to_string();
        (Served(child), addr)
    }
}

impl Drop for Served {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn two_server_processes_answer_queries_and_push_directly() {
    let (_rel_proc, rel_addr) = Served::launch("relational", "rel");
    let (_la_proc, la_addr) = Served::launch("linalg", "la");

    let rel = RemoteProvider::connect(rel_addr).expect("connect to rel process");
    let la = RemoteProvider::connect(la_addr).expect("connect to la process");
    assert_eq!(rel.name(), "rel");
    assert_eq!(la.name(), "la");

    // Query the relational process's demo table.
    let sales_schema = rel.schema_of("sales").expect("demo table present");
    let out = rel
        .execute(&Plan::scan("sales", sales_schema).select(col("v").gt(lit(15.0))))
        .expect("remote filter");
    assert_eq!(out.num_rows(), 3);

    // Query the linalg process's demo matrix.
    let m_schema = la.schema_of("m").expect("demo matrix present");
    let m = la.execute(&Plan::scan("m", m_schema.clone())).unwrap();
    assert_eq!(m.num_rows(), 6);

    // Direct process-to-process transfer: la pushes its matrix to rel
    // without the bytes passing through this (client) process.
    let pushed = la
        .execute_push(&Plan::scan("m", m_schema), rel.addr(), "m_copy")
        .expect("remote providers support push")
        .expect("push succeeds");
    assert!(pushed > 0, "push reports wire bytes");
    let copied = rel
        .execute(&Plan::scan("m_copy", rel.schema_of("m_copy").unwrap()))
        .unwrap();
    assert_eq!(copied.num_rows(), 6);
}
