//! # `bda-net`: a real TCP transport for the federation
//!
//! The rest of the workspace *simulates* the network (deterministic
//! byte-accounting in `bda-federation`). This crate makes the federation
//! run **multi-process**: any registered engine can be served behind a
//! TCP listener ([`serve`] or the `bda-served` binary), and the
//! application tier reaches it through a [`RemoteProvider`] that
//! implements `bda_core::Provider` — so remote engines register in a
//! `Federation` exactly like in-process ones.
//!
//! Three layers:
//!
//! * [`frame`] — length-prefixed framing with multi-frame reassembly;
//!   strictly checked, panic-free decoding.
//! * [`proto`] — the request/response messages, reusing the existing
//!   plan (`BDAP`) and dataset (`BDA1`) wire codecs as payloads.
//! * [`server`] / [`client`] — a thread-per-connection provider server
//!   and a pooled, retrying client.
//!
//! The server also implements the paper's desideratum 4 for real: an
//! `ExecutePush` request makes it deliver its result *directly to a peer
//! server*, so with `TransferMode::RemoteTcp` intermediate results never
//! pass through the application tier, even physically.

pub mod client;
pub mod frame;
pub mod handler;
pub mod pipeline;
pub mod proto;
pub mod server;

pub use client::{jittered, RemoteOptions, RemoteProvider, RetryPolicy};
pub use frame::{
    read_message_limited, FrameError, FLAG_MORE, HEADER_LEN, MAX_FRAME_PAYLOAD, MAX_MESSAGE_BYTES,
};
pub use handler::RequestHandler;
pub use pipeline::{Pending, PipelinedClient};
pub use proto::{CatalogEntry, Request, Response};
pub use server::{
    serve, serve_durable_with_faults, serve_with, serve_with_faults, LogSink, NetFaults,
    ServeOptions, ServerHandle,
};

// The disk half of the chaos surface, re-exported so chaos tests
// configure transport and disk faults from one import.
pub use bda_durability::Options as DurabilityOptions;
pub use bda_durability::{DiskFaults, DurableProvider, FsyncPolicy, RecoveryReport};

/// Result alias matching the rest of the workspace.
pub type Result<T> = std::result::Result<T, bda_core::CoreError>;

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{col, lit, Plan, Provider, ReferenceProvider};
    use bda_storage::{Column, DataSet};
    use std::sync::Arc;

    fn sample() -> DataSet {
        DataSet::from_columns(vec![
            ("k", Column::from(vec![1i64, 2, 3, 4])),
            ("v", Column::from(vec![1.0f64, 2.0, 3.0, 4.0])),
        ])
        .unwrap()
    }

    #[test]
    fn remote_provider_round_trip() {
        let engine = Arc::new(ReferenceProvider::new("ref"));
        engine.store("t", sample()).unwrap();
        let server = serve(engine, "127.0.0.1:0").unwrap();
        let remote = RemoteProvider::connect(server.addr().to_string()).unwrap();

        assert_eq!(remote.name(), "ref");
        assert!(!remote.capabilities().is_empty());
        let catalog = remote.catalog();
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog[0].0, "t");

        let plan = Plan::scan("t", catalog[0].1.clone()).select(col("v").gt(lit(2.0)));
        let out = remote.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 2);

        remote.store("u", sample()).unwrap();
        assert_eq!(remote.catalog().len(), 2);
        remote.remove("u");
        assert_eq!(remote.catalog().len(), 1);

        let (sent, received) = remote.wire_bytes();
        assert!(sent > 0 && received > 0, "wire bytes counted");
    }

    #[test]
    fn remote_errors_propagate_not_panic() {
        let engine = Arc::new(ReferenceProvider::new("ref"));
        let server = serve(engine, "127.0.0.1:0").unwrap();
        let remote = RemoteProvider::connect(server.addr().to_string()).unwrap();
        let schema = sample().schema().clone();
        let err = remote.execute(&Plan::scan("missing", schema)).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn push_moves_data_server_to_server() {
        let a = Arc::new(ReferenceProvider::new("a"));
        a.store("t", sample()).unwrap();
        let b = Arc::new(ReferenceProvider::new("b"));
        let server_a = serve(a, "127.0.0.1:0").unwrap();
        let server_b = serve(Arc::clone(&b) as Arc<dyn Provider>, "127.0.0.1:0").unwrap();

        let remote_a = RemoteProvider::connect(server_a.addr().to_string()).unwrap();
        let schema = sample().schema().clone();
        let plan = Plan::scan("t", schema).select(col("k").gt(lit(1i64)));
        let pushed = remote_a
            .execute_push(&plan, &server_b.addr().to_string(), "staged")
            .expect("remote providers support push")
            .unwrap();
        assert!(pushed > 0);
        // The data landed on b without touching this process's client.
        let staged = b.execute(&Plan::scan("staged", sample().schema().clone()));
        assert_eq!(staged.unwrap().num_rows(), 3);
    }

    #[test]
    fn store_partition_tags_each_piece_with_its_index() {
        let engine = Arc::new(ReferenceProvider::new("ref"));
        let server = serve(Arc::clone(&engine) as Arc<dyn Provider>, "127.0.0.1:0").unwrap();
        let remote = RemoteProvider::connect(server.addr().to_string()).unwrap();

        let all = sample();
        let rows = all.rows().unwrap();
        let left = DataSet::from_rows(all.schema().clone(), &rows[..2]).unwrap();
        let right = DataSet::from_rows(all.schema().clone(), &rows[2..]).unwrap();
        remote.store_partition("staged", 0, left).unwrap();
        remote.store_partition("staged", 1, right).unwrap();

        let mut names: Vec<String> = remote.catalog().into_iter().map(|(n, _)| n).collect();
        names.sort();
        assert_eq!(names, vec!["staged.p0", "staged.p1"]);
        // Each tagged partition scans independently on the server.
        let p1 = engine
            .execute(&Plan::scan("staged.p1", sample().schema().clone()))
            .unwrap();
        assert_eq!(p1.num_rows(), 2);
        remote.remove("staged.p0");
        remote.remove("staged.p1");
        assert!(remote.catalog().is_empty());
    }

    #[test]
    fn connect_to_dead_server_errors_after_retries() {
        // Bind then drop a listener so the port is (very likely) closed.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let opts = RemoteOptions {
            timeout: std::time::Duration::from_millis(200),
            retry: RetryPolicy {
                attempts: 2,
                initial_backoff: std::time::Duration::from_millis(1),
            },
            ..RemoteOptions::default()
        };
        let err = RemoteProvider::connect_with(format!("127.0.0.1:{port}"), opts).unwrap_err();
        assert!(err.to_string().contains("2 attempts"), "{err}");
    }

    #[test]
    fn shutdown_is_idempotent_and_joins() {
        let engine = Arc::new(ReferenceProvider::new("ref"));
        let mut server = serve(engine, "127.0.0.1:0").unwrap();
        server.shutdown();
        server.shutdown();
    }

    #[test]
    fn metrics_endpoint_renders_prometheus_text() {
        let engine = Arc::new(ReferenceProvider::new("ref"));
        engine.store("t", sample()).unwrap();
        let server = serve(engine, "127.0.0.1:0").unwrap();
        let remote = RemoteProvider::connect(server.addr().to_string()).unwrap();
        let plan = Plan::scan("t", sample().schema().clone());
        remote.execute(&plan).unwrap();
        remote.execute(&plan).unwrap();
        let text = remote.metrics_text().unwrap();
        assert!(
            text.contains("bda_net_requests_total{kind=\"execute\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("bda_net_requests_total{kind=\"hello\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE bda_net_requests_total counter"),
            "{text}"
        );
        assert!(
            text.contains("bda_net_request_duration_seconds_count"),
            "{text}"
        );
        assert!(
            text.contains("bda_net_wire_bytes_total{direction=\"received\"}"),
            "{text}"
        );
    }

    #[test]
    fn traced_execute_returns_server_side_spans() {
        let engine = Arc::new(ReferenceProvider::new("ref"));
        engine.store("t", sample()).unwrap();
        let server = serve(engine, "127.0.0.1:0").unwrap();
        let remote = RemoteProvider::connect(server.addr().to_string()).unwrap();
        let plan = Plan::scan("t", sample().schema().clone()).select(col("v").gt(lit(2.0)));
        let ctx = bda_obs::TraceContext {
            trace_id: 0xFEED,
            parent_span: 7,
        };
        let (out, spans) = remote.execute_traced(&plan, &ctx).unwrap();
        assert_eq!(out.num_rows(), 2);
        let serve_span = spans
            .iter()
            .find(|s| s.name == "serve:execute")
            .expect("serve span present");
        assert_eq!(serve_span.site, "ref");
        assert_eq!(serve_span.rows, Some(2));
        // The engine's per-operator spans came along, parented under it.
        let ops: Vec<&str> = spans
            .iter()
            .filter(|s| s.name.starts_with("op:"))
            .map(|s| s.name.as_str())
            .collect();
        assert!(ops.contains(&"op:select"), "{ops:?}");
        assert!(ops.contains(&"op:scan"), "{ops:?}");
        for s in spans.iter().filter(|s| s.name.starts_with("op:")) {
            assert!(s.parent.is_some(), "op spans hang off the serve span");
        }
    }

    #[test]
    fn traced_errors_still_surface_as_core_errors() {
        let engine = Arc::new(ReferenceProvider::new("ref"));
        let server = serve(engine, "127.0.0.1:0").unwrap();
        let remote = RemoteProvider::connect(server.addr().to_string()).unwrap();
        let ctx = bda_obs::TraceContext {
            trace_id: 1,
            parent_span: 0,
        };
        let plan = Plan::scan("missing", sample().schema().clone());
        let err = remote.execute_traced(&plan, &ctx).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn request_log_writes_one_line_per_request() {
        let path = std::env::temp_dir().join(format!(
            "bda-served-log-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let engine = Arc::new(ReferenceProvider::new("ref"));
            engine.store("t", sample()).unwrap();
            let server = serve_with(
                engine,
                "127.0.0.1:0",
                ServeOptions {
                    log: Some(LogSink::File(path.clone())),
                    ..ServeOptions::default()
                },
            )
            .unwrap();
            let remote = RemoteProvider::connect(server.addr().to_string()).unwrap();
            remote
                .execute(&Plan::scan("t", sample().schema().clone()))
                .unwrap();
            let missing = Plan::scan("missing", sample().schema().clone());
            remote.execute(&missing).unwrap_err();
        }
        let log = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = log.lines().collect();
        // Hello + 1 ok execute + 3 failed execute attempts (client retries).
        assert!(lines.len() >= 3, "{log}");
        let ok = lines
            .iter()
            .find(|l| l.contains("kind=execute") && l.contains("outcome=ok"))
            .expect("successful execute logged");
        for key in [
            "server=ref",
            "dur_us=",
            "req_bytes=",
            "resp_bytes=",
            "traced=false",
        ] {
            assert!(ok.contains(key), "{ok}");
        }
        assert!(
            lines
                .iter()
                .any(|l| l.contains("kind=execute") && l.contains("outcome=error")),
            "{log}"
        );
    }
}
