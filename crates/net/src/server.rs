//! The server side: wrap any `Provider` behind a TCP listener speaking
//! the framed protocol. One OS thread accepts; one thread per
//! connection serves requests until the peer hangs up or the server
//! shuts down.
//!
//! Observability (see DESIGN.md, "Observability"):
//!
//! * Every server keeps a [`MetricsHub`] — request counts, errors,
//!   latency histogram, wire bytes — rendered in Prometheus text format
//!   by a [`Request::Metrics`] message (the `GET /metrics` of this
//!   protocol).
//! * A [`Request::Traced`] wrapper makes the server record spans
//!   (`serve:<kind>` plus the engine's per-operator spans) and return
//!   them in [`Response::Traced`], so the client can stitch one
//!   cross-process timeline. A traced push forwards the trace to the
//!   peer server, whose spans flow back the same way.
//! * [`ServeOptions::log`] emits one structured line per request (kind,
//!   duration, bytes, outcome) to stderr or a file.
//!
//! For chaos testing, [`serve_with_faults`] injects seeded transport
//! faults *below* the protocol: responses are dropped (connection closed
//! without a reply) or truncated mid-frame, which clients must survive
//! via their retry-and-redial machinery.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bda_core::Provider;
use bda_obs::{MetricsHub, TraceContext, Tracer};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::frame::{read_message, write_message, HEADER_LEN, MAX_FRAME_PAYLOAD};
use crate::proto::{
    decode_request, encode_request, encode_response, CatalogEntry, Request, Response,
};
use crate::Result;

/// How long a connection handler blocks in a read before re-checking the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Timeout for the outbound connection a push opens to a peer.
const PUSH_TIMEOUT: Duration = Duration::from_secs(30);

/// A running provider server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: MetricsHub,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Seeded transport-level fault injection for a server (chaos testing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaults {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability a response is dropped: the connection closes without a
    /// reply, which the client sees as an EOF / reset.
    pub drop_rate: f64,
    /// Probability a response is truncated mid-frame before the
    /// connection closes — the client's frame reader must error cleanly.
    pub truncate_rate: f64,
}

impl NetFaults {
    /// Drop and truncate responses, each at rate `p`, seeded.
    pub fn new(seed: u64, p: f64) -> NetFaults {
        NetFaults {
            seed,
            drop_rate: p,
            truncate_rate: p,
        }
    }
}

/// Where the per-request log lines go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogSink {
    /// Write to the server process's stderr.
    Stderr,
    /// Append to the file at this path (created if absent).
    File(PathBuf),
}

/// Server configuration beyond the bind address.
#[derive(Clone, Default)]
pub struct ServeOptions {
    /// Transport-level fault injection (chaos testing).
    pub faults: Option<NetFaults>,
    /// Per-request structured logging: one `key=value` line per request.
    pub log: Option<LogSink>,
    /// Share an existing metrics hub instead of creating a fresh one —
    /// the HTTP ops server (`bda-served --http`) passes the same hub so
    /// `GET /metrics` scrapes this server's request metrics.
    pub metrics: Option<MetricsHub>,
}

/// The shared fault stream: one RNG across all of a server's connections
/// so the injected sequence is a function of the seed and the global
/// response order.
struct FaultState {
    faults: NetFaults,
    rng: Mutex<StdRng>,
}

/// What the fault hook decided for one response.
enum FaultAction {
    Deliver,
    Drop,
    Truncate,
}

impl FaultState {
    fn decide(&self) -> FaultAction {
        let mut rng = self.rng.lock().expect("fault rng poisoned");
        if self.faults.drop_rate > 0.0 && rng.gen_bool(self.faults.drop_rate) {
            return FaultAction::Drop;
        }
        if self.faults.truncate_rate > 0.0 && rng.gen_bool(self.faults.truncate_rate) {
            return FaultAction::Truncate;
        }
        FaultAction::Deliver
    }
}

/// Everything a connection handler needs: the engine, the metrics
/// registry, and the optional request log.
struct ServerState {
    engine: Arc<dyn Provider>,
    metrics: MetricsHub,
    log: Option<Mutex<Box<dyn Write + Send>>>,
}

/// Serve `engine` on `bind` (e.g. `"127.0.0.1:0"` for an ephemeral
/// port). Returns once the listener is bound; requests are handled on
/// background threads.
pub fn serve(engine: Arc<dyn Provider>, bind: &str) -> std::io::Result<ServerHandle> {
    serve_with(engine, bind, ServeOptions::default())
}

/// [`serve`] with transport-level fault injection — responses are
/// dropped or truncated per the seeded [`NetFaults`] stream.
pub fn serve_with_faults(
    engine: Arc<dyn Provider>,
    bind: &str,
    faults: NetFaults,
) -> std::io::Result<ServerHandle> {
    serve_with(
        engine,
        bind,
        ServeOptions {
            faults: Some(faults),
            ..ServeOptions::default()
        },
    )
}

/// [`serve`] with full [`ServeOptions`].
pub fn serve_with(
    engine: Arc<dyn Provider>,
    bind: &str,
    opts: ServeOptions,
) -> std::io::Result<ServerHandle> {
    let faults = opts.faults.map(|faults| {
        Arc::new(FaultState {
            rng: Mutex::new(StdRng::seed_from_u64(faults.seed)),
            faults,
        })
    });
    let log: Option<Mutex<Box<dyn Write + Send>>> = match opts.log {
        None => None,
        Some(LogSink::Stderr) => Some(Mutex::new(Box::new(std::io::stderr()))),
        Some(LogSink::File(path)) => {
            let f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            Some(Mutex::new(Box::new(f)))
        }
    };
    let state = Arc::new(ServerState {
        engine,
        metrics: opts.metrics.unwrap_or_default(),
        log,
    });
    let metrics = state.metrics.clone();
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_shutdown = Arc::clone(&shutdown);
    let accept_thread = std::thread::Builder::new()
        .name(format!("bda-served-{}", state.engine.name()))
        .spawn(move || accept_loop(listener, state, accept_shutdown, faults))?;
    Ok(ServerHandle {
        addr,
        metrics,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

impl ServerHandle {
    /// The bound address (resolves the port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics hub (shared: the same cells the connection
    /// handlers update). An HTTP ops server can render it directly.
    pub fn metrics(&self) -> MetricsHub {
        self.metrics.clone()
    }

    /// Stop accepting, wake the accept thread, and join it. Connection
    /// handlers notice the flag within [`POLL_INTERVAL`] and exit.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Self-connect to unblock the accept() call.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    faults: Option<Arc<FaultState>>,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        let conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => continue,
        };
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let conn_state = Arc::clone(&state);
        let conn_shutdown = Arc::clone(&shutdown);
        let conn_faults = faults.clone();
        if let Ok(h) = std::thread::Builder::new()
            .name("bda-served-conn".to_string())
            .spawn(move || handle_connection(conn, conn_state, conn_shutdown, conn_faults))
        {
            handlers.push(h);
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// The short request-kind label used in metrics and log lines.
fn request_kind(req: &Request) -> &'static str {
    match req {
        Request::Hello => "hello",
        Request::Execute { .. } => "execute",
        Request::ExecuteStore { .. } => "execute-store",
        Request::ExecutePush { .. } => "execute-push",
        Request::Store { .. } => "store",
        Request::StorePart { .. } => "store-part",
        Request::Remove { .. } => "remove",
        Request::Catalog => "catalog",
        Request::Metrics => "metrics",
        // A traced wrapper is labelled by the work it carries.
        Request::Traced { inner, .. } => request_kind(inner),
    }
}

/// Wire size of a `len`-byte payload after framing (header per frame).
fn framed_size(len: usize) -> u64 {
    let frames = len.div_ceil(MAX_FRAME_PAYLOAD).max(1);
    (len + frames * HEADER_LEN) as u64
}

impl ServerState {
    /// Charge one handled request to the metrics registry and the log.
    fn observe(&self, kind: &str, traced: bool, dur: Duration, req_bytes: u64, resp: &Response) {
        let m = &self.metrics;
        let (outcome, resp_bytes) = {
            let (_, payload) = encode_response_size(resp);
            (response_outcome(resp), payload)
        };
        m.counter_labeled(
            "bda_net_requests_total",
            &[("kind", kind)],
            "Requests handled, by kind.",
        )
        .inc();
        if outcome == "error" {
            m.counter_labeled(
                "bda_net_request_errors_total",
                &[("kind", kind)],
                "Requests answered with an error, by kind.",
            )
            .inc();
            bda_obs::flight::global().record(self.engine.name(), || {
                format!("request kind={kind} answered with an error")
            });
        }
        m.histogram(
            "bda_net_request_duration_seconds",
            "Wall time to handle one request.",
        )
        .observe_ns(dur.as_nanos() as u64);
        m.counter_labeled(
            "bda_net_wire_bytes_total",
            &[("direction", "received")],
            "Framed bytes moved over this server's connections.",
        )
        .add(req_bytes);
        m.counter_labeled(
            "bda_net_wire_bytes_total",
            &[("direction", "sent")],
            "Framed bytes moved over this server's connections.",
        )
        .add(resp_bytes);
        if let Some(log) = &self.log {
            let mut w = log.lock().expect("request log poisoned");
            let _ = writeln!(
                w,
                "server={} kind={} traced={} dur_us={} req_bytes={} resp_bytes={} outcome={}",
                self.engine.name(),
                kind,
                traced,
                dur.as_micros(),
                req_bytes,
                resp_bytes,
                outcome,
            )
            .and_then(|_| w.flush());
        }
    }
}

/// Encoded-response size without keeping the encoding (the connection
/// handler re-encodes; responses are encoded at most twice, and the log
/// and metrics want the size before the fault hook may drop the reply).
fn encode_response_size(resp: &Response) -> (u8, u64) {
    let (kind, payload) = encode_response(resp);
    (kind, framed_size(payload.len()))
}

/// The log/metrics outcome of a response (looks through `Traced`).
fn response_outcome(resp: &Response) -> &'static str {
    match resp {
        Response::Error { .. } => "error",
        Response::Traced { inner, .. } => response_outcome(inner),
        _ => "ok",
    }
}

fn handle_connection(
    mut conn: TcpStream,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    faults: Option<Arc<FaultState>>,
) {
    let _ = conn.set_nodelay(true);
    while !shutdown.load(Ordering::SeqCst) {
        // Idle phase: peek (non-consuming) with a short timeout so the
        // shutdown flag is observed promptly and a timeout can never
        // desynchronize a half-read message.
        if conn.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
            return;
        }
        match conn.peek(&mut [0u8; 1]) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
        // Data ready: read the whole message with the generous timeout.
        if conn.set_read_timeout(Some(PUSH_TIMEOUT)).is_err() {
            return;
        }
        let (kind, payload, req_bytes) = match read_message(&mut conn) {
            Ok(got) => got,
            // Peer hung up, stalled, or sent garbage: close.
            Err(_) => return,
        };
        let started = std::time::Instant::now();
        let (label, traced, response) = match decode_request(kind, &payload) {
            Ok(req) => {
                let resp =
                    handle_request(&state, &req).unwrap_or_else(|e| Response::from_error(&e));
                (
                    request_kind(&req),
                    matches!(req, Request::Traced { .. }),
                    resp,
                )
            }
            Err(e) => ("malformed", false, Response::from_error(&e)),
        };
        state.observe(label, traced, started.elapsed(), req_bytes, &response);
        let (rkind, rpayload) = encode_response(&response);
        match faults.as_ref().map(|f| f.decide()) {
            Some(FaultAction::Drop) => return, // close without replying
            Some(FaultAction::Truncate) => {
                // Encode the full reply but put only half its bytes on
                // the wire, then close: a mid-frame disconnect.
                let mut wire = Vec::new();
                if write_message(&mut wire, rkind, &rpayload).is_err() {
                    return;
                }
                let half = &wire[..wire.len() / 2];
                let _ = conn.write_all(half).and_then(|_| conn.flush());
                return;
            }
            Some(FaultAction::Deliver) | None => {}
        }
        if write_message(&mut conn, rkind, &rpayload)
            .and_then(|_| conn.flush())
            .is_err()
        {
            return;
        }
    }
}

fn handle_request(state: &ServerState, req: &Request) -> Result<Response> {
    let engine = state.engine.as_ref();
    Ok(match req {
        Request::Hello => Response::Hello {
            name: engine.name().to_string(),
            capabilities: engine.capabilities(),
        },
        Request::Execute { plan } => Response::DataSet(engine.execute(plan)?),
        Request::ExecuteStore { name, plan } => {
            let out = engine.execute(plan)?;
            engine.store(name, out)?;
            Response::Ack
        }
        Request::ExecutePush {
            dest_addr,
            dest_name,
            plan,
        } => {
            let out = engine.execute(plan)?;
            let bytes = push_to_peer(dest_addr, dest_name, out, &Tracer::disabled(), None)?;
            Response::Pushed { bytes }
        }
        Request::Store { name, data } => {
            engine.store(name, data.clone())?;
            Response::Ack
        }
        Request::StorePart {
            name,
            partition,
            data,
        } => {
            // Partition-tagged staging: each partition is addressable on
            // its own, so parallel producers never contend on one name.
            engine.store(&format!("{name}.p{partition}"), data.clone())?;
            Response::Ack
        }
        Request::Remove { name } => {
            engine.remove(name);
            Response::Ack
        }
        Request::Catalog => Response::Catalog(
            engine
                .catalog()
                .into_iter()
                .map(|(name, schema)| CatalogEntry {
                    rows: engine.row_count_of(&name).map(|n| n as u64),
                    name,
                    schema,
                })
                .collect(),
        ),
        Request::Metrics => Response::Text(state.metrics.render()),
        Request::Traced {
            trace_id, inner, ..
        } => {
            // The client does the stitching: server-side spans go back
            // rootless (in this server's own id/clock space) and the
            // client remaps, anchors, and parents them. Errors still
            // travel inside `Traced` so the spans survive the failure.
            let tracer = Tracer::with_trace_id(*trace_id);
            let resp =
                handle_traced(state, &tracer, inner).unwrap_or_else(|e| Response::from_error(&e));
            Response::Traced {
                spans: tracer.take_spans(),
                inner: Box::new(resp),
            }
        }
    })
}

/// Handle the request inside a [`Request::Traced`] wrapper under a
/// `serve:<kind>` span, using the engine's traced entry points so its
/// per-operator spans land in the same trace.
fn handle_traced(state: &ServerState, tracer: &Tracer, req: &Request) -> Result<Response> {
    let engine = state.engine.as_ref();
    let mut serve = tracer.start(
        None,
        || format!("serve:{}", request_kind(req)),
        engine.name(),
    );
    let ctx = TraceContext {
        trace_id: tracer.trace_id(),
        parent_span: serve.id().unwrap_or(0),
    };
    let resp = match req {
        Request::Execute { plan } => {
            let anchor = tracer.now_ns();
            let (out, spans) = engine.execute_traced(plan, &ctx)?;
            tracer.absorb_remote(spans, serve.id(), anchor);
            serve.set_rows(out.num_rows());
            Response::DataSet(out)
        }
        Request::ExecuteStore { name, plan } => {
            let anchor = tracer.now_ns();
            let (out, spans) = engine.execute_traced(plan, &ctx)?;
            tracer.absorb_remote(spans, serve.id(), anchor);
            serve.set_rows(out.num_rows());
            engine.store(name, out)?;
            Response::Ack
        }
        Request::ExecutePush {
            dest_addr,
            dest_name,
            plan,
        } => {
            let anchor = tracer.now_ns();
            let (out, spans) = engine.execute_traced(plan, &ctx)?;
            tracer.absorb_remote(spans, serve.id(), anchor);
            serve.set_rows(out.num_rows());
            let bytes = push_to_peer(dest_addr, dest_name, out, tracer, serve.id())?;
            serve.set_bytes(bytes);
            Response::Pushed { bytes }
        }
        // Control-plane work under the serve span, no deeper spans.
        other => handle_request(state, other)?,
    };
    serve.finish();
    Ok(resp)
}

/// The direct server-to-server hop: open a connection to the peer and
/// store the dataset there, bypassing the application tier entirely.
/// Returns the framed bytes sent to the peer. With an enabled `tracer`
/// the store is wrapped in [`Request::Traced`] so the *peer's* spans
/// come back and land under `parent` in this trace.
fn push_to_peer(
    dest_addr: &str,
    dest_name: &str,
    data: bda_storage::DataSet,
    tracer: &Tracer,
    parent: Option<u64>,
) -> Result<u64> {
    use bda_core::CoreError;
    let net = |e: std::io::Error| CoreError::Net(format!("push to {dest_addr}: {e}"));
    let addrs: Vec<SocketAddr> = std::net::ToSocketAddrs::to_socket_addrs(dest_addr)
        .map_err(net)?
        .collect();
    let addr = addrs
        .first()
        .ok_or_else(|| CoreError::Net(format!("no address for peer {dest_addr}")))?;
    let mut conn = TcpStream::connect_timeout(addr, PUSH_TIMEOUT).map_err(net)?;
    conn.set_read_timeout(Some(PUSH_TIMEOUT)).map_err(net)?;
    conn.set_write_timeout(Some(PUSH_TIMEOUT)).map_err(net)?;
    let store = Request::Store {
        name: dest_name.to_string(),
        data,
    };
    let req = if tracer.is_enabled() {
        Request::Traced {
            trace_id: tracer.trace_id(),
            parent_span: parent.unwrap_or(0),
            inner: Box::new(store),
        }
    } else {
        store
    };
    let anchor = tracer.now_ns();
    let (kind, payload) = encode_request(&req);
    let sent = write_message(&mut conn, kind, &payload).map_err(net)?;
    conn.flush().map_err(net)?;
    let (rkind, rpayload, _) =
        read_message(&mut conn).map_err(|e| CoreError::Net(format!("push to {dest_addr}: {e}")))?;
    let mut resp = crate::proto::decode_response(rkind, &rpayload)?;
    if let Response::Traced { spans, inner } = resp {
        tracer.absorb_remote(spans, parent, anchor);
        resp = *inner;
    }
    match resp {
        Response::Ack => Ok(sent),
        Response::Error { msg, transient } if transient => Err(CoreError::transient(
            CoreError::Net(format!("peer {dest_addr}: {msg}")),
        )),
        Response::Error { msg, .. } => Err(CoreError::Remote {
            addr: dest_addr.to_string(),
            msg,
        }),
        other => Err(CoreError::Net(format!(
            "unexpected push response: {other:?}"
        ))),
    }
}
