//! The server side: wrap any `Provider` behind a TCP listener speaking
//! the framed protocol. One OS thread accepts; one thread per
//! connection serves requests until the peer hangs up or the server
//! shuts down. (The sharded event-loop alternative lives in
//! `bda-reactor`; both cores mount the same [`RequestHandler`], so
//! request semantics and observability are identical.)
//!
//! Observability (see DESIGN.md, "Observability"):
//!
//! * Every server keeps a [`MetricsHub`] — request counts, errors,
//!   latency histogram, wire bytes — rendered in Prometheus text format
//!   by a [`Request::Metrics`] message (the `GET /metrics` of this
//!   protocol).
//! * A [`Request::Traced`] wrapper makes the server record spans
//!   (`serve:<kind>` plus the engine's per-operator spans) and return
//!   them in [`Response::Traced`], so the client can stitch one
//!   cross-process timeline. A traced push forwards the trace to the
//!   peer server, whose spans flow back the same way.
//! * [`ServeOptions::log`] emits one structured line per request (kind,
//!   duration, bytes, outcome) to stderr or a file.
//!
//! For chaos testing, [`serve_with_faults`] injects seeded transport
//! faults *below* the protocol: responses are dropped (connection closed
//! without a reply) or truncated mid-frame, which clients must survive
//! via their retry-and-redial machinery.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bda_core::Provider;
use bda_durability::{DurableProvider, RecoveryReport};
use bda_obs::MetricsHub;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::frame::{read_message, write_message};
use crate::handler::{RequestHandler, PUSH_TIMEOUT};
use crate::proto::encode_response;

pub use crate::handler::LogSink;

/// How long a connection handler blocks in a read before re-checking the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// A running provider server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: MetricsHub,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    durable: Option<Arc<DurableProvider>>,
}

/// Seeded transport-level fault injection for a server (chaos testing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaults {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability a response is dropped: the connection closes without a
    /// reply, which the client sees as an EOF / reset.
    pub drop_rate: f64,
    /// Probability a response is truncated mid-frame before the
    /// connection closes — the client's frame reader must error cleanly.
    pub truncate_rate: f64,
}

impl NetFaults {
    /// Drop and truncate responses, each at rate `p`, seeded.
    pub fn new(seed: u64, p: f64) -> NetFaults {
        NetFaults {
            seed,
            drop_rate: p,
            truncate_rate: p,
        }
    }
}

/// Server configuration beyond the bind address.
#[derive(Clone, Default)]
pub struct ServeOptions {
    /// Transport-level fault injection (chaos testing).
    pub faults: Option<NetFaults>,
    /// Per-request structured logging: one `key=value` line per request.
    pub log: Option<LogSink>,
    /// Share an existing metrics hub instead of creating a fresh one —
    /// the HTTP ops server (`bda-served --http`) passes the same hub so
    /// `GET /metrics` scrapes this server's request metrics.
    pub metrics: Option<MetricsHub>,
    /// Make the served engine durable: recover prior state from this
    /// data directory before binding, then WAL every acknowledged
    /// mutation (including `StorePart` staging, which the durability
    /// layer classifies by name). Disk-fault injection rides in
    /// [`bda_durability::Options::faults`].
    pub durability: Option<bda_durability::Options>,
    /// Usage book charged per request (tenant-tagged or peer-attributed)
    /// when metering is enabled.
    pub usage: Option<bda_obs::UsageBook>,
}

/// The shared fault stream: one RNG across all of a server's connections
/// so the injected sequence is a function of the seed and the global
/// response order.
struct FaultState {
    faults: NetFaults,
    rng: Mutex<StdRng>,
}

/// What the fault hook decided for one response.
enum FaultAction {
    Deliver,
    Drop,
    Truncate,
}

impl FaultState {
    fn decide(&self) -> FaultAction {
        let mut rng = self.rng.lock().expect("fault rng poisoned");
        if self.faults.drop_rate > 0.0 && rng.gen_bool(self.faults.drop_rate) {
            return FaultAction::Drop;
        }
        if self.faults.truncate_rate > 0.0 && rng.gen_bool(self.faults.truncate_rate) {
            return FaultAction::Truncate;
        }
        FaultAction::Deliver
    }
}

/// Serve `engine` on `bind` (e.g. `"127.0.0.1:0"` for an ephemeral
/// port). Returns once the listener is bound; requests are handled on
/// background threads.
pub fn serve(engine: Arc<dyn Provider>, bind: &str) -> std::io::Result<ServerHandle> {
    serve_with(engine, bind, ServeOptions::default())
}

/// [`serve`] with transport-level fault injection — responses are
/// dropped or truncated per the seeded [`NetFaults`] stream.
pub fn serve_with_faults(
    engine: Arc<dyn Provider>,
    bind: &str,
    faults: NetFaults,
) -> std::io::Result<ServerHandle> {
    serve_with(
        engine,
        bind,
        ServeOptions {
            faults: Some(faults),
            ..ServeOptions::default()
        },
    )
}

/// [`serve_with_faults`] plus a durable engine: recovers from the
/// durability options' data directory, then injects *both* transport
/// faults and the disk faults carried in `durability.faults` — the full
/// chaos surface a provider must survive.
pub fn serve_durable_with_faults(
    engine: Arc<dyn Provider>,
    bind: &str,
    faults: NetFaults,
    durability: bda_durability::Options,
) -> std::io::Result<ServerHandle> {
    serve_with(
        engine,
        bind,
        ServeOptions {
            faults: Some(faults),
            durability: Some(durability),
            ..ServeOptions::default()
        },
    )
}

/// [`serve`] with full [`ServeOptions`].
pub fn serve_with(
    engine: Arc<dyn Provider>,
    bind: &str,
    opts: ServeOptions,
) -> std::io::Result<ServerHandle> {
    let faults = opts.faults.map(|faults| {
        Arc::new(FaultState {
            rng: Mutex::new(StdRng::seed_from_u64(faults.seed)),
            faults,
        })
    });
    // Recovery happens before the listener binds: a durable server is
    // only reachable once it serves its recovered catalog.
    let mut durable = None;
    let engine: Arc<dyn Provider> = match opts.durability {
        Some(durability) => {
            let p =
                Arc::new(DurableProvider::open(engine, durability).map_err(std::io::Error::other)?);
            durable = Some(Arc::clone(&p));
            p
        }
        None => engine,
    };
    let mut handler = RequestHandler::new(engine, opts.metrics.unwrap_or_default(), opts.log)?;
    if let Some(usage) = opts.usage {
        handler.set_usage(usage);
    }
    let handler = Arc::new(handler);
    let metrics = handler.metrics();
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_shutdown = Arc::clone(&shutdown);
    let accept_thread = std::thread::Builder::new()
        .name(format!("bda-served-{}", handler.engine().name()))
        .spawn(move || accept_loop(listener, handler, accept_shutdown, faults))?;
    Ok(ServerHandle {
        addr,
        metrics,
        shutdown,
        accept_thread: Some(accept_thread),
        durable,
    })
}

impl ServerHandle {
    /// The bound address (resolves the port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics hub (shared: the same cells the connection
    /// handlers update). An HTTP ops server can render it directly.
    pub fn metrics(&self) -> MetricsHub {
        self.metrics.clone()
    }

    /// The durable wrapper, when the server was started with
    /// [`ServeOptions::durability`] — gives access to change streams,
    /// `snapshot_now`, and staged-dataset inspection.
    pub fn durable(&self) -> Option<&Arc<DurableProvider>> {
        self.durable.as_ref()
    }

    /// What recovery found when the server (re)started, when durable.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.durable.as_ref().map(|d| d.report())
    }

    /// Stop accepting, wake the accept thread, and join it. Connection
    /// handlers notice the flag within [`POLL_INTERVAL`] and exit.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Self-connect to unblock the accept() call.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    handler: Arc<RequestHandler>,
    shutdown: Arc<AtomicBool>,
    faults: Option<Arc<FaultState>>,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        let conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => continue,
        };
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let conn_handler = Arc::clone(&handler);
        let conn_shutdown = Arc::clone(&shutdown);
        let conn_faults = faults.clone();
        if let Ok(h) = std::thread::Builder::new()
            .name("bda-served-conn".to_string())
            .spawn(move || handle_connection(conn, conn_handler, conn_shutdown, conn_faults))
        {
            handlers.push(h);
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_connection(
    mut conn: TcpStream,
    handler: Arc<RequestHandler>,
    shutdown: Arc<AtomicBool>,
    faults: Option<Arc<FaultState>>,
) {
    let _ = conn.set_nodelay(true);
    // Untagged requests are attributed to the peer address — the
    // pre-tenant behaviour, and still the right default for peers that
    // never learned the tenant wrapper.
    let fallback_tenant = conn
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "-".to_string());
    while !shutdown.load(Ordering::SeqCst) {
        // Idle phase: peek (non-consuming) with a short timeout so the
        // shutdown flag is observed promptly and a timeout can never
        // desynchronize a half-read message.
        if conn.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
            return;
        }
        match conn.peek(&mut [0u8; 1]) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
        // Data ready: read the whole message with the generous timeout.
        if conn.set_read_timeout(Some(PUSH_TIMEOUT)).is_err() {
            return;
        }
        let (kind, payload, req_bytes) = match read_message(&mut conn) {
            Ok(got) => got,
            // Peer hung up, stalled, or sent garbage: close.
            Err(_) => return,
        };
        let response = handler.handle_frame_as(kind, &payload, req_bytes, &fallback_tenant);
        let (rkind, rpayload) = encode_response(&response);
        match faults.as_ref().map(|f| f.decide()) {
            Some(FaultAction::Drop) => return, // close without replying
            Some(FaultAction::Truncate) => {
                // Encode the full reply but put only half its bytes on
                // the wire, then close: a mid-frame disconnect.
                let mut wire = Vec::new();
                if write_message(&mut wire, rkind, &rpayload).is_err() {
                    return;
                }
                let half = &wire[..wire.len() / 2];
                let _ = conn.write_all(half).and_then(|_| conn.flush());
                return;
            }
            Some(FaultAction::Deliver) | None => {}
        }
        if write_message(&mut conn, rkind, &rpayload)
            .and_then(|_| conn.flush())
            .is_err()
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Request, Response};
    use bda_core::ReferenceProvider;

    #[test]
    fn pipelined_requests_work_on_the_blocking_server_too() {
        // The thread-per-connection core answers tagged requests serially
        // but correctly: same handler, so a pipelining client can talk to
        // either serving core.
        let engine = Arc::new(ReferenceProvider::new("ref"));
        let server = serve(engine, "127.0.0.1:0").unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        let req = Request::Pipelined {
            tag: 99,
            inner: Box::new(Request::Hello),
        };
        let (kind, payload) = crate::proto::encode_request(&req);
        write_message(&mut conn, kind, &payload).unwrap();
        Write::flush(&mut conn).unwrap();
        let (rkind, rpayload, _) = read_message(&mut conn).unwrap();
        match crate::proto::decode_response(rkind, &rpayload).unwrap() {
            Response::Pipelined { tag, inner } => {
                assert_eq!(tag, 99);
                assert!(matches!(*inner, Response::Hello { .. }));
            }
            other => panic!("expected pipelined hello, got {other:?}"),
        }
    }
}
