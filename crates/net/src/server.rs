//! The server side: wrap any `Provider` behind a TCP listener speaking
//! the framed protocol. One OS thread accepts; one thread per
//! connection serves requests until the peer hangs up or the server
//! shuts down.
//!
//! For chaos testing, [`serve_with_faults`] injects seeded transport
//! faults *below* the protocol: responses are dropped (connection closed
//! without a reply) or truncated mid-frame, which clients must survive
//! via their retry-and-redial machinery.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bda_core::Provider;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::frame::{read_message, write_message};
use crate::proto::{
    decode_request, encode_request, encode_response, CatalogEntry, Request, Response,
};
use crate::Result;

/// How long a connection handler blocks in a read before re-checking the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Timeout for the outbound connection a push opens to a peer.
const PUSH_TIMEOUT: Duration = Duration::from_secs(30);

/// A running provider server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Seeded transport-level fault injection for a server (chaos testing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaults {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability a response is dropped: the connection closes without a
    /// reply, which the client sees as an EOF / reset.
    pub drop_rate: f64,
    /// Probability a response is truncated mid-frame before the
    /// connection closes — the client's frame reader must error cleanly.
    pub truncate_rate: f64,
}

impl NetFaults {
    /// Drop and truncate responses, each at rate `p`, seeded.
    pub fn new(seed: u64, p: f64) -> NetFaults {
        NetFaults {
            seed,
            drop_rate: p,
            truncate_rate: p,
        }
    }
}

/// The shared fault stream: one RNG across all of a server's connections
/// so the injected sequence is a function of the seed and the global
/// response order.
struct FaultState {
    faults: NetFaults,
    rng: Mutex<StdRng>,
}

/// What the fault hook decided for one response.
enum FaultAction {
    Deliver,
    Drop,
    Truncate,
}

impl FaultState {
    fn decide(&self) -> FaultAction {
        let mut rng = self.rng.lock().expect("fault rng poisoned");
        if self.faults.drop_rate > 0.0 && rng.gen_bool(self.faults.drop_rate) {
            return FaultAction::Drop;
        }
        if self.faults.truncate_rate > 0.0 && rng.gen_bool(self.faults.truncate_rate) {
            return FaultAction::Truncate;
        }
        FaultAction::Deliver
    }
}

/// Serve `engine` on `bind` (e.g. `"127.0.0.1:0"` for an ephemeral
/// port). Returns once the listener is bound; requests are handled on
/// background threads.
pub fn serve(engine: Arc<dyn Provider>, bind: &str) -> std::io::Result<ServerHandle> {
    serve_inner(engine, bind, None)
}

/// [`serve`] with transport-level fault injection — responses are
/// dropped or truncated per the seeded [`NetFaults`] stream.
pub fn serve_with_faults(
    engine: Arc<dyn Provider>,
    bind: &str,
    faults: NetFaults,
) -> std::io::Result<ServerHandle> {
    let state = FaultState {
        rng: Mutex::new(StdRng::seed_from_u64(faults.seed)),
        faults,
    };
    serve_inner(engine, bind, Some(Arc::new(state)))
}

fn serve_inner(
    engine: Arc<dyn Provider>,
    bind: &str,
    faults: Option<Arc<FaultState>>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_shutdown = Arc::clone(&shutdown);
    let accept_thread = std::thread::Builder::new()
        .name(format!("bda-served-{}", engine.name()))
        .spawn(move || accept_loop(listener, engine, accept_shutdown, faults))?;
    Ok(ServerHandle {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

impl ServerHandle {
    /// The bound address (resolves the port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the accept thread, and join it. Connection
    /// handlers notice the flag within [`POLL_INTERVAL`] and exit.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Self-connect to unblock the accept() call.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    engine: Arc<dyn Provider>,
    shutdown: Arc<AtomicBool>,
    faults: Option<Arc<FaultState>>,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        let conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => continue,
        };
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let engine = Arc::clone(&engine);
        let conn_shutdown = Arc::clone(&shutdown);
        let conn_faults = faults.clone();
        if let Ok(h) = std::thread::Builder::new()
            .name("bda-served-conn".to_string())
            .spawn(move || handle_connection(conn, engine, conn_shutdown, conn_faults))
        {
            handlers.push(h);
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_connection(
    mut conn: TcpStream,
    engine: Arc<dyn Provider>,
    shutdown: Arc<AtomicBool>,
    faults: Option<Arc<FaultState>>,
) {
    let _ = conn.set_nodelay(true);
    while !shutdown.load(Ordering::SeqCst) {
        // Idle phase: peek (non-consuming) with a short timeout so the
        // shutdown flag is observed promptly and a timeout can never
        // desynchronize a half-read message.
        if conn.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
            return;
        }
        match conn.peek(&mut [0u8; 1]) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
        // Data ready: read the whole message with the generous timeout.
        if conn.set_read_timeout(Some(PUSH_TIMEOUT)).is_err() {
            return;
        }
        let (kind, payload) = match read_message(&mut conn) {
            Ok((kind, payload, _)) => (kind, payload),
            // Peer hung up, stalled, or sent garbage: close.
            Err(_) => return,
        };
        let response = match decode_request(kind, &payload) {
            Ok(req) => {
                handle_request(engine.as_ref(), &req).unwrap_or_else(|e| Response::from_error(&e))
            }
            Err(e) => Response::from_error(&e),
        };
        let (rkind, rpayload) = encode_response(&response);
        match faults.as_ref().map(|f| f.decide()) {
            Some(FaultAction::Drop) => return, // close without replying
            Some(FaultAction::Truncate) => {
                // Encode the full reply but put only half its bytes on
                // the wire, then close: a mid-frame disconnect.
                let mut wire = Vec::new();
                if write_message(&mut wire, rkind, &rpayload).is_err() {
                    return;
                }
                let half = &wire[..wire.len() / 2];
                let _ = conn.write_all(half).and_then(|_| conn.flush());
                return;
            }
            Some(FaultAction::Deliver) | None => {}
        }
        if write_message(&mut conn, rkind, &rpayload)
            .and_then(|_| conn.flush())
            .is_err()
        {
            return;
        }
    }
}

fn handle_request(engine: &dyn Provider, req: &Request) -> Result<Response> {
    Ok(match req {
        Request::Hello => Response::Hello {
            name: engine.name().to_string(),
            capabilities: engine.capabilities(),
        },
        Request::Execute { plan } => Response::DataSet(engine.execute(plan)?),
        Request::ExecuteStore { name, plan } => {
            let out = engine.execute(plan)?;
            engine.store(name, out)?;
            Response::Ack
        }
        Request::ExecutePush {
            dest_addr,
            dest_name,
            plan,
        } => {
            let out = engine.execute(plan)?;
            let bytes = push_to_peer(dest_addr, dest_name, out)?;
            Response::Pushed { bytes }
        }
        Request::Store { name, data } => {
            engine.store(name, data.clone())?;
            Response::Ack
        }
        Request::Remove { name } => {
            engine.remove(name);
            Response::Ack
        }
        Request::Catalog => Response::Catalog(
            engine
                .catalog()
                .into_iter()
                .map(|(name, schema)| CatalogEntry {
                    rows: engine.row_count_of(&name).map(|n| n as u64),
                    name,
                    schema,
                })
                .collect(),
        ),
    })
}

/// The direct server-to-server hop: open a connection to the peer and
/// store the dataset there, bypassing the application tier entirely.
/// Returns the framed bytes sent to the peer.
fn push_to_peer(dest_addr: &str, dest_name: &str, data: bda_storage::DataSet) -> Result<u64> {
    use bda_core::CoreError;
    let net = |e: std::io::Error| CoreError::Net(format!("push to {dest_addr}: {e}"));
    let addrs: Vec<SocketAddr> = std::net::ToSocketAddrs::to_socket_addrs(dest_addr)
        .map_err(net)?
        .collect();
    let addr = addrs
        .first()
        .ok_or_else(|| CoreError::Net(format!("no address for peer {dest_addr}")))?;
    let mut conn = TcpStream::connect_timeout(addr, PUSH_TIMEOUT).map_err(net)?;
    conn.set_read_timeout(Some(PUSH_TIMEOUT)).map_err(net)?;
    conn.set_write_timeout(Some(PUSH_TIMEOUT)).map_err(net)?;
    let (kind, payload) = encode_request(&Request::Store {
        name: dest_name.to_string(),
        data,
    });
    let sent = write_message(&mut conn, kind, &payload).map_err(net)?;
    conn.flush().map_err(net)?;
    let (rkind, rpayload, _) =
        read_message(&mut conn).map_err(|e| CoreError::Net(format!("push to {dest_addr}: {e}")))?;
    match crate::proto::decode_response(rkind, &rpayload)? {
        Response::Ack => Ok(sent),
        Response::Error { msg, transient } if transient => Err(CoreError::transient(
            CoreError::Net(format!("peer {dest_addr}: {msg}")),
        )),
        Response::Error { msg, .. } => Err(CoreError::Remote {
            addr: dest_addr.to_string(),
            msg,
        }),
        other => Err(CoreError::Net(format!(
            "unexpected push response: {other:?}"
        ))),
    }
}
