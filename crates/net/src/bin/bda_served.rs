//! `bda-served`: serve one BDA engine over TCP.
//!
//! ```text
//! bda-served --engine relational --name rel --listen 127.0.0.1:7401
//! ```
//!
//! Engines: `relational`, `array`, `linalg`, `graph`, `reference`.
//! Data arrives over the wire: the application (or a peer server
//! executing a push) issues `Store` requests, exactly like any other
//! provider interaction. `--demo` preloads a small sales table and a
//! 2x3 matrix so the README quick-start has something to query.
//! `--log <path|stderr>` emits one structured line per request (kind,
//! duration, bytes, outcome); a `Metrics` request returns the server's
//! Prometheus-format registry either way.
//!
//! `--http <port>` additionally mounts the plain-HTTP observability
//! endpoint on `127.0.0.1:<port>` (`0` picks an ephemeral port):
//! `GET /metrics` renders the same registry the protocol serves, plus
//! `/healthz`, `/readyz`, `/progress`, `/flight`, and `/traces/<id>` —
//! see README, "Operating bda-served".

use std::sync::Arc;

use bda_array::ArrayEngine;
use bda_core::{Provider, ReferenceProvider};
use bda_graph::GraphEngine;
use bda_linalg::LinAlgEngine;
use bda_relational::RelationalEngine;
use bda_storage::dataset::matrix_dataset;
use bda_storage::{Column, DataSet};

struct Args {
    engine: String,
    name: String,
    listen: String,
    demo: bool,
    log: Option<bda_net::LogSink>,
    http: Option<u16>,
}

fn parse_args() -> Result<Args, String> {
    let mut engine = String::from("reference");
    let mut name = None;
    let mut listen = String::from("127.0.0.1:7401");
    let mut demo = false;
    let mut log = None;
    let mut http = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| format!("missing value after {what}"))
        };
        match arg.as_str() {
            "--engine" => engine = value("--engine")?,
            "--name" => name = Some(value("--name")?),
            "--listen" => listen = value("--listen")?,
            "--demo" => demo = true,
            "--log" => {
                log = Some(match value("--log")?.as_str() {
                    "stderr" | "-" => bda_net::LogSink::Stderr,
                    path => bda_net::LogSink::File(path.into()),
                })
            }
            "--http" => {
                let raw = value("--http")?;
                http = Some(
                    raw.parse::<u16>()
                        .map_err(|_| format!("--http wants a port number, got `{raw}`"))?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: bda-served [--engine relational|array|linalg|graph|reference]\n\
                     \x20                 [--name NAME] [--listen HOST:PORT] [--demo]\n\
                     \x20                 [--log PATH|stderr] [--http PORT]\n\
                     \n\
                     --log writes one structured line per request (kind, duration,\n\
                     bytes, outcome) to the given file, or to stderr.\n\
                     --http mounts the observability HTTP endpoint (/metrics,\n\
                     /healthz, /readyz, /progress, /flight, /traces/<id>) on\n\
                     127.0.0.1:PORT; port 0 picks an ephemeral port."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let name = name.unwrap_or_else(|| engine.clone());
    Ok(Args {
        engine,
        name,
        listen,
        demo,
        log,
        http,
    })
}

fn build_engine(kind: &str, name: &str) -> Result<Arc<dyn Provider>, String> {
    Ok(match kind {
        "relational" => Arc::new(RelationalEngine::new(name)),
        "array" => Arc::new(ArrayEngine::new(name)),
        "linalg" => Arc::new(LinAlgEngine::new(name)),
        "graph" => Arc::new(GraphEngine::new(name)),
        "reference" => Arc::new(ReferenceProvider::new(name)),
        other => return Err(format!("unknown engine `{other}`")),
    })
}

/// Preload demo datasets. Engines are picky about shapes (the linalg
/// engine only stores 2-D arrays), so each dataset is offered
/// best-effort and skipped where the engine declines it.
fn demo_data(engine: &dyn Provider) -> Result<(), bda_core::CoreError> {
    let table = DataSet::from_columns(vec![
        ("k", Column::from(vec![1i64, 2, 3, 4])),
        ("v", Column::from(vec![10.0f64, 20.0, 30.0, 40.0])),
    ])?;
    let matrix = matrix_dataset(2, 3, vec![1., 2., 3., 4., 5., 6.])?;
    let mut stored = 0;
    for (name, ds) in [("sales", table), ("m", matrix)] {
        match engine.store(name, ds) {
            Ok(()) => stored += 1,
            Err(e) => eprintln!("bda-served: demo dataset `{name}` skipped: {e}"),
        }
    }
    if stored == 0 {
        return Err(bda_core::CoreError::Plan(
            "no demo dataset fits this engine".into(),
        ));
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bda-served: {e}");
            std::process::exit(2);
        }
    };
    let engine = match build_engine(&args.engine, &args.name) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bda-served: {e}");
            std::process::exit(2);
        }
    };
    if args.demo {
        if let Err(e) = demo_data(engine.as_ref()) {
            eprintln!("bda-served: demo data: {e}");
            std::process::exit(1);
        }
    }
    let opts = bda_net::ServeOptions {
        log: args.log.clone(),
        ..bda_net::ServeOptions::default()
    };
    let server = match bda_net::serve_with(Arc::clone(&engine), &args.listen, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bda-served: bind {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    println!(
        "bda-served: `{}` ({}) listening on {}",
        args.name,
        args.engine,
        server.addr()
    );
    // The ops endpoint shares the server's metrics hub, so `GET /metrics`
    // scrapes the same request counters the protocol updates. The handle
    // must outlive the serve loop or the endpoint shuts down on drop.
    let _ops = args.http.map(|port| {
        match bda_obs::serve_ops(
            &format!("127.0.0.1:{port}"),
            bda_obs::OpsOptions {
                metrics: server.metrics(),
                ..bda_obs::OpsOptions::default()
            },
        ) {
            Ok(h) => {
                println!("bda-served: ops endpoint on {}", h.addr());
                h
            }
            Err(e) => {
                eprintln!("bda-served: ops bind 127.0.0.1:{port}: {e}");
                std::process::exit(1);
            }
        }
    });
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
