//! Client-side request pipelining: one connection, many in-flight
//! requests, responses matched by tag.
//!
//! [`RemoteProvider`](crate::RemoteProvider) is strictly
//! request/response — its throughput on one connection is bounded by
//! round-trip latency. A [`PipelinedClient`] removes that bound: every
//! request is wrapped in [`Request::Pipelined`] with a fresh tag and
//! written immediately; a background reader thread demultiplexes
//! [`Response::Pipelined`] replies to their waiting callers in whatever
//! order the server finishes them. Any thread may send; sends interleave
//! under a write lock at message granularity (frames of one message are
//! never interleaved with another's).
//!
//! The tagged wrapper is understood by *both* serving cores — the
//! thread-per-connection server answers serially, the `bda-reactor`
//! event-loop core genuinely out of order — so the same client drives
//! either.
//!
//! Failure model: if the connection dies (EOF, reset, malformed reply),
//! every in-flight and future call fails with a `CoreError::Net`
//! immediately — nothing hangs waiting on a tag that can never arrive.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use bda_core::CoreError;

use crate::frame::{read_message, write_message};
use crate::proto::{decode_response, encode_request, Request, Response};
use crate::Result;

/// Shared between callers and the reader thread: who is waiting on which
/// tag, and — once the connection dies — why.
struct Shared {
    waiting: Mutex<HashMap<u64, mpsc::Sender<Result<Response>>>>,
    dead: Mutex<Option<String>>,
}

impl Shared {
    /// Mark the connection dead and fail every waiter.
    fn die(&self, reason: String) {
        let mut dead = self.dead.lock().expect("dead flag poisoned");
        if dead.is_none() {
            *dead = Some(reason.clone());
        }
        let reason = dead.clone().expect("just set");
        drop(dead);
        let mut waiting = self.waiting.lock().expect("waiting map poisoned");
        for (_, tx) in waiting.drain() {
            let _ = tx.send(Err(CoreError::Net(reason.clone())));
        }
    }

    fn dead_reason(&self) -> Option<String> {
        self.dead.lock().expect("dead flag poisoned").clone()
    }
}

/// A pipelined protocol connection: many concurrent in-flight requests
/// over one socket, matched by tag.
pub struct PipelinedClient {
    writer: Mutex<TcpStream>,
    shared: Arc<Shared>,
    next_tag: AtomicU64,
    reader: Option<std::thread::JoinHandle<()>>,
    /// Clone of the socket used to force-unblock the reader on drop.
    stream: TcpStream,
}

/// One in-flight pipelined request; redeem it with [`Pending::wait`].
pub struct Pending {
    tag: u64,
    rx: mpsc::Receiver<Result<Response>>,
    shared: Arc<Shared>,
}

impl Pending {
    /// The request's correlation tag.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Block until the response arrives or `timeout` passes. A timeout
    /// abandons the tag: a late reply is discarded by the reader.
    pub fn wait(self, timeout: Duration) -> Result<Response> {
        match self.rx.recv_timeout(timeout) {
            Ok(outcome) => outcome,
            Err(_) => {
                self.shared
                    .waiting
                    .lock()
                    .expect("waiting map poisoned")
                    .remove(&self.tag);
                Err(CoreError::transient(CoreError::Net(format!(
                    "pipelined request tag {} timed out after {timeout:?}",
                    self.tag
                ))))
            }
        }
    }
}

impl PipelinedClient {
    /// Connect to a protocol server at `addr` (`host:port`).
    pub fn connect(addr: &str) -> Result<PipelinedClient> {
        PipelinedClient::connect_with(addr, Duration::from_secs(10))
    }

    /// [`PipelinedClient::connect`] with an explicit connect timeout.
    /// Reads have no timeout — the reader thread parks until data or
    /// EOF; liveness is the caller's per-request [`Pending::wait`].
    pub fn connect_with(addr: &str, connect_timeout: Duration) -> Result<PipelinedClient> {
        let net = |e: std::io::Error| CoreError::Net(format!("connect to {addr}: {e}"));
        let addrs: Vec<std::net::SocketAddr> = std::net::ToSocketAddrs::to_socket_addrs(addr)
            .map_err(net)?
            .collect();
        let sock = addrs
            .first()
            .ok_or_else(|| CoreError::Net(format!("no address for {addr}")))?;
        let stream = TcpStream::connect_timeout(sock, connect_timeout).map_err(net)?;
        stream.set_nodelay(true).map_err(net)?;
        let shared = Arc::new(Shared {
            waiting: Mutex::new(HashMap::new()),
            dead: Mutex::new(None),
        });
        let reader_stream = stream.try_clone().map_err(net)?;
        let reader_shared = Arc::clone(&shared);
        let reader = std::thread::Builder::new()
            .name("bda-pipeline-reader".to_string())
            .spawn(move || read_loop(reader_stream, reader_shared))
            .map_err(net)?;
        Ok(PipelinedClient {
            writer: Mutex::new(stream.try_clone().map_err(net)?),
            shared,
            next_tag: AtomicU64::new(1),
            reader: Some(reader),
            stream,
        })
    }

    /// Number of requests currently awaiting a response.
    pub fn in_flight(&self) -> usize {
        self.shared
            .waiting
            .lock()
            .expect("waiting map poisoned")
            .len()
    }

    /// Send `req` tagged and return a [`Pending`] handle immediately —
    /// the pipelining primitive: issue many of these before waiting.
    pub fn send(&self, req: &Request) -> Result<Pending> {
        if let Some(reason) = self.shared.dead_reason() {
            return Err(CoreError::Net(reason));
        }
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        self.shared
            .waiting
            .lock()
            .expect("waiting map poisoned")
            .insert(tag, tx);
        let wrapped = Request::Pipelined {
            tag,
            inner: Box::new(req.clone()),
        };
        let (kind, payload) = encode_request(&wrapped);
        let outcome = {
            let mut w = self.writer.lock().expect("writer poisoned");
            write_message(&mut *w, kind, &payload).and_then(|_| w.flush())
        };
        if let Err(e) = outcome {
            let reason = format!("pipelined write failed: {e}");
            self.shared.die(reason.clone());
            return Err(CoreError::Net(reason));
        }
        Ok(Pending {
            tag,
            rx,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Send `req` and block for its reply (still benefits from other
    /// threads' requests sharing the connection).
    pub fn call(&self, req: &Request, timeout: Duration) -> Result<Response> {
        self.send(req)?.wait(timeout)
    }
}

impl Drop for PipelinedClient {
    fn drop(&mut self) {
        // Shut the socket down so the parked reader sees EOF and exits.
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

/// The demultiplexer: read replies forever, delivering each to the tag's
/// waiter. Any read or protocol error kills the connection and fails all
/// waiters — a pipelined stream cannot be resynchronized after damage.
fn read_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    loop {
        let (kind, payload, _) = match read_message(&mut stream) {
            Ok(got) => got,
            Err(e) => {
                shared.die(format!("pipelined connection lost: {e}"));
                return;
            }
        };
        match decode_response(kind, &payload) {
            Ok(Response::Pipelined { tag, inner }) => {
                let waiter = shared
                    .waiting
                    .lock()
                    .expect("waiting map poisoned")
                    .remove(&tag);
                if let Some(tx) = waiter {
                    // A dropped/timed-out waiter just discards the reply.
                    let _ = tx.send(Ok(*inner));
                }
            }
            Ok(other) => {
                shared.die(format!(
                    "pipelined stream returned an untagged response: {other:?}"
                ));
                return;
            }
            Err(e) => {
                shared.die(format!("pipelined response decode failed: {e}"));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{Plan, Provider, ReferenceProvider};
    use bda_storage::{Column, DataSet};
    use std::sync::Arc;

    fn sample() -> DataSet {
        DataSet::from_columns(vec![
            ("k", Column::from(vec![1i64, 2, 3, 4])),
            ("v", Column::from(vec![1.0f64, 2.0, 3.0, 4.0])),
        ])
        .unwrap()
    }

    #[test]
    fn many_in_flight_requests_on_one_connection() {
        let engine = Arc::new(ReferenceProvider::new("ref"));
        engine.store("t", sample()).unwrap();
        let server = crate::serve(engine, "127.0.0.1:0").unwrap();
        let client = PipelinedClient::connect(&server.addr().to_string()).unwrap();

        // Fire eight requests before reading any reply.
        let plan = Plan::scan("t", sample().schema().clone());
        let pending: Vec<Pending> = (0..8)
            .map(|i| {
                let req = if i % 2 == 0 {
                    Request::Execute { plan: plan.clone() }
                } else {
                    Request::Catalog
                };
                client.send(&req).unwrap()
            })
            .collect();
        assert!(client.in_flight() >= 1);
        for (i, p) in pending.into_iter().enumerate() {
            let resp = p.wait(Duration::from_secs(10)).unwrap();
            if i % 2 == 0 {
                assert!(matches!(resp, Response::DataSet(_)), "{resp:?}");
            } else {
                assert!(matches!(resp, Response::Catalog(_)), "{resp:?}");
            }
        }
        assert_eq!(client.in_flight(), 0);
    }

    #[test]
    fn server_death_fails_all_waiters_not_hangs() {
        let engine = Arc::new(ReferenceProvider::new("ref"));
        let mut server = crate::serve(engine, "127.0.0.1:0").unwrap();
        let client = PipelinedClient::connect(&server.addr().to_string()).unwrap();
        let p = client.send(&Request::Hello).unwrap();
        // Consume the reply so the next send races server shutdown.
        p.wait(Duration::from_secs(5)).unwrap();
        server.shutdown();
        // Whether the send itself fails or the wait does, nothing hangs.
        if let Ok(p) = client.send(&Request::Hello) {
            let err = p.wait(Duration::from_secs(5));
            assert!(err.is_err(), "reply from a dead server?");
        }
        // Once dead, sends fail fast.
        std::thread::sleep(Duration::from_millis(300));
        assert!(client.send(&Request::Hello).is_err());
    }
}
