//! The request/response protocol carried inside frames.
//!
//! Payloads reuse the existing wire codecs end to end: plans travel as
//! `bda_core::codec` expression trees (`BDAP` magic) and datasets as
//! `bda_storage::wire` blocks (`BDA1` magic), each embedded with a `u32`
//! length prefix. Strings are `u32` length + UTF-8, matching
//! [`bda_storage::wire::Reader::string`]. Decoding is fully checked and
//! returns [`CoreError`] on malformed input — these bytes arrive off a
//! socket.

use bytes::{BufMut, BytesMut};

use bda_core::codec::{decode_plan, encode_plan};
use bda_core::{CapabilitySet, CoreError, OpKind, Plan};
use bda_storage::wire::{decode_dataset, encode_dataset, Reader};
use bda_storage::{DataSet, Schema};

use crate::Result;

/// One entry of a remote catalog listing.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// Dataset name.
    pub name: String,
    /// Dataset schema.
    pub schema: Schema,
    /// Row count, when the engine tracks statistics.
    pub rows: Option<u64>,
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Identify the server: reply with name and capabilities.
    Hello,
    /// Execute a shipped plan tree; reply with the result dataset.
    Execute {
        /// The plan, whose scans resolve in the server's catalog.
        plan: Plan,
    },
    /// Execute a plan and keep the result server-side under `name`.
    ExecuteStore {
        /// Name to store the result under.
        name: String,
        /// The plan to execute.
        plan: Plan,
    },
    /// Execute a plan and push the result to a *peer* server, storing it
    /// there under `dest_name` — the direct server-to-server transfer of
    /// desideratum 4. The reply reports the pushed payload size.
    ExecutePush {
        /// `host:port` of the peer server to push to.
        dest_addr: String,
        /// Name the peer stores the result under.
        dest_name: String,
        /// The plan to execute.
        plan: Plan,
    },
    /// Ingest a dataset.
    Store {
        /// Name to store under.
        name: String,
        /// The dataset.
        data: DataSet,
    },
    /// Ingest one partition of a partitioned dataset. The server stores
    /// it under `{name}.p{partition}`, so a partition-parallel producer
    /// can stream its partitions independently (and a consumer or the
    /// cleanup path can address them individually).
    StorePart {
        /// Logical dataset name the partition belongs to.
        name: String,
        /// Zero-based partition index.
        partition: u32,
        /// The partition's rows.
        data: DataSet,
    },
    /// Drop a dataset if present.
    Remove {
        /// Name to drop.
        name: String,
    },
    /// Build (or rebuild) a secondary index on a dataset column.
    BuildIndex {
        /// Dataset to index.
        name: String,
        /// Column to index.
        column: String,
        /// Hash or sorted, as [`bda_storage::IndexKind`] wire bytes.
        kind: bda_storage::IndexKind,
    },
    /// List the secondary indexes on a dataset. The reply is
    /// [`Response::Text`] with one `column kind fingerprint` line per
    /// index (fingerprints in lowercase hex), so recovery tests can
    /// compare a post-crash rebuild against a from-scratch build without
    /// shipping index bytes.
    IndexInfo {
        /// Dataset to describe.
        name: String,
    },
    /// List the server's datasets with schemas and row counts.
    Catalog,
    /// Fetch the server's metrics registry rendered in Prometheus text
    /// exposition format (the `GET /metrics` of this protocol).
    Metrics,
    /// A request attached to a distributed trace: the server handles
    /// `inner` while recording spans, and wraps its reply in
    /// [`Response::Traced`] carrying them back. `Traced` never nests.
    Traced {
        /// Trace id every server-side span belongs to.
        trace_id: u64,
        /// The client-side span the server's work conceptually hangs
        /// under (informational; the client does the stitching).
        parent_span: u64,
        /// The request to handle.
        inner: Box<Request>,
    },
    /// A tagged request on a pipelined connection: the client may have
    /// many of these in flight on one socket, and the server matches its
    /// reply by echoing `tag` in [`Response::Pipelined`]. Replies to
    /// tagged requests may arrive in any order; `Pipelined` is always
    /// the outermost wrapper (it may carry `Tenant` or `Traced`, never
    /// another `Pipelined`). The thread-per-connection server also
    /// understands it (serially), so a pipelining client works against
    /// either serving core.
    Pipelined {
        /// Client-chosen correlation tag, echoed back verbatim.
        tag: u64,
        /// The request to handle.
        inner: Box<Request>,
    },
    /// A request tagged with the tenant identity it should be charged
    /// to. Servers that meter usage attribute this request's cost to
    /// `tenant` instead of the connection's peer address (the default
    /// for untagged requests, preserving old↔new compatibility).
    ///
    /// Wrapper nesting order is fixed: `Pipelined` is always outermost,
    /// `Tenant` may carry `Traced`, and none of the wrappers nests
    /// itself. The reply is the inner request's reply — there is no
    /// tenant response wrapper to echo.
    Tenant {
        /// Tenant identity the request is charged to.
        tenant: String,
        /// The request to handle.
        inner: Box<Request>,
    },
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Server identity: name plus natively supported operators.
    Hello {
        /// Provider name.
        name: String,
        /// Operator capability set.
        capabilities: CapabilitySet,
    },
    /// A result dataset.
    DataSet(DataSet),
    /// Success without a payload.
    Ack,
    /// A push completed; `bytes` is the framed payload size that went to
    /// the peer.
    Pushed {
        /// Wire bytes sent server-to-server.
        bytes: u64,
    },
    /// Catalog listing.
    Catalog(Vec<CatalogEntry>),
    /// A plain-text payload (the Prometheus rendering of
    /// [`Request::Metrics`]).
    Text(String),
    /// The reply to a [`Request::Traced`]: the inner response plus the
    /// spans the server recorded while producing it, in the server's own
    /// clock and id space (the client remaps and anchors them).
    Traced {
        /// Server-side spans.
        spans: Vec<bda_obs::Span>,
        /// The wrapped reply.
        inner: Box<Response>,
    },
    /// The reply to a [`Request::Pipelined`]: the inner response tagged
    /// with the request's correlation tag so the client can match it to
    /// the right in-flight request regardless of arrival order.
    Pipelined {
        /// The request's tag, echoed verbatim.
        tag: u64,
        /// The wrapped reply.
        inner: Box<Response>,
    },
    /// The request failed server-side; the display string of the error
    /// plus whether the server considers it transient (safe to retry).
    Error {
        /// Display string of the server-side error.
        msg: String,
        /// `CoreError::is_transient()` as judged server-side.
        transient: bool,
    },
}

impl Response {
    /// An error response carrying `e`'s display string and transience.
    pub fn from_error(e: &CoreError) -> Response {
        Response::Error {
            msg: e.to_string(),
            transient: e.is_transient(),
        }
    }
}

// Message kinds (the frame `kind` byte). Requests are < 0x80.
const K_HELLO: u8 = 0x01;
const K_EXECUTE: u8 = 0x02;
const K_EXECUTE_STORE: u8 = 0x03;
const K_EXECUTE_PUSH: u8 = 0x04;
const K_STORE: u8 = 0x05;
const K_REMOVE: u8 = 0x06;
const K_STORE_PART: u8 = 0x09;
const K_CATALOG: u8 = 0x07;
const K_METRICS: u8 = 0x08;
const K_TRACED: u8 = 0x10;
const K_PIPELINED: u8 = 0x11;
const K_TENANT: u8 = 0x12;
const K_BUILD_INDEX: u8 = 0x13;
const K_INDEX_INFO: u8 = 0x14;
const K_R_HELLO: u8 = 0x81;
const K_R_DATASET: u8 = 0x82;
const K_R_ACK: u8 = 0x83;
const K_R_PUSHED: u8 = 0x84;
const K_R_CATALOG: u8 = 0x85;
const K_R_TEXT: u8 = 0x86;
const K_R_TRACED: u8 = 0x87;
const K_R_PIPELINED: u8 = 0x88;
const K_R_ERROR: u8 = 0xFF;

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_block(buf: &mut BytesMut, block: &[u8]) {
    buf.put_u32_le(block.len() as u32);
    buf.put_slice(block);
}

fn read_block<'a>(r: &mut Reader<'a>, what: &str) -> Result<&'a [u8]> {
    let n = r.u32(what)?;
    let n = r.checked_len(n, what)?;
    Ok(r.bytes(n, what)?)
}

fn read_plan(r: &mut Reader<'_>, what: &str) -> Result<Plan> {
    decode_plan(read_block(r, what)?)
}

fn read_dataset(r: &mut Reader<'_>, what: &str) -> Result<DataSet> {
    Ok(decode_dataset(read_block(r, what)?)?)
}

fn corrupt(msg: impl Into<String>) -> CoreError {
    CoreError::Corrupt(msg.into())
}

/// Reject trailing garbage so framing bugs surface as errors.
fn finish(r: &Reader<'_>, what: &str) -> Result<()> {
    if r.remaining() != 0 {
        return Err(corrupt(format!(
            "{} trailing bytes after {what} payload",
            r.remaining()
        )));
    }
    Ok(())
}

/// Encode a request as `(frame kind, payload)`.
pub fn encode_request(req: &Request) -> (u8, Vec<u8>) {
    let mut buf = BytesMut::new();
    let kind = match req {
        Request::Hello => K_HELLO,
        Request::Execute { plan } => {
            put_block(&mut buf, &encode_plan(plan));
            K_EXECUTE
        }
        Request::ExecuteStore { name, plan } => {
            put_string(&mut buf, name);
            put_block(&mut buf, &encode_plan(plan));
            K_EXECUTE_STORE
        }
        Request::ExecutePush {
            dest_addr,
            dest_name,
            plan,
        } => {
            put_string(&mut buf, dest_addr);
            put_string(&mut buf, dest_name);
            put_block(&mut buf, &encode_plan(plan));
            K_EXECUTE_PUSH
        }
        Request::Store { name, data } => {
            put_string(&mut buf, name);
            put_block(&mut buf, &encode_dataset(data));
            K_STORE
        }
        Request::StorePart {
            name,
            partition,
            data,
        } => {
            put_string(&mut buf, name);
            buf.put_u32_le(*partition);
            put_block(&mut buf, &encode_dataset(data));
            K_STORE_PART
        }
        Request::Remove { name } => {
            put_string(&mut buf, name);
            K_REMOVE
        }
        Request::BuildIndex { name, column, kind } => {
            put_string(&mut buf, name);
            put_string(&mut buf, column);
            buf.put_u8(kind.as_u8());
            K_BUILD_INDEX
        }
        Request::IndexInfo { name } => {
            put_string(&mut buf, name);
            K_INDEX_INFO
        }
        Request::Catalog => K_CATALOG,
        Request::Metrics => K_METRICS,
        Request::Traced {
            trace_id,
            parent_span,
            inner,
        } => {
            buf.put_u64_le(*trace_id);
            buf.put_u64_le(*parent_span);
            let (inner_kind, inner_payload) = encode_request(inner);
            buf.put_u8(inner_kind);
            put_block(&mut buf, &inner_payload);
            K_TRACED
        }
        Request::Pipelined { tag, inner } => {
            buf.put_u64_le(*tag);
            let (inner_kind, inner_payload) = encode_request(inner);
            buf.put_u8(inner_kind);
            put_block(&mut buf, &inner_payload);
            K_PIPELINED
        }
        Request::Tenant { tenant, inner } => {
            put_string(&mut buf, tenant);
            let (inner_kind, inner_payload) = encode_request(inner);
            buf.put_u8(inner_kind);
            put_block(&mut buf, &inner_payload);
            K_TENANT
        }
    };
    (kind, buf.to_vec())
}

/// Cheap peek at a [`Request::Pipelined`] wrapper: `(tag, inner kind)`
/// without decoding the inner payload (which may embed a large dataset).
/// The reactor's event loop uses this to classify and tag a request
/// before any expensive decoding — and to address a shed reply — while
/// full decoding happens on an executor worker. `None` when `kind` is
/// not a pipelined request or the prefix is malformed.
pub fn peek_pipelined(kind: u8, payload: &[u8]) -> Option<(u64, u8)> {
    if kind != K_PIPELINED || payload.len() < 9 {
        return None;
    }
    let tag = u64::from_le_bytes(payload[..8].try_into().expect("8-byte prefix"));
    Some((tag, payload[8]))
}

/// Whether `kind` is the [`Request::Pipelined`] frame kind.
pub fn is_pipelined_kind(kind: u8) -> bool {
    kind == K_PIPELINED
}

/// Encode a [`Request::Tenant`] wrapper around an *already-encoded*
/// request, so a client tagging every outgoing message never clones the
/// inner payload (which may embed a large dataset).
pub fn encode_tenant_wrapped(tenant: &str, inner_kind: u8, inner_payload: &[u8]) -> (u8, Vec<u8>) {
    let mut buf = BytesMut::new();
    put_string(&mut buf, tenant);
    buf.put_u8(inner_kind);
    put_block(&mut buf, inner_payload);
    (K_TENANT, buf.to_vec())
}

/// What a cheap prefix scan of a request frame reveals: the pipelining
/// tag (when the outermost wrapper is [`Request::Pipelined`] and its
/// prefix is well formed), the innermost *classification* kind looking
/// through `Pipelined` and `Tenant` wrappers, and the tenant tag when
/// one is present.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FramePeek {
    /// Pipelining correlation tag, when the frame is a well-formed
    /// pipelined wrapper.
    pub tag: Option<u64>,
    /// The request kind after looking through `Pipelined` and `Tenant`
    /// wrappers — what admission control should classify on. Falls back
    /// to the outermost kind when a wrapper prefix is malformed (full
    /// decoding later reports the error in order).
    pub kind: u8,
    /// Tenant identity, when the frame carries a tenant tag with a
    /// well-formed UTF-8 prefix.
    pub tenant: Option<String>,
}

/// Cheap peek at a request frame's wrappers without decoding the inner
/// payload (which may embed a large dataset). The reactor's event loop
/// uses this to classify, tag, and *attribute* a request before any
/// expensive decoding — and to address a shed reply — while full
/// decoding happens on an executor worker. Malformed wrapper prefixes
/// degrade gracefully: the peek stops looking through and reports what
/// it has, and the decode on the worker produces the error reply.
pub fn peek_frame(kind: u8, payload: &[u8]) -> FramePeek {
    let mut peek = FramePeek {
        tag: None,
        kind,
        tenant: None,
    };
    let mut payload = payload;
    if kind == K_PIPELINED {
        // Layout: tag u64 | inner kind u8 | u32 block len | inner payload.
        let Some((tag, inner_kind)) = peek_pipelined(kind, payload) else {
            return peek;
        };
        if payload.len() < 13 {
            return peek;
        }
        peek.tag = Some(tag);
        peek.kind = inner_kind;
        let len = u32::from_le_bytes(payload[9..13].try_into().expect("4-byte len")) as usize;
        let Some(inner) = 13usize
            .checked_add(len)
            .and_then(|end| payload.get(13..end))
        else {
            return peek;
        };
        payload = inner;
    }
    if peek.kind == K_TENANT {
        // Layout: u32 len | UTF-8 tenant | inner kind u8 | …
        if payload.len() < 4 {
            return peek;
        }
        let len = u32::from_le_bytes(payload[..4].try_into().expect("4-byte len")) as usize;
        let Some(raw) = payload.get(4..4 + len) else {
            return peek;
        };
        let Ok(tenant) = std::str::from_utf8(raw) else {
            return peek;
        };
        let Some(&inner_kind) = payload.get(4 + len) else {
            return peek;
        };
        peek.tenant = Some(tenant.to_string());
        peek.kind = inner_kind;
    }
    peek
}

/// Raw request kind bytes, for serving cores that must classify a
/// message *before* decoding it (the reactor's admission control reads
/// one byte to pick a priority queue; full decoding happens later on an
/// executor worker).
pub mod kind {
    pub const HELLO: u8 = super::K_HELLO;
    pub const EXECUTE: u8 = super::K_EXECUTE;
    pub const EXECUTE_STORE: u8 = super::K_EXECUTE_STORE;
    pub const EXECUTE_PUSH: u8 = super::K_EXECUTE_PUSH;
    pub const STORE: u8 = super::K_STORE;
    pub const STORE_PART: u8 = super::K_STORE_PART;
    pub const REMOVE: u8 = super::K_REMOVE;
    pub const CATALOG: u8 = super::K_CATALOG;
    pub const METRICS: u8 = super::K_METRICS;
    pub const TRACED: u8 = super::K_TRACED;
    pub const PIPELINED: u8 = super::K_PIPELINED;
    pub const TENANT: u8 = super::K_TENANT;
    pub const BUILD_INDEX: u8 = super::K_BUILD_INDEX;
    pub const INDEX_INFO: u8 = super::K_INDEX_INFO;
}

/// Decode a request from a frame kind and payload.
pub fn decode_request(kind: u8, payload: &[u8]) -> Result<Request> {
    let mut r = Reader::new(payload);
    let req = match kind {
        K_HELLO => Request::Hello,
        K_EXECUTE => Request::Execute {
            plan: read_plan(&mut r, "execute plan")?,
        },
        K_EXECUTE_STORE => Request::ExecuteStore {
            name: r.string("execute-store name")?,
            plan: read_plan(&mut r, "execute-store plan")?,
        },
        K_EXECUTE_PUSH => Request::ExecutePush {
            dest_addr: r.string("push dest addr")?,
            dest_name: r.string("push dest name")?,
            plan: read_plan(&mut r, "push plan")?,
        },
        K_STORE => Request::Store {
            name: r.string("store name")?,
            data: read_dataset(&mut r, "store dataset")?,
        },
        K_STORE_PART => Request::StorePart {
            name: r.string("store-part name")?,
            partition: r.u32("store-part partition")?,
            data: read_dataset(&mut r, "store-part dataset")?,
        },
        K_REMOVE => Request::Remove {
            name: r.string("remove name")?,
        },
        K_BUILD_INDEX => {
            let name = r.string("build-index name")?;
            let column = r.string("build-index column")?;
            let kind_byte = r.u8("build-index kind")?;
            let kind = bda_storage::IndexKind::from_u8(kind_byte)
                .ok_or_else(|| corrupt(format!("bad index kind {kind_byte}")))?;
            Request::BuildIndex { name, column, kind }
        }
        K_INDEX_INFO => Request::IndexInfo {
            name: r.string("index-info name")?,
        },
        K_CATALOG => Request::Catalog,
        K_METRICS => Request::Metrics,
        K_TRACED => {
            let trace_id = r.u64("trace id")?;
            let parent_span = r.u64("parent span")?;
            let inner_kind = r.u8("traced inner kind")?;
            if inner_kind == K_TRACED {
                return Err(corrupt("traced request must not nest"));
            }
            if inner_kind == K_TENANT {
                return Err(corrupt("tenant tag must wrap traced, not nest inside it"));
            }
            let inner_payload = read_block(&mut r, "traced inner payload")?;
            Request::Traced {
                trace_id,
                parent_span,
                inner: Box::new(decode_request(inner_kind, inner_payload)?),
            }
        }
        K_PIPELINED => {
            let tag = r.u64("pipeline tag")?;
            let inner_kind = r.u8("pipelined inner kind")?;
            if inner_kind == K_PIPELINED {
                return Err(corrupt("pipelined request must not nest"));
            }
            let inner_payload = read_block(&mut r, "pipelined inner payload")?;
            Request::Pipelined {
                tag,
                inner: Box::new(decode_request(inner_kind, inner_payload)?),
            }
        }
        K_TENANT => {
            let tenant = r.string("tenant id")?;
            let inner_kind = r.u8("tenant inner kind")?;
            if inner_kind == K_TENANT {
                return Err(corrupt("tenant tag must not nest"));
            }
            if inner_kind == K_PIPELINED {
                return Err(corrupt("pipelined must be the outermost wrapper"));
            }
            let inner_payload = read_block(&mut r, "tenant inner payload")?;
            Request::Tenant {
                tenant,
                inner: Box::new(decode_request(inner_kind, inner_payload)?),
            }
        }
        other => return Err(corrupt(format!("unknown request kind {other:#04x}"))),
    };
    finish(&r, "request")?;
    Ok(req)
}

/// Encode a response as `(frame kind, payload)`.
pub fn encode_response(resp: &Response) -> (u8, Vec<u8>) {
    let mut buf = BytesMut::new();
    let kind = match resp {
        Response::Hello { name, capabilities } => {
            put_string(&mut buf, name);
            let ops: Vec<OpKind> = capabilities.iter().collect();
            buf.put_u32_le(ops.len() as u32);
            for op in ops {
                put_string(&mut buf, op.name());
            }
            K_R_HELLO
        }
        Response::DataSet(ds) => {
            put_block(&mut buf, &encode_dataset(ds));
            K_R_DATASET
        }
        Response::Ack => K_R_ACK,
        Response::Pushed { bytes } => {
            buf.put_u64_le(*bytes);
            K_R_PUSHED
        }
        Response::Catalog(entries) => {
            buf.put_u32_le(entries.len() as u32);
            for e in entries {
                put_string(&mut buf, &e.name);
                let mut sbuf = BytesMut::new();
                bda_storage::wire::encode_schema(&e.schema, &mut sbuf);
                put_block(&mut buf, &sbuf);
                match e.rows {
                    Some(n) => {
                        buf.put_u8(1);
                        buf.put_u64_le(n);
                    }
                    None => buf.put_u8(0),
                }
            }
            K_R_CATALOG
        }
        Response::Text(text) => {
            put_string(&mut buf, text);
            K_R_TEXT
        }
        Response::Traced { spans, inner } => {
            put_block(&mut buf, &bda_obs::wire::encode_spans(spans));
            let (inner_kind, inner_payload) = encode_response(inner);
            buf.put_u8(inner_kind);
            put_block(&mut buf, &inner_payload);
            K_R_TRACED
        }
        Response::Pipelined { tag, inner } => {
            buf.put_u64_le(*tag);
            let (inner_kind, inner_payload) = encode_response(inner);
            buf.put_u8(inner_kind);
            put_block(&mut buf, &inner_payload);
            K_R_PIPELINED
        }
        Response::Error { msg, transient } => {
            buf.put_u8(u8::from(*transient));
            put_string(&mut buf, msg);
            K_R_ERROR
        }
    };
    (kind, buf.to_vec())
}

/// Decode a response from a frame kind and payload.
pub fn decode_response(kind: u8, payload: &[u8]) -> Result<Response> {
    let mut r = Reader::new(payload);
    let resp = match kind {
        K_R_HELLO => {
            let name = r.string("hello name")?;
            let n = r.u32("hello op count")?;
            let n = r.checked_len(n, "hello op count")?;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                let op_name = r.string("hello op")?;
                let op = OpKind::ALL
                    .iter()
                    .copied()
                    .find(|k| k.name() == op_name)
                    .ok_or_else(|| corrupt(format!("unknown operator `{op_name}`")))?;
                ops.push(op);
            }
            Response::Hello {
                name,
                capabilities: CapabilitySet::from_ops(&ops),
            }
        }
        K_R_DATASET => Response::DataSet(read_dataset(&mut r, "result dataset")?),
        K_R_ACK => Response::Ack,
        K_R_PUSHED => Response::Pushed {
            bytes: r.u64("pushed bytes")?,
        },
        K_R_CATALOG => {
            let n = r.u32("catalog count")?;
            let n = r.checked_len(n, "catalog count")?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.string("catalog name")?;
                let sblock = read_block(&mut r, "catalog schema")?;
                let mut sr = Reader::new(sblock);
                let schema = bda_storage::wire::decode_schema(&mut sr)?;
                let rows = match r.u8("catalog rows flag")? {
                    0 => None,
                    1 => Some(r.u64("catalog rows")?),
                    other => return Err(corrupt(format!("bad rows flag {other}"))),
                };
                entries.push(CatalogEntry { name, schema, rows });
            }
            Response::Catalog(entries)
        }
        K_R_TEXT => Response::Text(r.string("text payload")?),
        K_R_TRACED => {
            let span_block = read_block(&mut r, "traced spans")?;
            let spans = bda_obs::wire::decode_spans(span_block)
                .map_err(|e| corrupt(format!("traced spans: {e}")))?;
            let inner_kind = r.u8("traced inner kind")?;
            if inner_kind == K_R_TRACED {
                return Err(corrupt("traced response must not nest"));
            }
            let inner_payload = read_block(&mut r, "traced inner payload")?;
            Response::Traced {
                spans,
                inner: Box::new(decode_response(inner_kind, inner_payload)?),
            }
        }
        K_R_PIPELINED => {
            let tag = r.u64("pipeline tag")?;
            let inner_kind = r.u8("pipelined inner kind")?;
            if inner_kind == K_R_PIPELINED {
                return Err(corrupt("pipelined response must not nest"));
            }
            let inner_payload = read_block(&mut r, "pipelined inner payload")?;
            Response::Pipelined {
                tag,
                inner: Box::new(decode_response(inner_kind, inner_payload)?),
            }
        }
        K_R_ERROR => {
            let transient = match r.u8("error transient flag")? {
                0 => false,
                1 => true,
                other => return Err(corrupt(format!("bad transient flag {other}"))),
            };
            Response::Error {
                msg: r.string("error message")?,
                transient,
            }
        }
        other => return Err(corrupt(format!("unknown response kind {other:#04x}"))),
    };
    finish(&r, "response")?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_storage::Column;

    fn sample_dataset() -> DataSet {
        DataSet::from_columns(vec![
            ("k", Column::from(vec![1i64, 2, 3])),
            ("v", Column::from(vec![0.5f64, 1.5, 2.5])),
        ])
        .unwrap()
    }

    fn request_round_trip(req: Request) {
        let (kind, payload) = encode_request(&req);
        assert_eq!(decode_request(kind, &payload).unwrap(), req);
    }

    fn response_round_trip(resp: Response) {
        let (kind, payload) = encode_response(&resp);
        assert_eq!(decode_response(kind, &payload).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        let ds = sample_dataset();
        let plan = Plan::scan("t", ds.schema().clone()).limit(2);
        request_round_trip(Request::Hello);
        request_round_trip(Request::Execute { plan: plan.clone() });
        request_round_trip(Request::ExecuteStore {
            name: "tmp".into(),
            plan: plan.clone(),
        });
        request_round_trip(Request::ExecutePush {
            dest_addr: "127.0.0.1:7401".into(),
            dest_name: "__bda_frag_0".into(),
            plan,
        });
        request_round_trip(Request::Store {
            name: "t".into(),
            data: ds.clone(),
        });
        request_round_trip(Request::StorePart {
            name: "__bda_frag_0".into(),
            partition: 3,
            data: ds,
        });
        request_round_trip(Request::Remove { name: "t".into() });
        request_round_trip(Request::Catalog);
        request_round_trip(Request::Metrics);
        request_round_trip(Request::BuildIndex {
            name: "t".into(),
            column: "k".into(),
            kind: bda_storage::IndexKind::Hash,
        });
        request_round_trip(Request::BuildIndex {
            name: "t".into(),
            column: "v".into(),
            kind: bda_storage::IndexKind::Sorted,
        });
        request_round_trip(Request::IndexInfo { name: "t".into() });
        // A bad index-kind byte is corruption, not a silent default.
        let (kind, mut payload) = encode_request(&Request::BuildIndex {
            name: "t".into(),
            column: "k".into(),
            kind: bda_storage::IndexKind::Hash,
        });
        *payload.last_mut().unwrap() = 0xEE;
        assert!(decode_request(kind, &payload).is_err());
    }

    #[test]
    fn traced_messages_round_trip() {
        let ds = sample_dataset();
        let plan = Plan::scan("t", ds.schema().clone()).limit(2);
        request_round_trip(Request::Traced {
            trace_id: 0xDEAD_BEEF,
            parent_span: 7,
            inner: Box::new(Request::Execute { plan }),
        });
        response_round_trip(Response::Text("# HELP x y\nx 1\n".into()));
        response_round_trip(Response::Traced {
            spans: vec![bda_obs::Span {
                id: 1,
                parent: None,
                name: "serve:execute".into(),
                site: "rel".into(),
                start_ns: 10,
                end_ns: 500,
                rows: Some(3),
                bytes: None,
                events: vec![bda_obs::SpanEvent {
                    at_ns: 20,
                    label: "decoded".into(),
                }],
            }],
            inner: Box::new(Response::DataSet(ds)),
        });
    }

    #[test]
    fn traced_never_nests() {
        let inner = Request::Traced {
            trace_id: 1,
            parent_span: 0,
            inner: Box::new(Request::Catalog),
        };
        let (kind, payload) = encode_request(&Request::Traced {
            trace_id: 2,
            parent_span: 0,
            inner: Box::new(inner),
        });
        assert!(decode_request(kind, &payload).is_err());
        let (rkind, rpayload) = encode_response(&Response::Traced {
            spans: vec![],
            inner: Box::new(Response::Traced {
                spans: vec![],
                inner: Box::new(Response::Ack),
            }),
        });
        assert!(decode_response(rkind, &rpayload).is_err());
    }

    #[test]
    fn pipelined_messages_round_trip_and_never_nest() {
        let ds = sample_dataset();
        let plan = Plan::scan("t", ds.schema().clone()).limit(2);
        request_round_trip(Request::Pipelined {
            tag: 0xABCD_EF01_2345_6789,
            inner: Box::new(Request::Execute { plan: plan.clone() }),
        });
        // Pipelined may carry Traced (outermost wrapper rule).
        request_round_trip(Request::Pipelined {
            tag: 7,
            inner: Box::new(Request::Traced {
                trace_id: 1,
                parent_span: 0,
                inner: Box::new(Request::Execute { plan }),
            }),
        });
        response_round_trip(Response::Pipelined {
            tag: 42,
            inner: Box::new(Response::DataSet(ds)),
        });
        response_round_trip(Response::Pipelined {
            tag: u64::MAX,
            inner: Box::new(Response::Error {
                msg: "server overloaded".into(),
                transient: true,
            }),
        });
        // Nesting is rejected on decode, both directions.
        let (kind, payload) = encode_request(&Request::Pipelined {
            tag: 1,
            inner: Box::new(Request::Pipelined {
                tag: 2,
                inner: Box::new(Request::Catalog),
            }),
        });
        assert!(decode_request(kind, &payload).is_err());
        let (rkind, rpayload) = encode_response(&Response::Pipelined {
            tag: 1,
            inner: Box::new(Response::Pipelined {
                tag: 2,
                inner: Box::new(Response::Ack),
            }),
        });
        assert!(decode_response(rkind, &rpayload).is_err());
    }

    #[test]
    fn tenant_messages_round_trip_and_respect_nesting_rules() {
        let ds = sample_dataset();
        let plan = Plan::scan("t", ds.schema().clone()).limit(2);
        // Tenant wrapping a plain request.
        request_round_trip(Request::Tenant {
            tenant: "acme".into(),
            inner: Box::new(Request::Execute { plan: plan.clone() }),
        });
        // Tenant may carry Traced.
        request_round_trip(Request::Tenant {
            tenant: "10.0.0.7".into(),
            inner: Box::new(Request::Traced {
                trace_id: 0xBDA,
                parent_span: 1,
                inner: Box::new(Request::Catalog),
            }),
        });
        // Pipelined may carry Tenant (outermost wrapper rule).
        request_round_trip(Request::Pipelined {
            tag: 9,
            inner: Box::new(Request::Tenant {
                tenant: "acme".into(),
                inner: Box::new(Request::Execute { plan }),
            }),
        });
        // Tenant never nests itself.
        let (kind, payload) = encode_request(&Request::Tenant {
            tenant: "a".into(),
            inner: Box::new(Request::Tenant {
                tenant: "b".into(),
                inner: Box::new(Request::Catalog),
            }),
        });
        assert!(decode_request(kind, &payload).is_err());
        // Tenant must wrap Traced, not nest inside it.
        let (kind, payload) = encode_request(&Request::Traced {
            trace_id: 1,
            parent_span: 0,
            inner: Box::new(Request::Tenant {
                tenant: "a".into(),
                inner: Box::new(Request::Catalog),
            }),
        });
        assert!(decode_request(kind, &payload).is_err());
        // Pipelined must stay outermost: Tenant{Pipelined} is rejected.
        let (kind, payload) = encode_request(&Request::Tenant {
            tenant: "a".into(),
            inner: Box::new(Request::Pipelined {
                tag: 1,
                inner: Box::new(Request::Catalog),
            }),
        });
        assert!(decode_request(kind, &payload).is_err());
    }

    #[test]
    fn tenant_truncation_never_panics() {
        let (kind, payload) = encode_request(&Request::Tenant {
            tenant: "acme".into(),
            inner: Box::new(Request::Store {
                name: "t".into(),
                data: sample_dataset(),
            }),
        });
        for cut in 0..payload.len() {
            assert!(decode_request(kind, &payload[..cut]).is_err(), "cut {cut}");
            // The peek must also survive every truncation.
            let _ = peek_frame(kind, &payload[..cut]);
        }
    }

    #[test]
    fn peek_frame_sees_through_wrappers() {
        // Plain request: nothing but the kind.
        let (kind, payload) = encode_request(&Request::Catalog);
        let peek = peek_frame(kind, &payload);
        assert_eq!(
            peek,
            FramePeek {
                tag: None,
                kind: super::K_CATALOG,
                tenant: None
            }
        );

        // Tenant-tagged request.
        let (kind, payload) = encode_request(&Request::Tenant {
            tenant: "acme".into(),
            inner: Box::new(Request::Store {
                name: "t".into(),
                data: sample_dataset(),
            }),
        });
        let peek = peek_frame(kind, &payload);
        assert_eq!(peek.tag, None);
        assert_eq!(peek.kind, super::K_STORE);
        assert_eq!(peek.tenant.as_deref(), Some("acme"));

        // Pipelined{Tenant{Traced{Execute}}}: tag, tenant, and the
        // classification kind is the traced wrapper (ops-visible as a
        // traced request, same as peek_pipelined reported before).
        let ds = sample_dataset();
        let plan = Plan::scan("t", ds.schema().clone()).limit(2);
        let (kind, payload) = encode_request(&Request::Pipelined {
            tag: 0xFEED,
            inner: Box::new(Request::Tenant {
                tenant: "acme".into(),
                inner: Box::new(Request::Traced {
                    trace_id: 7,
                    parent_span: 0,
                    inner: Box::new(Request::Execute { plan }),
                }),
            }),
        });
        let peek = peek_frame(kind, &payload);
        assert_eq!(peek.tag, Some(0xFEED));
        assert_eq!(peek.kind, super::K_TRACED);
        assert_eq!(peek.tenant.as_deref(), Some("acme"));

        // Malformed pipelined prefix: graceful fallback to the outer kind.
        let peek = peek_frame(super::K_PIPELINED, &[0; 8]);
        assert_eq!(
            peek,
            FramePeek {
                tag: None,
                kind: super::K_PIPELINED,
                tenant: None
            }
        );
    }

    #[test]
    fn peek_pipelined_reads_tag_and_inner_kind_without_decoding() {
        let (kind, payload) = encode_request(&Request::Pipelined {
            tag: 0xFEED,
            inner: Box::new(Request::Store {
                name: "t".into(),
                data: sample_dataset(),
            }),
        });
        assert!(is_pipelined_kind(kind));
        let (tag, inner_kind) = peek_pipelined(kind, &payload).unwrap();
        assert_eq!(tag, 0xFEED);
        assert_eq!(inner_kind, super::K_STORE);
        // Not pipelined, or too short: no peek.
        let (kind, payload) = encode_request(&Request::Catalog);
        assert!(peek_pipelined(kind, &payload).is_none());
        assert!(peek_pipelined(super::K_PIPELINED, &[0; 8]).is_none());
    }

    #[test]
    fn responses_round_trip() {
        let ds = sample_dataset();
        response_round_trip(Response::Hello {
            name: "rel".into(),
            capabilities: CapabilitySet::all_base(),
        });
        response_round_trip(Response::DataSet(ds.clone()));
        response_round_trip(Response::Ack);
        response_round_trip(Response::Pushed { bytes: 1234 });
        response_round_trip(Response::Catalog(vec![
            CatalogEntry {
                name: "t".into(),
                schema: ds.schema().clone(),
                rows: Some(3),
            },
            CatalogEntry {
                name: "u".into(),
                schema: ds.schema().clone(),
                rows: None,
            },
        ]));
        response_round_trip(Response::Error {
            msg: "boom".into(),
            transient: false,
        });
        response_round_trip(Response::Error {
            msg: "socket hiccup".into(),
            transient: true,
        });
    }

    #[test]
    fn unknown_kinds_are_errors() {
        assert!(decode_request(0x7E, &[]).is_err());
        assert!(decode_response(0x20, &[]).is_err());
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let (kind, mut payload) = encode_request(&Request::Remove { name: "t".into() });
        payload.push(0);
        assert!(decode_request(kind, &payload).is_err());
    }

    #[test]
    fn truncation_never_panics() {
        let (kind, payload) = encode_request(&Request::Store {
            name: "t".into(),
            data: sample_dataset(),
        });
        for cut in 0..payload.len() {
            assert!(decode_request(kind, &payload[..cut]).is_err(), "cut {cut}");
        }
    }
}
