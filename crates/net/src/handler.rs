//! The protocol-to-engine request handler, factored out of the
//! thread-per-connection server so *any* serving core can mount it: the
//! classic blocking server in [`crate::server`] and the sharded
//! event-loop reactor (`bda-reactor`) both drive the same
//! [`RequestHandler`], so request semantics, metrics, and structured
//! logging are identical regardless of how connections are scheduled.
//!
//! A handler owns the engine, the metrics hub, and the optional request
//! log. [`RequestHandler::handle_frame`] is the whole contract: decode a
//! framed message, execute it, observe it, and return the response —
//! errors become [`Response::Error`], never panics or I/O.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bda_core::Provider;
use bda_obs::meter::UsageBook;
use bda_obs::{MetricsHub, TraceContext, Tracer};

use crate::frame::{read_message, write_message, HEADER_LEN, MAX_FRAME_PAYLOAD};
use crate::proto::{
    decode_request, encode_request, encode_response, CatalogEntry, Request, Response,
};
use crate::Result;

/// Timeout for the outbound connection a push opens to a peer.
pub(crate) const PUSH_TIMEOUT: Duration = Duration::from_secs(30);

/// Where the per-request log lines go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogSink {
    /// Write to the server process's stderr.
    Stderr,
    /// Append to the file at this path (created if absent).
    File(PathBuf),
}

/// Everything needed to answer protocol requests against one engine:
/// the engine itself, the metrics registry every handled request is
/// charged to, and the optional structured request log.
pub struct RequestHandler {
    engine: Arc<dyn Provider>,
    metrics: MetricsHub,
    log: Option<Mutex<Box<dyn Write + Send>>>,
    usage: Option<UsageBook>,
}

impl RequestHandler {
    /// Build a handler over `engine`. `log`, when given, emits one
    /// structured `key=value` line per request.
    pub fn new(
        engine: Arc<dyn Provider>,
        metrics: MetricsHub,
        log: Option<LogSink>,
    ) -> std::io::Result<RequestHandler> {
        let log: Option<Mutex<Box<dyn Write + Send>>> = match log {
            None => None,
            Some(LogSink::Stderr) => Some(Mutex::new(Box::new(std::io::stderr()))),
            Some(LogSink::File(path)) => {
                let f = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?;
                Some(Mutex::new(Box::new(f)))
            }
        };
        Ok(RequestHandler {
            engine,
            metrics,
            log,
            usage: None,
        })
    }

    /// Attach a [`UsageBook`] so every handled request's wall time and
    /// wire bytes are charged to its tenant (in memory — the book
    /// persists at query grain, not per request).
    pub fn set_usage(&mut self, usage: UsageBook) {
        self.usage = Some(usage);
    }

    /// The engine this handler serves.
    pub fn engine(&self) -> &Arc<dyn Provider> {
        &self.engine
    }

    /// The metrics hub requests are charged to (shared cells).
    pub fn metrics(&self) -> MetricsHub {
        self.metrics.clone()
    }

    /// Decode one framed message (`kind`, `payload`, already-counted
    /// `req_bytes` off the wire), execute it, charge metrics and the
    /// request log, and return the reply. Malformed or failing requests
    /// become [`Response::Error`]; this never panics on network bytes.
    pub fn handle_frame(&self, kind: u8, payload: &[u8], req_bytes: u64) -> Response {
        self.handle_frame_as(kind, payload, req_bytes, "-")
    }

    /// [`RequestHandler::handle_frame`] with an explicit fallback tenant
    /// identity — the connection's peer address, typically — charged
    /// when the request itself carries no [`Request::Tenant`] tag.
    pub fn handle_frame_as(
        &self,
        kind: u8,
        payload: &[u8],
        req_bytes: u64,
        fallback_tenant: &str,
    ) -> Response {
        let started = std::time::Instant::now();
        let (label, traced, tenant, query, response) = match decode_request(kind, payload) {
            Ok(req) => {
                let resp = self
                    .handle_request(&req)
                    .unwrap_or_else(|e| Response::from_error(&e));
                let tenant = tenant_of(&req).unwrap_or(fallback_tenant).to_string();
                (
                    request_kind(&req),
                    is_traced(&req),
                    tenant,
                    trace_id_of(&req),
                    resp,
                )
            }
            Err(e) => (
                "malformed",
                false,
                fallback_tenant.to_string(),
                None,
                Response::from_error(&e),
            ),
        };
        self.observe(
            label,
            traced,
            &tenant,
            query,
            started.elapsed(),
            req_bytes,
            &response,
        );
        response
    }

    /// Charge one handled request to the metrics registry and the log.
    #[allow(clippy::too_many_arguments)]
    fn observe(
        &self,
        kind: &str,
        traced: bool,
        tenant: &str,
        query: Option<u64>,
        dur: Duration,
        req_bytes: u64,
        resp: &Response,
    ) {
        let m = &self.metrics;
        let (outcome, resp_bytes) = {
            let (_, payload) = encode_response_size(resp);
            (response_outcome(resp), payload)
        };
        m.counter_labeled(
            "bda_net_requests_total",
            &[("kind", kind)],
            "Requests handled, by kind.",
        )
        .inc();
        if outcome == "error" {
            m.counter_labeled(
                "bda_net_request_errors_total",
                &[("kind", kind)],
                "Requests answered with an error, by kind.",
            )
            .inc();
            bda_obs::flight::global().record(self.engine.name(), || {
                format!("request kind={kind} tenant={tenant} answered with an error")
            });
        }
        m.histogram(
            "bda_net_request_duration_seconds",
            "Wall time to handle one request.",
        )
        .observe_ns(dur.as_nanos() as u64);
        m.counter_labeled(
            "bda_net_wire_bytes_total",
            &[("direction", "received")],
            "Framed bytes moved over this server's connections.",
        )
        .add(req_bytes);
        m.counter_labeled(
            "bda_net_wire_bytes_total",
            &[("direction", "sent")],
            "Framed bytes moved over this server's connections.",
        )
        .add(resp_bytes);
        m.counter_labeled(
            "bda_net_tenant_requests_total",
            &[("tenant", tenant)],
            "Requests handled, by tenant identity.",
        )
        .inc();
        m.counter_labeled(
            "bda_net_tenant_wire_bytes_total",
            &[("tenant", tenant)],
            "Framed bytes moved (both directions), by tenant identity.",
        )
        .add(req_bytes + resp_bytes);
        if let Some(book) = &self.usage {
            book.charge_io(tenant, dur.as_nanos() as u64, req_bytes + resp_bytes);
        }
        if let Some(log) = &self.log {
            let mut w = log.lock().expect("request log poisoned");
            let query = match query {
                Some(id) => format!("{id:#018x}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                w,
                "server={} kind={} traced={} tenant={} query={} dur_us={} req_bytes={} resp_bytes={} outcome={}",
                self.engine.name(),
                kind,
                traced,
                tenant,
                query,
                dur.as_micros(),
                req_bytes,
                resp_bytes,
                outcome,
            )
            .and_then(|_| w.flush());
        }
    }

    fn handle_request(&self, req: &Request) -> Result<Response> {
        self.handle_request_as(req, None)
    }

    fn handle_request_as(&self, req: &Request, tenant: Option<&str>) -> Result<Response> {
        let engine = self.engine.as_ref();
        Ok(match req {
            Request::Hello => Response::Hello {
                name: engine.name().to_string(),
                capabilities: engine.capabilities(),
            },
            Request::Execute { plan } => Response::DataSet(engine.execute(plan)?),
            Request::ExecuteStore { name, plan } => {
                let out = engine.execute(plan)?;
                engine.store(name, out)?;
                Response::Ack
            }
            Request::ExecutePush {
                dest_addr,
                dest_name,
                plan,
            } => {
                let out = engine.execute(plan)?;
                let bytes = push_to_peer(dest_addr, dest_name, out, &Tracer::disabled(), None)?;
                Response::Pushed { bytes }
            }
            Request::Store { name, data } => {
                engine.store(name, data.clone())?;
                Response::Ack
            }
            Request::StorePart {
                name,
                partition,
                data,
            } => {
                // Partition-tagged staging: each partition is addressable on
                // its own, so parallel producers never contend on one name.
                engine.store(&format!("{name}.p{partition}"), data.clone())?;
                Response::Ack
            }
            Request::Remove { name } => {
                engine.remove(name);
                Response::Ack
            }
            Request::BuildIndex { name, column, kind } => {
                engine.build_index(name, column, *kind)?;
                Response::Ack
            }
            Request::IndexInfo { name } => {
                // One `column kind fingerprint` line per index; plain
                // text so old clients (which never send 0x14) need no
                // new response kind.
                let mut out = String::new();
                for spec in engine.index_specs(name) {
                    let fp = engine
                        .index_fingerprint(name, &spec.column)
                        .unwrap_or_default();
                    out.push_str(&format!("{} {} {fp:016x}\n", spec.column, spec.kind.name()));
                }
                Response::Text(out)
            }
            Request::Catalog => Response::Catalog(
                engine
                    .catalog()
                    .into_iter()
                    .map(|(name, schema)| CatalogEntry {
                        rows: engine.row_count_of(&name).map(|n| n as u64),
                        name,
                        schema,
                    })
                    .collect(),
            ),
            Request::Metrics => Response::Text(self.metrics.render()),
            Request::Traced {
                trace_id, inner, ..
            } => {
                // The client does the stitching: server-side spans go back
                // rootless (in this server's own id/clock space) and the
                // client remaps, anchors, and parents them. Errors still
                // travel inside `Traced` so the spans survive the failure.
                let tracer = Tracer::with_trace_id(*trace_id);
                let resp = self
                    .handle_traced(&tracer, inner, tenant)
                    .unwrap_or_else(|e| Response::from_error(&e));
                Response::Traced {
                    spans: tracer.take_spans(),
                    inner: Box::new(resp),
                }
            }
            Request::Pipelined { tag, inner } => {
                // The tag echoes back around whatever the inner request
                // produced — including errors, so a pipelining client can
                // always match a failure to the right in-flight call.
                let resp = self
                    .handle_request_as(inner, tenant)
                    .unwrap_or_else(|e| Response::from_error(&e));
                Response::Pipelined {
                    tag: *tag,
                    inner: Box::new(resp),
                }
            }
            Request::Tenant { tenant, inner } => {
                // The reply is the inner reply — there is no tenant
                // response wrapper. The identity rides down so a traced
                // request stamps it on its serve span.
                self.handle_request_as(inner, Some(tenant))
                    .unwrap_or_else(|e| Response::from_error(&e))
            }
        })
    }

    /// Handle the request inside a [`Request::Traced`] wrapper under a
    /// `serve:<kind>` span, using the engine's traced entry points so its
    /// per-operator spans land in the same trace.
    fn handle_traced(
        &self,
        tracer: &Tracer,
        req: &Request,
        tenant: Option<&str>,
    ) -> Result<Response> {
        let engine = self.engine.as_ref();
        let mut serve = tracer.start(
            None,
            || format!("serve:{}", request_kind(req)),
            engine.name(),
        );
        if let Some(tenant) = tenant {
            // Stamp the identity into the span tree so flight dumps,
            // traces, and profiles join on the same key.
            serve.event(|| format!("tenant:{tenant}"));
        }
        let ctx = TraceContext {
            trace_id: tracer.trace_id(),
            parent_span: serve.id().unwrap_or(0),
        };
        let resp = match req {
            Request::Execute { plan } => {
                let anchor = tracer.now_ns();
                let (out, spans) = engine.execute_traced(plan, &ctx)?;
                tracer.absorb_remote(spans, serve.id(), anchor);
                serve.set_rows(out.num_rows());
                Response::DataSet(out)
            }
            Request::ExecuteStore { name, plan } => {
                let anchor = tracer.now_ns();
                let (out, spans) = engine.execute_traced(plan, &ctx)?;
                tracer.absorb_remote(spans, serve.id(), anchor);
                serve.set_rows(out.num_rows());
                engine.store(name, out)?;
                Response::Ack
            }
            Request::ExecutePush {
                dest_addr,
                dest_name,
                plan,
            } => {
                let anchor = tracer.now_ns();
                let (out, spans) = engine.execute_traced(plan, &ctx)?;
                tracer.absorb_remote(spans, serve.id(), anchor);
                serve.set_rows(out.num_rows());
                let bytes = push_to_peer(dest_addr, dest_name, out, tracer, serve.id())?;
                serve.set_bytes(bytes);
                Response::Pushed { bytes }
            }
            // Control-plane work under the serve span, no deeper spans.
            other => self.handle_request(other)?,
        };
        serve.finish();
        Ok(resp)
    }
}

/// The short request-kind label used in metrics and log lines.
pub(crate) fn request_kind(req: &Request) -> &'static str {
    match req {
        Request::Hello => "hello",
        Request::Execute { .. } => "execute",
        Request::ExecuteStore { .. } => "execute-store",
        Request::ExecutePush { .. } => "execute-push",
        Request::Store { .. } => "store",
        Request::StorePart { .. } => "store-part",
        Request::Remove { .. } => "remove",
        Request::BuildIndex { .. } => "build-index",
        Request::IndexInfo { .. } => "index-info",
        Request::Catalog => "catalog",
        Request::Metrics => "metrics",
        // Wrappers are labelled by the work they carry.
        Request::Traced { inner, .. } => request_kind(inner),
        Request::Pipelined { inner, .. } => request_kind(inner),
        Request::Tenant { inner, .. } => request_kind(inner),
    }
}

/// Whether a trace rides along with this request (looks through the
/// `Pipelined` and `Tenant` wrappers).
fn is_traced(req: &Request) -> bool {
    match req {
        Request::Traced { .. } => true,
        Request::Pipelined { inner, .. } => is_traced(inner),
        Request::Tenant { inner, .. } => is_traced(inner),
        _ => false,
    }
}

/// The tenant identity a request carries, when tagged (looks through
/// `Pipelined`; `Tenant` never rides inside `Traced`).
fn tenant_of(req: &Request) -> Option<&str> {
    match req {
        Request::Tenant { tenant, .. } => Some(tenant),
        Request::Pipelined { inner, .. } => tenant_of(inner),
        _ => None,
    }
}

/// The trace id a request carries, when traced (looks through the
/// wrappers) — the `query=` key log lines and profiles join on.
fn trace_id_of(req: &Request) -> Option<u64> {
    match req {
        Request::Traced { trace_id, .. } => Some(*trace_id),
        Request::Pipelined { inner, .. } => trace_id_of(inner),
        Request::Tenant { inner, .. } => trace_id_of(inner),
        _ => None,
    }
}

/// Wire size of a `len`-byte payload after framing (header per frame).
pub(crate) fn framed_size(len: usize) -> u64 {
    let frames = len.div_ceil(MAX_FRAME_PAYLOAD).max(1);
    (len + frames * HEADER_LEN) as u64
}

/// Encoded-response size without keeping the encoding (the connection
/// handler re-encodes; responses are encoded at most twice, and the log
/// and metrics want the size before the fault hook may drop the reply).
fn encode_response_size(resp: &Response) -> (u8, u64) {
    let (kind, payload) = encode_response(resp);
    (kind, framed_size(payload.len()))
}

/// The log/metrics outcome of a response (looks through the wrappers).
fn response_outcome(resp: &Response) -> &'static str {
    match resp {
        Response::Error { .. } => "error",
        Response::Traced { inner, .. } => response_outcome(inner),
        Response::Pipelined { inner, .. } => response_outcome(inner),
        _ => "ok",
    }
}

/// The direct server-to-server hop: open a connection to the peer and
/// store the dataset there, bypassing the application tier entirely.
/// Returns the framed bytes sent to the peer. With an enabled `tracer`
/// the store is wrapped in [`Request::Traced`] so the *peer's* spans
/// come back and land under `parent` in this trace.
fn push_to_peer(
    dest_addr: &str,
    dest_name: &str,
    data: bda_storage::DataSet,
    tracer: &Tracer,
    parent: Option<u64>,
) -> Result<u64> {
    use bda_core::CoreError;
    let net = |e: std::io::Error| CoreError::Net(format!("push to {dest_addr}: {e}"));
    let addrs: Vec<SocketAddr> = std::net::ToSocketAddrs::to_socket_addrs(dest_addr)
        .map_err(net)?
        .collect();
    let addr = addrs
        .first()
        .ok_or_else(|| CoreError::Net(format!("no address for peer {dest_addr}")))?;
    let mut conn = TcpStream::connect_timeout(addr, PUSH_TIMEOUT).map_err(net)?;
    conn.set_read_timeout(Some(PUSH_TIMEOUT)).map_err(net)?;
    conn.set_write_timeout(Some(PUSH_TIMEOUT)).map_err(net)?;
    let store = Request::Store {
        name: dest_name.to_string(),
        data,
    };
    let req = if tracer.is_enabled() {
        Request::Traced {
            trace_id: tracer.trace_id(),
            parent_span: parent.unwrap_or(0),
            inner: Box::new(store),
        }
    } else {
        store
    };
    let anchor = tracer.now_ns();
    let (kind, payload) = encode_request(&req);
    let sent = write_message(&mut conn, kind, &payload).map_err(net)?;
    conn.flush().map_err(net)?;
    let (rkind, rpayload, _) =
        read_message(&mut conn).map_err(|e| CoreError::Net(format!("push to {dest_addr}: {e}")))?;
    let mut resp = crate::proto::decode_response(rkind, &rpayload)?;
    if let Response::Traced { spans, inner } = resp {
        tracer.absorb_remote(spans, parent, anchor);
        resp = *inner;
    }
    match resp {
        Response::Ack => Ok(sent),
        Response::Error { msg, transient } if transient => Err(CoreError::transient(
            CoreError::Net(format!("peer {dest_addr}: {msg}")),
        )),
        Response::Error { msg, .. } => Err(CoreError::Remote {
            addr: dest_addr.to_string(),
            msg,
        }),
        other => Err(CoreError::Net(format!(
            "unexpected push response: {other:?}"
        ))),
    }
}
