//! The client side: [`RemoteProvider`] implements `bda_core::Provider`
//! over the framed TCP protocol, so a server living in another process
//! registers in a `Federation` exactly like an in-process engine.
//!
//! Connections are pooled per provider and reused across requests;
//! every request carries read/write timeouts; transient transport
//! failures retry with bounded exponential backoff and ±50% jitter so a
//! burst of clients doesn't retry in lockstep (all requests in the
//! protocol are idempotent, so a retry after a half-done request is
//! safe). A failure on a *pooled* connection — typically a server-side
//! idle close — discards it and redials once within the same attempt.
//! Real wire traffic is counted on atomic counters, which the
//! federation's metrics read to report actual bytes alongside the
//! simulated network model.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use bda_core::{CapabilitySet, CoreError, Plan, Provider};
use bda_obs::{Span, TraceContext};
use bda_storage::{DataSet, Schema};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::frame::{read_message, write_message, FrameError};
use crate::proto::{decode_response, encode_request, CatalogEntry, Request, Response};
use crate::Result;

/// Bounded retry-with-backoff policy for transport failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Minimum 1.
    pub attempts: u32,
    /// Delay before the second attempt; doubles each retry.
    pub initial_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            initial_backoff: Duration::from_millis(20),
        }
    }
}

/// Connection options for a [`RemoteProvider`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteOptions {
    /// Per-request I/O timeout (connect, read, and write).
    pub timeout: Duration,
    /// Retry policy for transient transport failures.
    pub retry: RetryPolicy,
    /// Maximum idle connections kept in the pool.
    pub pool_capacity: usize,
    /// Seed of the backoff-jitter stream (deterministic per provider).
    pub jitter_seed: u64,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            timeout: Duration::from_secs(10),
            retry: RetryPolicy::default(),
            pool_capacity: 4,
            jitter_seed: 0xBDA,
        }
    }
}

/// `backoff` scaled by a uniform factor in `[0.5, 1.5)` — the ±50% jitter
/// that de-synchronizes concurrent retriers.
pub fn jittered(backoff: Duration, rng: &mut StdRng) -> Duration {
    backoff.mul_f64(rng.gen_range(0.5..1.5))
}

/// A provider whose engine runs in another process, reached over TCP.
#[derive(Debug)]
pub struct RemoteProvider {
    name: String,
    capabilities: CapabilitySet,
    addr: String,
    opts: RemoteOptions,
    tenant: Option<String>,
    pool: Mutex<Vec<TcpStream>>,
    jitter: Mutex<StdRng>,
    sent: AtomicU64,
    received: AtomicU64,
}

impl RemoteProvider {
    /// Connect to a server at `addr` (`host:port`) with default options.
    /// Performs a `Hello` round trip to learn the server's name and
    /// capabilities.
    pub fn connect(addr: impl Into<String>) -> Result<RemoteProvider> {
        RemoteProvider::connect_with(addr, RemoteOptions::default())
    }

    /// Connect with explicit options.
    pub fn connect_with(addr: impl Into<String>, opts: RemoteOptions) -> Result<RemoteProvider> {
        let mut p = RemoteProvider {
            name: String::new(),
            capabilities: CapabilitySet::new(),
            addr: addr.into(),
            opts,
            tenant: None,
            pool: Mutex::new(Vec::new()),
            jitter: Mutex::new(StdRng::seed_from_u64(opts.jitter_seed)),
            sent: AtomicU64::new(0),
            received: AtomicU64::new(0),
        };
        match p.request(&Request::Hello)? {
            Response::Hello { name, capabilities } => {
                p.name = name;
                p.capabilities = capabilities;
                Ok(p)
            }
            other => Err(unexpected("Hello", &other)),
        }
    }

    /// The address this provider talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Tag every outgoing request with this tenant identity (a
    /// [`Request::Tenant`] wrapper), so metering servers charge this
    /// provider's traffic to the tenant instead of the peer address.
    /// Set before registering the provider; untagged is the default.
    pub fn set_tenant(&mut self, tenant: impl Into<String>) {
        self.tenant = Some(tenant.into());
    }

    /// The tenant identity outgoing requests are tagged with, if any.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Remote catalog with row counts (one round trip).
    pub fn catalog_entries(&self) -> Result<Vec<CatalogEntry>> {
        match self.request(&Request::Catalog)? {
            Response::Catalog(entries) => Ok(entries),
            other => Err(unexpected("Catalog", &other)),
        }
    }

    /// Ship one partition of a partitioned dataset. The server stores it
    /// under `{name}.p{partition}`, so concurrent partition producers
    /// never contend on a single staged name and the pieces stay
    /// individually addressable for scans and cleanup.
    pub fn store_partition(&self, name: &str, partition: u32, data: DataSet) -> Result<()> {
        match self.request(&Request::StorePart {
            name: name.to_string(),
            partition,
            data,
        })? {
            Response::Ack => Ok(()),
            other => Err(unexpected("StorePart", &other)),
        }
    }

    /// Fetch the server's metrics registry rendered in Prometheus text
    /// exposition format (one round trip).
    pub fn metrics_text(&self) -> Result<String> {
        match self.request(&Request::Metrics)? {
            Response::Text(text) => Ok(text),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// The server's index listing for `dataset`, parsed from the
    /// `column kind fingerprint` text lines of [`Request::IndexInfo`].
    /// Empty on transport errors or servers predating the request kind.
    fn index_lines(&self, dataset: &str) -> Vec<(String, String, String)> {
        let Ok(Response::Text(text)) = self.request(&Request::IndexInfo {
            name: dataset.to_string(),
        }) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let mut parts = line.split_whitespace();
                Some((
                    parts.next()?.to_string(),
                    parts.next()?.to_string(),
                    parts.next()?.to_string(),
                ))
            })
            .collect()
    }

    /// Issue `inner` wrapped in [`Request::Traced`]: the server handles
    /// it while recording spans and sends them back. Returns the inner
    /// response plus those spans, still in the *server's* clock and id
    /// space — the caller anchors and remaps them (`absorb_remote`).
    /// A server-side error inside the wrapper converts to the same
    /// [`CoreError`] shapes [`RemoteProvider::request`] produces.
    fn request_traced(&self, inner: Request, ctx: &TraceContext) -> Result<(Response, Vec<Span>)> {
        let resp = self.request(&Request::Traced {
            trace_id: ctx.trace_id,
            parent_span: ctx.parent_span,
            inner: Box::new(inner),
        })?;
        match resp {
            Response::Traced { spans, inner } => match *inner {
                Response::Error { msg, transient } if transient => Err(CoreError::transient(
                    CoreError::Net(format!("remote `{}`: {msg}", self.addr)),
                )),
                Response::Error { msg, .. } => Err(CoreError::Remote {
                    addr: self.addr.clone(),
                    msg,
                }),
                resp => Ok((resp, spans)),
            },
            other => Err(unexpected("Traced", &other)),
        }
    }

    /// Issue one request, retrying transient transport failures with
    /// bounded, jittered exponential backoff. Server-reported *transient*
    /// errors retry too; permanent ones surface immediately as
    /// [`CoreError::Remote`].
    pub fn request(&self, req: &Request) -> Result<Response> {
        let (kind, payload) = encode_request(req);
        // A configured tenant tags every outgoing message (wrapping the
        // encoded bytes, never re-encoding an embedded dataset).
        let (kind, payload) = match &self.tenant {
            Some(tenant) if kind != crate::proto::kind::TENANT => {
                crate::proto::encode_tenant_wrapped(tenant, kind, &payload)
            }
            _ => (kind, payload),
        };
        let attempts = self.opts.retry.attempts.max(1);
        let mut backoff = self.opts.retry.initial_backoff;
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let delay = {
                    let mut rng = self.jitter.lock().expect("jitter rng poisoned");
                    jittered(backoff, &mut rng)
                };
                std::thread::sleep(delay);
                backoff = backoff.saturating_mul(2);
            }
            match self.try_request(kind, &payload) {
                Ok(Response::Error { msg, transient }) => {
                    let err = if transient {
                        CoreError::transient(CoreError::Net(format!(
                            "remote `{}`: {msg}",
                            self.addr
                        )))
                    } else {
                        return Err(CoreError::Remote {
                            addr: self.addr.clone(),
                            msg,
                        });
                    };
                    last = Some(err);
                }
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    last = Some(CoreError::Net(format!(
                        "request to {} failed: {e}",
                        self.addr
                    )))
                }
            }
        }
        let e = last.expect("at least one attempt ran");
        Err(CoreError::Net(format!(
            "request to {} failed after {attempts} attempts: {e}",
            self.addr
        )))
    }

    /// One attempt over one pooled (or fresh) connection. A roundtrip
    /// failure on a pooled connection usually means the server closed it
    /// while idle — discard it and redial once within the same attempt.
    /// Any failure discards the connection; success returns it to the
    /// pool.
    fn try_request(&self, kind: u8, payload: &[u8]) -> std::result::Result<Response, FrameError> {
        let (conn, pooled) = match self.checkout() {
            Some(c) => (c, true),
            None => (self.dial()?, false),
        };
        match self.roundtrip(conn, kind, payload) {
            Err(_) if pooled => self.roundtrip(self.dial()?, kind, payload),
            outcome => outcome,
        }
    }

    /// Send `kind`+`payload` on `conn` and read the response, returning
    /// `conn` to the pool on success.
    fn roundtrip(
        &self,
        mut conn: TcpStream,
        kind: u8,
        payload: &[u8],
    ) -> std::result::Result<Response, FrameError> {
        let outcome = (|| {
            let sent = write_message(&mut conn, kind, payload)?;
            conn.flush_write()?;
            let (rkind, rpayload, received) = read_message(&mut conn)?;
            self.sent.fetch_add(sent, Ordering::Relaxed);
            self.received.fetch_add(received, Ordering::Relaxed);
            decode_response(rkind, &rpayload)
                .map_err(|e| FrameError::Io(std::io::Error::other(e.to_string())))
        })();
        if outcome.is_ok() {
            self.checkin(conn);
        }
        outcome
    }

    fn dial(&self) -> std::io::Result<TcpStream> {
        let addrs: Vec<_> =
            std::net::ToSocketAddrs::to_socket_addrs(&self.addr.as_str())?.collect();
        let addr = addrs
            .first()
            .ok_or_else(|| std::io::Error::other(format!("no address for {}", self.addr)))?;
        let stream = TcpStream::connect_timeout(addr, self.opts.timeout)?;
        stream.set_read_timeout(Some(self.opts.timeout))?;
        stream.set_write_timeout(Some(self.opts.timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    fn checkout(&self) -> Option<TcpStream> {
        self.pool.lock().ok()?.pop()
    }

    fn checkin(&self, conn: TcpStream) {
        if let Ok(mut pool) = self.pool.lock() {
            if pool.len() < self.opts.pool_capacity {
                pool.push(conn);
            }
        }
    }
}

/// `flush` needs `Write` in scope; a tiny extension keeps call sites tidy.
trait FlushWrite {
    fn flush_write(&mut self) -> std::io::Result<()>;
}

impl FlushWrite for TcpStream {
    fn flush_write(&mut self) -> std::io::Result<()> {
        std::io::Write::flush(self)
    }
}

fn unexpected(what: &str, got: &Response) -> CoreError {
    CoreError::Net(format!("unexpected response to {what}: {got:?}"))
}

impl Provider for RemoteProvider {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> CapabilitySet {
        self.capabilities.clone()
    }

    fn catalog(&self) -> Vec<(String, Schema)> {
        self.catalog_entries()
            .map(|entries| entries.into_iter().map(|e| (e.name, e.schema)).collect())
            .unwrap_or_default()
    }

    fn execute(&self, plan: &Plan) -> Result<DataSet> {
        match self.request(&Request::Execute { plan: plan.clone() })? {
            Response::DataSet(ds) => Ok(ds),
            other => Err(unexpected("Execute", &other)),
        }
    }

    fn store(&self, name: &str, data: DataSet) -> Result<()> {
        match self.request(&Request::Store {
            name: name.to_string(),
            data,
        })? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Store", &other)),
        }
    }

    fn remove(&self, name: &str) {
        let _ = self.request(&Request::Remove {
            name: name.to_string(),
        });
    }

    fn row_count_of(&self, name: &str) -> Option<usize> {
        self.catalog_entries()
            .ok()?
            .into_iter()
            .find(|e| e.name == name)
            .and_then(|e| e.rows)
            .map(|n| n as usize)
    }

    fn build_index(&self, dataset: &str, column: &str, kind: bda_storage::IndexKind) -> Result<()> {
        match self.request(&Request::BuildIndex {
            name: dataset.to_string(),
            column: column.to_string(),
            kind,
        })? {
            Response::Ack => Ok(()),
            other => Err(unexpected("BuildIndex", &other)),
        }
    }

    fn index_specs(&self, dataset: &str) -> Vec<bda_storage::IndexSpec> {
        self.index_lines(dataset)
            .into_iter()
            .filter_map(|(column, kind, _)| {
                Some(bda_storage::IndexSpec {
                    column,
                    kind: bda_storage::IndexKind::parse(&kind)?,
                })
            })
            .collect()
    }

    fn index_fingerprint(&self, dataset: &str, column: &str) -> Option<u64> {
        self.index_lines(dataset)
            .into_iter()
            .find(|(c, _, _)| c == column)
            .and_then(|(_, _, fp)| u64::from_str_radix(&fp, 16).ok())
    }

    fn endpoint(&self) -> Option<String> {
        Some(self.addr.clone())
    }

    fn execute_push(&self, plan: &Plan, peer_addr: &str, dest_name: &str) -> Option<Result<u64>> {
        Some(
            match self.request(&Request::ExecutePush {
                dest_addr: peer_addr.to_string(),
                dest_name: dest_name.to_string(),
                plan: plan.clone(),
            }) {
                Ok(Response::Pushed { bytes }) => Ok(bytes),
                Ok(other) => Err(unexpected("ExecutePush", &other)),
                Err(e) => Err(e),
            },
        )
    }

    fn wire_bytes(&self) -> (u64, u64) {
        (
            self.sent.load(Ordering::Relaxed),
            self.received.load(Ordering::Relaxed),
        )
    }

    fn metrics_text(&self) -> Option<String> {
        RemoteProvider::metrics_text(self).ok()
    }

    fn execute_traced(&self, plan: &Plan, ctx: &TraceContext) -> Result<(DataSet, Vec<Span>)> {
        match self.request_traced(Request::Execute { plan: plan.clone() }, ctx)? {
            (Response::DataSet(ds), spans) => Ok((ds, spans)),
            (other, _) => Err(unexpected("Execute", &other)),
        }
    }

    fn execute_push_traced(
        &self,
        plan: &Plan,
        peer_addr: &str,
        dest_name: &str,
        ctx: &TraceContext,
    ) -> Option<Result<(u64, Vec<Span>)>> {
        let req = Request::ExecutePush {
            dest_addr: peer_addr.to_string(),
            dest_name: dest_name.to_string(),
            plan: plan.clone(),
        };
        Some(match self.request_traced(req, ctx) {
            Ok((Response::Pushed { bytes }, spans)) => Ok((bytes, spans)),
            Ok((other, _)) => Err(unexpected("ExecutePush", &other)),
            Err(e) => Err(e),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_stays_within_half_to_three_halves() {
        let base = Duration::from_millis(100);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let d = jittered(base, &mut rng);
            assert!(d >= base / 2 && d < base * 3 / 2, "{d:?}");
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let base = Duration::from_millis(80);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(jittered(base, &mut a), jittered(base, &mut b));
        }
    }
}
