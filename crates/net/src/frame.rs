//! Length-prefixed framing over a byte stream.
//!
//! A logical *message* is `(kind, payload)`. On the wire it is one or
//! more *frames*, each:
//!
//! ```text
//! +------+-------+----------------+---------------+
//! | kind | flags | len (u32, LE)  | payload bytes |
//! | 1 B  | 1 B   | 4 B            | len B         |
//! +------+-------+----------------+---------------+
//! ```
//!
//! Payloads larger than [`MAX_FRAME_PAYLOAD`] are split across frames;
//! every frame but the last sets [`FLAG_MORE`] and repeats the kind, so a
//! receiver can reassemble without knowing the total size up front.
//! Decoding is strictly checked: truncated input, oversized frames,
//! runaway messages, and kind changes mid-message are all *errors*, never
//! panics — these bytes come from the network.

use std::fmt;
use std::io::{self, Read, Write};

/// Bytes of frame header preceding each payload chunk.
pub const HEADER_LEN: usize = 6;

/// Flag bit: more frames of this message follow.
pub const FLAG_MORE: u8 = 0x01;

/// Largest payload a single frame may carry (1 MiB).
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Largest reassembled message accepted by [`read_message`] (512 MiB) —
/// a backstop against hostile or corrupt length prefixes.
pub const MAX_MESSAGE_BYTES: usize = 512 << 20;

/// Errors raised while reading frames off a stream.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (includes truncation as
    /// `UnexpectedEof` and timeouts as `WouldBlock`/`TimedOut`).
    Io(io::Error),
    /// A frame header declared a payload above [`MAX_FRAME_PAYLOAD`].
    OversizedFrame {
        /// The declared length.
        len: u32,
    },
    /// A multi-frame message exceeded [`MAX_MESSAGE_BYTES`].
    OversizedMessage {
        /// Bytes accumulated when the limit tripped.
        total: usize,
    },
    /// A continuation frame changed the message kind mid-stream.
    KindMismatch {
        /// Kind of the first frame.
        first: u8,
        /// Kind of the offending continuation frame.
        got: u8,
    },
    /// Reserved flag bits were set.
    BadFlags(u8),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o: {e}"),
            FrameError::OversizedFrame { len } => {
                write!(f, "frame payload {len} exceeds {MAX_FRAME_PAYLOAD} bytes")
            }
            FrameError::OversizedMessage { total } => {
                write!(
                    f,
                    "message exceeds {MAX_MESSAGE_BYTES} bytes ({total} read)"
                )
            }
            FrameError::KindMismatch { first, got } => {
                write!(f, "continuation frame kind {got} != initial kind {first}")
            }
            FrameError::BadFlags(flags) => write!(f, "reserved flag bits set: {flags:#04x}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one message, splitting into frames as needed. Returns the total
/// bytes put on the wire (headers included). Does not flush.
pub fn write_message<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> io::Result<u64> {
    let mut written = 0u64;
    let mut chunks = payload.chunks(MAX_FRAME_PAYLOAD);
    let mut chunk = chunks.next().unwrap_or(&[]);
    loop {
        let next = chunks.next();
        let flags = if next.is_some() { FLAG_MORE } else { 0 };
        let mut header = [0u8; HEADER_LEN];
        header[0] = kind;
        header[1] = flags;
        header[2..6].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
        w.write_all(&header)?;
        w.write_all(chunk)?;
        written += (HEADER_LEN + chunk.len()) as u64;
        match next {
            Some(c) => chunk = c,
            None => return Ok(written),
        }
    }
}

/// Read one message, reassembling continuation frames. Returns the kind,
/// the payload, and the total bytes consumed off the wire.
pub fn read_message<R: Read>(r: &mut R) -> Result<(u8, Vec<u8>, u64), FrameError> {
    read_message_limited(r, MAX_MESSAGE_BYTES)
}

/// Try to parse one complete message from the front of `buf` without
/// consuming from any stream — the incremental entry point the reactor's
/// non-blocking read path uses (bytes arrive in arbitrary chunks; the
/// caller keeps an accumulation buffer and drains `consumed` bytes on
/// success).
///
/// * `Ok(Some((kind, payload, consumed)))` — a full message (all frames
///   through the final one) is present in the first `consumed` bytes.
/// * `Ok(None)` — the prefix is valid so far but incomplete; read more.
/// * `Err(_)` — the prefix can never become a valid message (oversized
///   frame, kind change mid-message, reserved flags, reassembly cap).
pub fn parse_message(
    buf: &[u8],
    max_message_bytes: usize,
) -> Result<Option<(u8, Vec<u8>, usize)>, FrameError> {
    let mut off = 0usize;
    let mut payload = Vec::new();
    let mut first_kind: Option<u8> = None;
    loop {
        if buf.len() < off + HEADER_LEN {
            return Ok(None);
        }
        let header = &buf[off..off + HEADER_LEN];
        let kind = header[0];
        let flags = header[1];
        let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]);
        if flags & !FLAG_MORE != 0 {
            return Err(FrameError::BadFlags(flags));
        }
        if len as usize > MAX_FRAME_PAYLOAD {
            return Err(FrameError::OversizedFrame { len });
        }
        match first_kind {
            None => first_kind = Some(kind),
            Some(first) if first != kind => {
                return Err(FrameError::KindMismatch { first, got: kind })
            }
            Some(_) => {}
        }
        if payload.len() + len as usize > max_message_bytes {
            return Err(FrameError::OversizedMessage {
                total: payload.len() + len as usize,
            });
        }
        if buf.len() < off + HEADER_LEN + len as usize {
            return Ok(None);
        }
        payload.extend_from_slice(&buf[off + HEADER_LEN..off + HEADER_LEN + len as usize]);
        off += HEADER_LEN + len as usize;
        if flags & FLAG_MORE == 0 {
            let kind = first_kind.expect("first_kind set on first iteration");
            return Ok(Some((kind, payload, off)));
        }
    }
}

/// [`read_message`] with an explicit reassembly cap instead of
/// [`MAX_MESSAGE_BYTES`] — the 512 MiB production limit is untestable
/// directly, so tests exercise the overflow path through this.
pub fn read_message_limited<R: Read>(
    r: &mut R,
    max_message_bytes: usize,
) -> Result<(u8, Vec<u8>, u64), FrameError> {
    let mut payload = Vec::new();
    let mut consumed = 0u64;
    let mut first_kind: Option<u8> = None;
    loop {
        let mut header = [0u8; HEADER_LEN];
        r.read_exact(&mut header)?;
        let kind = header[0];
        let flags = header[1];
        let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]);
        if flags & !FLAG_MORE != 0 {
            return Err(FrameError::BadFlags(flags));
        }
        if len as usize > MAX_FRAME_PAYLOAD {
            return Err(FrameError::OversizedFrame { len });
        }
        match first_kind {
            None => first_kind = Some(kind),
            Some(first) if first != kind => {
                return Err(FrameError::KindMismatch { first, got: kind })
            }
            Some(_) => {}
        }
        if payload.len() + len as usize > max_message_bytes {
            return Err(FrameError::OversizedMessage {
                total: payload.len() + len as usize,
            });
        }
        let start = payload.len();
        payload.resize(start + len as usize, 0);
        r.read_exact(&mut payload[start..])?;
        consumed += (HEADER_LEN + len as usize) as u64;
        if flags & FLAG_MORE == 0 {
            let kind = first_kind.expect("first_kind set on first iteration");
            return Ok((kind, payload, consumed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(kind: u8, payload: &[u8]) -> (u8, Vec<u8>) {
        let mut wire = Vec::new();
        let written = write_message(&mut wire, kind, payload).unwrap();
        assert_eq!(written as usize, wire.len());
        let (k, p, consumed) = read_message(&mut wire.as_slice()).unwrap();
        assert_eq!(consumed as usize, wire.len());
        (k, p)
    }

    #[test]
    fn single_frame_round_trip() {
        let (k, p) = round_trip(7, b"hello");
        assert_eq!(k, 7);
        assert_eq!(p, b"hello");
    }

    #[test]
    fn empty_payload_round_trip() {
        let (k, p) = round_trip(3, b"");
        assert_eq!(k, 3);
        assert!(p.is_empty());
    }

    #[test]
    fn multi_frame_round_trip() {
        let payload: Vec<u8> = (0..(2 * MAX_FRAME_PAYLOAD + 17))
            .map(|i| (i % 251) as u8)
            .collect();
        let mut wire = Vec::new();
        write_message(&mut wire, 9, &payload).unwrap();
        // Three frames: 1 MiB + 1 MiB + 17 B, each with a header.
        assert_eq!(wire.len(), payload.len() + 3 * HEADER_LEN);
        assert_eq!(wire[1] & FLAG_MORE, FLAG_MORE, "first frame continues");
        let (k, p, _) = read_message(&mut wire.as_slice()).unwrap();
        assert_eq!(k, 9);
        assert_eq!(p, payload);
    }

    #[test]
    fn truncation_is_an_error() {
        let mut wire = Vec::new();
        write_message(&mut wire, 1, b"payload bytes").unwrap();
        for cut in 0..wire.len() {
            let err = read_message(&mut &wire[..cut]).unwrap_err();
            assert!(matches!(err, FrameError::Io(_)), "cut {cut}: {err}");
        }
    }

    #[test]
    fn oversized_message_is_an_error() {
        // Two frames of 4 B against a 6 B cap: the second frame tips it.
        let mut wire = Vec::new();
        wire.extend_from_slice(&[2, FLAG_MORE, 4, 0, 0, 0]);
        wire.extend_from_slice(b"abcd");
        wire.extend_from_slice(&[2, 0, 4, 0, 0, 0]);
        wire.extend_from_slice(b"efgh");
        assert!(matches!(
            read_message_limited(&mut wire.as_slice(), 6),
            Err(FrameError::OversizedMessage { total: 8 })
        ));
        // The same bytes are fine under the production limit.
        let (k, p, _) = read_message(&mut wire.as_slice()).unwrap();
        assert_eq!((k, p.as_slice()), (2, b"abcdefgh".as_slice()));
    }

    #[test]
    fn oversized_frame_is_an_error() {
        let mut wire = vec![1u8, 0];
        wire.extend_from_slice(&(MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(
            read_message(&mut wire.as_slice()),
            Err(FrameError::OversizedFrame { .. })
        ));
    }

    #[test]
    fn kind_change_mid_message_is_an_error() {
        let mut wire = Vec::new();
        // Frame 1: kind 5, MORE set, empty payload.
        wire.extend_from_slice(&[5, FLAG_MORE, 0, 0, 0, 0]);
        // Frame 2: kind 6, final.
        wire.extend_from_slice(&[6, 0, 0, 0, 0, 0]);
        assert!(matches!(
            read_message(&mut wire.as_slice()),
            Err(FrameError::KindMismatch { first: 5, got: 6 })
        ));
    }

    #[test]
    fn parse_message_handles_every_split_point() {
        // A three-frame message presented one byte at a time: every
        // prefix is "incomplete", never an error, and the full buffer
        // parses to the original message with the exact consumed count.
        let payload: Vec<u8> = (0..(2 * MAX_FRAME_PAYLOAD + 17))
            .map(|i| (i % 251) as u8)
            .collect();
        let mut wire = Vec::new();
        write_message(&mut wire, 9, &payload).unwrap();
        // Sampling every cut of a 2 MiB wire image is slow; probe the
        // interesting region (frame boundaries) plus a stride elsewhere.
        let boundary = HEADER_LEN + MAX_FRAME_PAYLOAD;
        let mut cuts: Vec<usize> = (0..wire.len()).step_by(65_536).collect();
        cuts.extend(boundary.saturating_sub(3)..boundary + 3);
        cuts.extend(2 * boundary - 3..2 * boundary + 3);
        for cut in cuts {
            assert!(
                parse_message(&wire[..cut], MAX_MESSAGE_BYTES)
                    .unwrap()
                    .is_none(),
                "cut {cut} should be incomplete"
            );
        }
        let (kind, got, consumed) = parse_message(&wire, MAX_MESSAGE_BYTES).unwrap().unwrap();
        assert_eq!((kind, consumed), (9, wire.len()));
        assert_eq!(got, payload);
    }

    #[test]
    fn parse_message_leaves_trailing_bytes_unconsumed() {
        let mut wire = Vec::new();
        write_message(&mut wire, 4, b"first").unwrap();
        let first_len = wire.len();
        write_message(&mut wire, 5, b"second").unwrap();
        let (kind, payload, consumed) = parse_message(&wire, MAX_MESSAGE_BYTES).unwrap().unwrap();
        assert_eq!(
            (kind, payload.as_slice(), consumed),
            (4, b"first".as_slice(), first_len)
        );
        let (kind, payload, _) = parse_message(&wire[consumed..], MAX_MESSAGE_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!((kind, payload.as_slice()), (5, b"second".as_slice()));
    }

    #[test]
    fn parse_message_rejects_hopeless_prefixes_early() {
        // Oversized frame header: rejected from the header alone, before
        // any payload bytes arrive.
        let mut wire = vec![1u8, 0];
        wire.extend_from_slice(&(MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(
            parse_message(&wire, MAX_MESSAGE_BYTES),
            Err(FrameError::OversizedFrame { .. })
        ));
        // Reassembly cap: tripped by headers alone too.
        let mut wire = Vec::new();
        wire.extend_from_slice(&[2, FLAG_MORE, 4, 0, 0, 0]);
        wire.extend_from_slice(b"abcd");
        wire.extend_from_slice(&[2, 0, 4, 0, 0, 0]);
        assert!(matches!(
            parse_message(&wire, 6),
            Err(FrameError::OversizedMessage { .. })
        ));
        // Kind change mid-message.
        let mut wire = Vec::new();
        wire.extend_from_slice(&[5, FLAG_MORE, 0, 0, 0, 0]);
        wire.extend_from_slice(&[6, 0, 0, 0, 0, 0]);
        assert!(matches!(
            parse_message(&wire, MAX_MESSAGE_BYTES),
            Err(FrameError::KindMismatch { first: 5, got: 6 })
        ));
    }

    #[test]
    fn reserved_flags_are_an_error() {
        let wire = [1u8, 0x80, 0, 0, 0, 0];
        assert!(matches!(
            read_message(&mut wire.as_slice()),
            Err(FrameError::BadFlags(0x80))
        ));
    }
}
