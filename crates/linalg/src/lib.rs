//! # `bda-linalg`: "DenseLab", the linear-algebra back-end Provider
//!
//! The ScaLAPACK analogue from the paper's multi-server example: a
//! provider whose only fluency is dense 2-D `f64` arrays, but which
//! executes `MatMul` with a cache-blocked native kernel — orders of
//! magnitude faster than the lowered join/aggregate form. This asymmetry
//! is precisely what makes intent preservation (desideratum 3) worth
//! having; experiment F1 quantifies it.
//!
//! Capabilities: `Scan`, `MatMul`, `ElemWise`, `Permute` (transpose) and
//! `Dice` (submatrix). Nothing relational — a plan that needs filters or
//! joins must involve another server, which in turn exercises multi-server
//! planning (desideratum 4).

pub mod conv;
pub mod matrix;

use bda_core::{CapabilitySet, CoreError, OpKind, Plan, Provider};
use bda_storage::{DataSet, Schema};
use parking_lot::RwLock;
use std::collections::BTreeMap;

pub use matrix::{axpy, l1_norm, l2_norm, power_iteration, Matrix};

/// The linear-algebra engine.
pub struct LinAlgEngine {
    name: String,
    matrices: RwLock<BTreeMap<String, DataSet>>,
}

impl LinAlgEngine {
    /// An empty engine named `name`.
    pub fn new(name: impl Into<String>) -> LinAlgEngine {
        LinAlgEngine {
            name: name.into(),
            matrices: RwLock::new(BTreeMap::new()),
        }
    }

    /// The capability set of every linear-algebra engine instance.
    pub fn static_capabilities() -> CapabilitySet {
        CapabilitySet::from_ops(&[
            OpKind::Scan,
            OpKind::Values,
            OpKind::MatMul,
            OpKind::ElemWise,
            OpKind::Permute,
            OpKind::Dice,
            // Partition-parallel execution: advertising Exchange/Merge
            // tells the planner this engine runs block-split kernels.
            OpKind::Exchange,
            OpKind::Merge,
        ])
    }
}

impl Provider for LinAlgEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> CapabilitySet {
        Self::static_capabilities()
    }

    fn catalog(&self) -> Vec<(String, Schema)> {
        self.matrices
            .read()
            .iter()
            .map(|(n, ds)| (n.clone(), ds.schema().clone()))
            .collect()
    }

    fn execute(&self, plan: &Plan) -> Result<DataSet, CoreError> {
        let unsupported = self.capabilities().unsupported_in(plan);
        if !unsupported.is_empty() {
            return Err(CoreError::Unsupported {
                provider: self.name.clone(),
                op: unsupported
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", "),
            });
        }
        let matrices = self.matrices.read();
        conv::execute(plan, &matrices)
    }

    fn store(&self, name: &str, data: DataSet) -> Result<(), CoreError> {
        // This engine only speaks dense 2-D float matrices; verify and
        // densify at ingest so execution can assume the layout.
        conv::check_matrix_schema(data.schema())?;
        let dense = data.to_dense()?;
        self.matrices.write().insert(name.to_string(), dense);
        Ok(())
    }

    fn remove(&self, name: &str) {
        self.matrices.write().remove(name);
    }

    fn row_count_of(&self, name: &str) -> Option<usize> {
        self.matrices.read().get(name).map(|ds| ds.num_rows())
    }

    fn execute_traced(
        &self,
        plan: &Plan,
        ctx: &bda_obs::TraceContext,
    ) -> Result<(DataSet, Vec<bda_obs::Span>), CoreError> {
        let tracer = bda_obs::Tracer::with_trace_id(ctx.trace_id);
        let _scope = bda_obs::scope::install(&tracer, &self.name, None);
        let out = self.execute(plan)?;
        Ok((out, tracer.take_spans()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_storage::dataset::{dataset_matrix, matrix_dataset};
    use bda_storage::Column;

    fn engine() -> LinAlgEngine {
        let e = LinAlgEngine::new("la");
        let a = matrix_dataset(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = matrix_dataset(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        e.store("a", a).unwrap();
        e.store("b", b).unwrap();
        e
    }

    #[test]
    fn native_matmul() {
        let e = engine();
        let a = e.schema_of("a").unwrap();
        let b = e.schema_of("b").unwrap();
        let plan =
            Plan::scan("a", a).matmul(Plan::scan("b", b).rename(vec![("row", "k"), ("col", "j")]));
        // Rename is not in the capability set...
        assert!(e.execute(&plan).is_err());
        // ...but matmul over plain scans works (dimension names differ per
        // scan already).
        let plan = Plan::scan("a", e.schema_of("a").unwrap())
            .matmul(Plan::scan("b", e.schema_of("b").unwrap()));
        let out = e.execute(&plan).unwrap();
        let (r, c, data) = dataset_matrix(&out).unwrap();
        assert_eq!((r, c), (2, 2));
        assert_eq!(data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn rejects_non_matrix_ingest() {
        let e = LinAlgEngine::new("la");
        let rel = DataSet::from_columns(vec![("k", Column::from(vec![1i64]))]).unwrap();
        assert!(e.store("rel", rel).is_err());
    }
}
