//! Dense matrices and the numeric kernels of the linear-algebra engine.
//!
//! Row-major `f64` storage, cache-blocked multiplication with an i-k-j
//! inner loop (streaming access on both operands), and the handful of
//! BLAS-1/2/3 routines the experiments need. This is the stand-in for
//! ScaLAPACK in the paper's SciDB + ScaLAPACK multi-server example.

use std::fmt;

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A rows×cols zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from row-major data; panics if the length is wrong.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// The n×n identity.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Consume into the row-major data.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Rows `[start, end)` as their own matrix. Row-major storage makes
    /// the band one contiguous slice, so block-split kernels copy once.
    pub fn row_band(&self, start: usize, end: usize) -> Matrix {
        Matrix::from_vec(
            end - start,
            self.cols,
            self.data[start * self.cols..end * self.cols].to_vec(),
        )
    }

    /// Element (i, j).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Set element (i, j).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Naive triple-loop multiplication (kept as the baseline the blocked
    /// kernel is benchmarked against).
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..other.cols {
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += self.get(i, k) * other.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Cache-blocked multiplication with an i-k-j inner loop: the `k`
    /// loop hoists `a[i][k]` into a register and streams both `b`'s and
    /// the output's rows sequentially.
    #[allow(clippy::needless_range_loop)] // explicit blocked indexing
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        const BLOCK: usize = 64;
        let (n, m, p) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f64; n * p];
        for ib in (0..n).step_by(BLOCK) {
            let i_end = (ib + BLOCK).min(n);
            for kb in (0..m).step_by(BLOCK) {
                let k_end = (kb + BLOCK).min(m);
                for jb in (0..p).step_by(BLOCK) {
                    let j_end = (jb + BLOCK).min(p);
                    for i in ib..i_end {
                        let a_row = &self.data[i * m..(i + 1) * m];
                        let out_row = &mut out[i * p..(i + 1) * p];
                        for k in kb..k_end {
                            let a_ik = a_row[k];
                            if a_ik == 0.0 {
                                continue;
                            }
                            let b_row = &other.data[k * p..(k + 1) * p];
                            for j in jb..j_end {
                                out_row[j] += a_ik * b_row[j];
                            }
                        }
                    }
                }
            }
        }
        Matrix {
            rows: n,
            cols: p,
            data: out,
        }
    }

    /// Matrix-vector product.
    #[allow(clippy::needless_range_loop)] // row-slice indexing
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            out[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Element-wise combination with another same-shape matrix.
    pub fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Scale every element.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v * s).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// `y += a * x` for vectors.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// L1 norm of a vector.
pub fn l1_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// L2 norm of a vector.
pub fn l2_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Power iteration: dominant eigenvalue and (L2-normalized) eigenvector.
/// Returns `(lambda, v, iterations)`; stops when the eigenvector's L1
/// change drops below `epsilon` or after `max_iters` steps.
pub fn power_iteration(m: &Matrix, max_iters: usize, epsilon: f64) -> (f64, Vec<f64>, usize) {
    assert_eq!(m.rows(), m.cols(), "power iteration needs a square matrix");
    let n = m.rows();
    let mut v = vec![1.0 / (n as f64).sqrt(); n];
    let mut lambda = 0.0;
    let mut iters = 0;
    for it in 0..max_iters {
        iters = it + 1;
        let w = m.matvec(&v);
        let norm = l2_norm(&w);
        if norm == 0.0 {
            return (0.0, v, iters);
        }
        let next: Vec<f64> = w.iter().map(|x| x / norm).collect();
        let delta: f64 = next.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
        lambda = norm;
        v = next;
        if delta < epsilon {
            break;
        }
    }
    (lambda, v, iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn from_vec_checks_length() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn identity_multiplication() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn blocked_matches_naive() {
        // Sizes chosen to cover partial blocks.
        for (n, m, p) in [
            (1, 1, 1),
            (3, 4, 5),
            (64, 64, 64),
            (65, 70, 33),
            (128, 17, 129),
        ] {
            let a = Matrix::from_vec(
                n,
                m,
                (0..n * m).map(|i| ((i * 7919) % 13) as f64 - 6.0).collect(),
            );
            let b = Matrix::from_vec(
                m,
                p,
                (0..m * p)
                    .map(|i| ((i * 104729) % 17) as f64 / 3.0)
                    .collect(),
            );
            let fast = a.matmul(&b);
            let slow = a.matmul_naive(&b);
            assert_eq!(fast.rows(), slow.rows());
            for (x, y) in fast.data().iter().zip(slow.data()) {
                assert!(approx(*x, *y), "{x} vs {y} at size {n}x{m}x{p}");
            }
        }
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_vec(3, 3, (0..9).map(f64::from).collect());
        let x = vec![1.0, -1.0, 2.0];
        let as_col = Matrix::from_vec(3, 1, x.clone());
        let via_mm = a.matmul(&as_col);
        assert_eq!(a.matvec(&x), via_mm.data());
    }

    #[test]
    fn norms_and_scale() {
        let a = Matrix::from_vec(1, 2, vec![3.0, -4.0]);
        assert!(approx(a.frobenius_norm(), 5.0));
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.scale(2.0).data(), &[6.0, -8.0]);
        assert!(approx(l1_norm(&[1.0, -2.0]), 3.0));
        assert!(approx(l2_norm(&[3.0, 4.0]), 5.0));
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    fn zip_with_elementwise() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(2, 2, vec![10., 20., 30., 40.]);
        assert_eq!(a.zip_with(&b, |x, y| x + y).data(), &[11., 22., 33., 44.]);
        assert_eq!(a.zip_with(&b, |x, y| x * y).data(), &[10., 40., 90., 160.]);
    }

    #[test]
    fn power_iteration_dominant_eigenpair() {
        // [[2, 0], [0, 0.5]]: dominant eigenvalue 2, eigenvector e1.
        let m = Matrix::from_vec(2, 2, vec![2.0, 0.0, 0.0, 0.5]);
        let (lambda, v, iters) = power_iteration(&m, 200, 1e-12);
        assert!(approx(lambda, 2.0), "{lambda}");
        assert!(v[0].abs() > 0.999, "{v:?}");
        assert!(iters < 200);
        // Zero matrix: eigenvalue 0, graceful exit.
        let z = Matrix::zeros(2, 2);
        let (lz, _, _) = power_iteration(&z, 10, 1e-9);
        assert_eq!(lz, 0.0);
    }
}
