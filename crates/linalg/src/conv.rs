//! Dataset ↔ matrix conversion and plan execution for the linear-algebra
//! engine.
//!
//! Conventions (the linear-algebra view of the fused model):
//!
//! * A "matrix" dataset has exactly two bounded dimensions and one `f64`
//!   value attribute.
//! * Absent cells and null values read as `0.0`; results are fully dense.
//!   (A sparse algebraic result that *omits* zero cells and a dense one
//!   that *stores* them are `Fill(0.0)`-equivalent; the experiments
//!   normalize with `Fill` before comparing.)

use std::collections::BTreeMap;

use bda_core::infer::infer_schema;
use bda_core::{BinOp, CoreError, Plan};
use bda_storage::{Chunk, Column, DataSet, DenseChunk, DimBox, Schema};

use crate::matrix::Matrix;

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Validate the matrix shape: two bounded dims, one `f64` value.
pub fn check_matrix_schema(schema: &Schema) -> Result<()> {
    let dims = schema.dimensions();
    if dims.len() != 2 {
        return Err(CoreError::Plan(format!(
            "linalg engine requires 2-D arrays, got {} dims in {schema}",
            dims.len()
        )));
    }
    if !schema.is_bounded() {
        return Err(CoreError::Plan(format!(
            "linalg engine requires bounded extents in {schema}"
        )));
    }
    let vals = schema.values();
    if vals.len() != 1 || vals[0].dtype != bda_storage::DataType::Float64 {
        return Err(CoreError::Plan(format!(
            "linalg engine requires exactly one f64 value attribute in {schema}"
        )));
    }
    Ok(())
}

/// Convert a matrix dataset into a dense [`Matrix`] plus the box origin
/// (`lo` per axis). Absent/null cells become `0.0`.
pub fn to_matrix(ds: &DataSet) -> Result<(Matrix, [i64; 2])> {
    check_matrix_schema(ds.schema())?;
    let dense = ds.to_dense()?;
    let chunk = match dense.chunks() {
        [Chunk::Dense(d)] => d,
        _ => return Err(CoreError::Plan("expected one dense chunk".into())),
    };
    let b = chunk.bounds();
    let (rows, cols) = (b.extent(0), b.extent(1));
    let col = &chunk.columns()[0];
    let raw = col.f64_data().map_err(CoreError::from)?;
    let mut data = vec![0.0f64; rows * cols];
    for (idx, slot) in data.iter_mut().enumerate() {
        if chunk.is_present(idx) && col.is_valid(idx) {
            *slot = raw[idx];
        }
    }
    Ok((Matrix::from_vec(rows, cols, data), [b.lo[0], b.lo[1]]))
}

/// Wrap a [`Matrix`] into a dataset under the given (2-D, bounded) schema.
pub fn from_matrix(m: Matrix, out_schema: Schema) -> Result<DataSet> {
    check_matrix_schema(&out_schema)?;
    let dims = out_schema.dimensions();
    let (r0, r1) = dims[0].extent().expect("bounded");
    let (c0, c1) = dims[1].extent().expect("bounded");
    if (r1 - r0) as usize != m.rows() || (c1 - c0) as usize != m.cols() {
        return Err(CoreError::Plan(format!(
            "matrix {}x{} does not fit schema {out_schema}",
            m.rows(),
            m.cols()
        )));
    }
    let bounds = DimBox::new(vec![r0, c0], vec![r1, c1])?;
    let chunk = DenseChunk::new(bounds, vec![Column::from(m.into_data())], None)?;
    Ok(DataSet::new(out_schema, vec![Chunk::Dense(chunk)]))
}

/// Execute a plan against the engine's matrix map.
pub fn execute(plan: &Plan, matrices: &BTreeMap<String, DataSet>) -> Result<DataSet> {
    // Per-operator tracing when a scope is installed (`execute_traced`);
    // one inert thread-local check otherwise.
    let mut node = bda_obs::scope::enter(|| format!("op:{}", plan.op_kind().name()));
    let out = execute_node(plan, matrices);
    if let (Some(n), Ok(ds)) = (node.as_mut(), &out) {
        n.rows(ds.num_rows());
    }
    out
}

fn execute_node(plan: &Plan, matrices: &BTreeMap<String, DataSet>) -> Result<DataSet> {
    let out_schema = infer_schema(plan)?;
    match plan {
        Plan::Scan { dataset, schema } => {
            let ds = matrices
                .get(dataset)
                .ok_or_else(|| CoreError::UnknownDataset(dataset.clone()))?;
            if ds.schema() != schema {
                return Err(CoreError::Plan(format!(
                    "scan `{dataset}`: bound schema {} does not match stored schema {}",
                    schema,
                    ds.schema()
                )));
            }
            Ok(ds.clone())
        }
        Plan::Values { schema, rows } => {
            bda_storage::DataSet::from_rows(schema.clone(), rows).map_err(Into::into)
        }
        Plan::MatMul { left, right } => {
            let (a, _) = to_matrix(&execute(left, matrices)?)?;
            let (b, _) = to_matrix(&execute(right, matrices)?)?;
            if a.cols() != b.rows() {
                return Err(CoreError::Plan(format!(
                    "matmul inner dimension mismatch: {} vs {}",
                    a.cols(),
                    b.rows()
                )));
            }
            from_matrix(a.matmul(&b), out_schema)
        }
        Plan::ElemWise { op, left, right } => {
            let f: fn(f64, f64) -> f64 = match op {
                BinOp::Add => |x, y| x + y,
                BinOp::Sub => |x, y| x - y,
                BinOp::Mul => |x, y| x * y,
                BinOp::Div => |x, y| x / y,
                other => {
                    return Err(CoreError::Unsupported {
                        provider: "linalg".into(),
                        op: format!("elemwise {}", other.symbol()),
                    })
                }
            };
            let (a, _) = to_matrix(&execute(left, matrices)?)?;
            let (b, _) = to_matrix(&execute(right, matrices)?)?;
            if (a.rows(), a.cols()) != (b.rows(), b.cols()) {
                return Err(CoreError::Plan("elemwise shape mismatch".into()));
            }
            from_matrix(a.zip_with(&b, f), out_schema)
        }
        Plan::Permute { input, .. } => {
            // 2-D permutation is either identity or transpose; the output
            // schema's dimension order tells us which.
            let in_ds = execute(input, matrices)?;
            let in_dims: Vec<String> = in_ds
                .schema()
                .dimensions()
                .iter()
                .map(|f| f.name.clone())
                .collect();
            let out_dims: Vec<String> = out_schema
                .dimensions()
                .iter()
                .map(|f| f.name.clone())
                .collect();
            let (m, _) = to_matrix(&in_ds)?;
            if in_dims == out_dims {
                from_matrix(m, out_schema)
            } else {
                from_matrix(m.transpose(), out_schema)
            }
        }
        Plan::Dice { input, .. } => {
            let in_ds = execute(input, matrices)?;
            let (m, lo) = to_matrix(&in_ds)?;
            let dims = out_schema.dimensions();
            let (r0, r1) = dims[0].extent().expect("bounded by infer");
            let (c0, c1) = dims[1].extent().expect("bounded by infer");
            let mut out = Matrix::zeros((r1 - r0) as usize, (c1 - c0) as usize);
            for i in r0..r1 {
                for j in c0..c1 {
                    out.set(
                        (i - r0) as usize,
                        (j - c0) as usize,
                        m.get((i - lo[0]) as usize, (j - lo[1]) as usize),
                    );
                }
            }
            from_matrix(out, out_schema)
        }
        // A bare Exchange is a planner marker with bag-identity
        // semantics; the block split happens in the Merge(op(..)) arm.
        Plan::Exchange { input, .. } => execute(input, matrices),
        Plan::Merge { input } => match input.as_ref() {
            Plan::MatMul { left, right } if matches!(left.as_ref(), Plan::Exchange { .. }) => {
                let Plan::Exchange {
                    input: li, parts, ..
                } = left.as_ref()
                else {
                    unreachable!("guarded by matches!");
                };
                let ri = match right.as_ref() {
                    Plan::Exchange { input, .. } => input.as_ref(),
                    other => other,
                };
                let (a, _) = to_matrix(&execute(li, matrices)?)?;
                let (b, _) = to_matrix(&execute(ri, matrices)?)?;
                if a.cols() != b.rows() {
                    return Err(CoreError::Plan(format!(
                        "matmul inner dimension mismatch: {} vs {}",
                        a.cols(),
                        b.rows()
                    )));
                }
                from_matrix(
                    block_parallel(&a, *parts, |band| band.matmul(&b)),
                    out_schema,
                )
            }
            Plan::ElemWise { op, left, right }
                if matches!(
                    (left.as_ref(), right.as_ref()),
                    (Plan::Exchange { .. }, Plan::Exchange { .. })
                ) =>
            {
                let (
                    Plan::Exchange {
                        input: li, parts, ..
                    },
                    Plan::Exchange { input: ri, .. },
                ) = (left.as_ref(), right.as_ref())
                else {
                    unreachable!("guarded by matches!");
                };
                let f: fn(f64, f64) -> f64 = match op {
                    BinOp::Add => |x, y| x + y,
                    BinOp::Sub => |x, y| x - y,
                    BinOp::Mul => |x, y| x * y,
                    BinOp::Div => |x, y| x / y,
                    other => {
                        return Err(CoreError::Unsupported {
                            provider: "linalg".into(),
                            op: format!("elemwise {}", other.symbol()),
                        })
                    }
                };
                let (a, _) = to_matrix(&execute(li, matrices)?)?;
                let (b, _) = to_matrix(&execute(ri, matrices)?)?;
                if (a.rows(), a.cols()) != (b.rows(), b.cols()) {
                    return Err(CoreError::Plan("elemwise shape mismatch".into()));
                }
                let offsets = band_offsets(a.rows(), *parts);
                from_matrix(
                    block_parallel_with(&a, &offsets, |(s, e)| {
                        a.row_band(s, e).zip_with(&b.row_band(s, e), f)
                    }),
                    out_schema,
                )
            }
            _ => execute(input, matrices),
        },
        other => Err(CoreError::Unsupported {
            provider: "linalg".into(),
            op: other.op_kind().name().into(),
        }),
    }
}

/// Near-equal contiguous row bands `[start, end)` covering `rows`.
fn band_offsets(rows: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, rows.max(1));
    let base = rows / parts;
    let extra = rows % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for b in 0..parts {
        let len = base + usize::from(b < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Row-block a matrix, run `kernel` per band on the worker pool (with a
/// `partition:{i}` span each), and concatenate the output bands. Because
/// each output row is produced by the same scalar code on the same
/// inputs as the sequential kernel, the result is bitwise identical for
/// any partition/worker count.
fn block_parallel(a: &Matrix, parts: usize, kernel: impl Fn(Matrix) -> Matrix + Sync) -> Matrix {
    let offsets = band_offsets(a.rows(), parts);
    block_parallel_with(a, &offsets, |(s, e)| kernel(a.row_band(s, e)))
}

fn block_parallel_with(
    a: &Matrix,
    offsets: &[(usize, usize)],
    kernel: impl Fn((usize, usize)) -> Matrix + Sync,
) -> Matrix {
    use bda_core::pool;
    let snap = bda_obs::scope::snapshot();
    let kernel = &kernel;
    let tasks: Vec<Box<dyn FnOnce() -> Matrix + Send + '_>> = offsets
        .iter()
        .enumerate()
        .map(|(i, &(s, e))| {
            let snap = snap.clone();
            Box::new(move || {
                let mut guard = snap.as_ref().map(|sc| {
                    sc.tracer
                        .start(sc.parent, || format!("partition:{i}"), &sc.site)
                });
                let out = kernel((s, e));
                if let Some(g) = guard.as_mut() {
                    g.set_rows(out.rows() * out.cols());
                }
                out
            }) as Box<dyn FnOnce() -> Matrix + Send + '_>
        })
        .collect();
    let bands = pool::run_with(pool::workers(), tasks);
    let cols = bands.first().map(Matrix::cols).unwrap_or(0);
    let mut data = Vec::with_capacity(a.rows() * cols);
    for band in bands {
        data.extend(band.into_data());
    }
    Matrix::from_vec(a.rows(), cols, data)
}

/// Convenience: read a matrix dataset's cell (used in tests/examples).
pub fn cell(ds: &DataSet, i: i64, j: i64) -> Result<f64> {
    let (m, lo) = to_matrix(ds)?;
    Ok(m.get((i - lo[0]) as usize, (j - lo[1]) as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::reference::evaluate;
    use bda_storage::dataset::matrix_dataset;
    use std::collections::HashMap;

    fn mats() -> BTreeMap<String, DataSet> {
        let mut m = BTreeMap::new();
        m.insert(
            "a".to_string(),
            matrix_dataset(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap(),
        );
        m.insert(
            "b".to_string(),
            matrix_dataset(2, 3, vec![1., 0., -1., 2., 1., 0.]).unwrap(),
        );
        m
    }

    fn as_hash(m: &BTreeMap<String, DataSet>) -> HashMap<String, DataSet> {
        m.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    #[test]
    fn matrix_conversion_roundtrip() {
        let ds = matrix_dataset(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let (m, lo) = to_matrix(&ds).unwrap();
        assert_eq!(lo, [0, 0]);
        assert_eq!(m.get(1, 2), 6.0);
        let back = from_matrix(m, ds.schema().clone()).unwrap();
        assert!(back.same_bag(&ds).unwrap());
    }

    #[test]
    fn matmul_matches_reference_on_dense_input() {
        let m = mats();
        let plan = Plan::scan("a", m["a"].schema().clone())
            .matmul(Plan::scan("b", m["b"].schema().clone()));
        let ours = execute(&plan, &m).unwrap();
        let oracle = evaluate(&plan, &as_hash(&m)).unwrap();
        // Dense inputs: every output cell exists on both sides.
        assert!(ours.same_bag(&oracle).unwrap());
    }

    #[test]
    fn elemwise_and_dice_and_permute() {
        let m = mats();
        let scan_a = Plan::scan("a", m["a"].schema().clone());
        let ew = scan_a.clone().elemwise(BinOp::Mul, scan_a.clone());
        let ours = execute(&ew, &m).unwrap();
        let oracle = evaluate(&ew, &as_hash(&m)).unwrap();
        assert!(ours.same_bag(&oracle).unwrap());

        let dice = Plan::Dice {
            input: scan_a.clone().boxed(),
            ranges: vec![("row".into(), 1, 3)],
        };
        let ours = execute(&dice, &m).unwrap();
        let oracle = evaluate(&dice, &as_hash(&m)).unwrap();
        assert!(ours.same_bag(&oracle).unwrap());

        let tr = Plan::Permute {
            input: scan_a.boxed(),
            order: vec!["col".into(), "row".into()],
        };
        let ours = execute(&tr, &m).unwrap();
        let oracle = evaluate(&tr, &as_hash(&m)).unwrap();
        assert!(ours.same_bag(&oracle).unwrap());
    }

    #[test]
    fn comparison_elemwise_unsupported() {
        let m = mats();
        let scan_a = Plan::scan("a", m["a"].schema().clone());
        let e = scan_a.clone().elemwise(BinOp::Lt, scan_a);
        assert!(matches!(
            execute(&e, &m),
            Err(CoreError::Unsupported { .. })
        ));
    }

    #[test]
    fn partitioned_matmul_is_bitwise_identical_to_sequential() {
        let m = mats();
        let scan_a = Plan::scan("a", m["a"].schema().clone());
        let scan_b = Plan::scan("b", m["b"].schema().clone());
        let seq = execute(&scan_a.clone().matmul(scan_b.clone()), &m).unwrap();
        for parts in [1, 2, 3, 7] {
            let plan = scan_a
                .clone()
                .exchange(parts, None)
                .matmul(scan_b.clone())
                .merge();
            for workers in [1, 4] {
                let par = bda_core::pool::with_workers(workers, || execute(&plan, &m)).unwrap();
                let (ms, _) = to_matrix(&seq).unwrap();
                let (mp, _) = to_matrix(&par).unwrap();
                assert_eq!(ms.data(), mp.data(), "parts={parts} workers={workers}");
            }
        }
    }

    #[test]
    fn partitioned_elemwise_matches_sequential() {
        let m = mats();
        let scan_a = Plan::scan("a", m["a"].schema().clone());
        let seq = execute(&scan_a.clone().elemwise(BinOp::Mul, scan_a.clone()), &m).unwrap();
        let plan = scan_a
            .clone()
            .exchange(2, None)
            .elemwise(BinOp::Mul, scan_a.exchange(2, None))
            .merge();
        let par = bda_core::pool::with_workers(4, || execute(&plan, &m)).unwrap();
        let (ms, _) = to_matrix(&seq).unwrap();
        let (mp, _) = to_matrix(&par).unwrap();
        assert_eq!(ms.data(), mp.data());
    }

    #[test]
    fn bare_markers_are_identity() {
        let m = mats();
        let scan_a = Plan::scan("a", m["a"].schema().clone());
        let plain = execute(&scan_a, &m).unwrap();
        let marked = execute(&scan_a.clone().exchange(4, None).merge(), &m).unwrap();
        assert!(plain.same_bag(&marked).unwrap());
    }

    #[test]
    fn schema_checks() {
        assert!(check_matrix_schema(matrix_dataset(1, 1, vec![0.0]).unwrap().schema()).is_ok());
        let rel =
            DataSet::from_columns(vec![("x", bda_storage::Column::from(vec![1.0f64]))]).unwrap();
        assert!(check_matrix_schema(rel.schema()).is_err());
    }
}
