//! The flight recorder: a fixed-size ring of recent operational events
//! that is **always on**, so a query that fails permanently — or a
//! process that falls over under chaos — leaves a post-mortem trail even
//! when nobody asked for a trace.
//!
//! Design constraints:
//!
//! * **Cheap enough to never turn off.** Recording is one relaxed
//!   `fetch_add` to claim a slot plus a `try_lock` on that slot; a
//!   contended slot is *skipped* (counted, never blocked on), so the hot
//!   path cannot stall behind a reader. The recorder rides inside the
//!   same ≤2% budget the `overhead_guard` CI gate enforces for disabled
//!   tracing hooks (the guard compares recorder-on vs recorder-off runs).
//! * **Bounded.** The ring holds [`DEFAULT_FLIGHT_CAPACITY`] records;
//!   new records overwrite the oldest. A dump is therefore always a
//!   "last few seconds" view, which is exactly what a post-mortem wants.
//! * **Label closures.** Like the tracer, labels are closures so a
//!   disabled recorder ([`set_enabled`]) formats nothing.
//!
//! [`dump_for_failure`] writes the current ring to a file (directory
//! from `BDA_FLIGHT_DIR`, else the system temp dir) and returns the
//! path; the federation executor calls it when a query fails permanently
//! and attaches the path to the error it surfaces.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Records kept by the ring before overwriting the oldest.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// Environment variable naming the directory failure dumps are written
/// to (defaults to the system temp directory).
pub const FLIGHT_DIR_ENV: &str = "BDA_FLIGHT_DIR";

/// One recorded moment: what happened, where, and when (milliseconds
/// since the recorder was created).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Global sequence number (total order across threads).
    pub seq: u64,
    /// Microseconds since the recorder's epoch.
    pub at_us: u64,
    /// Site the event belongs to (provider name, `app`, `server`).
    pub site: String,
    /// What happened, e.g. `fragment:0@rel failed: network error: …`.
    pub label: String,
}

struct Slot {
    record: Mutex<Option<FlightRecord>>,
}

/// The fixed-size, always-on event ring. One global instance per process
/// ([`global`]); tests may build their own.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
    skipped: AtomicU64,
    enabled: AtomicBool,
    epoch: Instant,
}

impl FlightRecorder {
    /// A recorder with the given ring capacity, enabled.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity)
                .map(|_| Slot {
                    record: Mutex::new(None),
                })
                .collect(),
            cursor: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
        }
    }

    /// Turn recording on or off. Off, [`FlightRecorder::record`] is one
    /// relaxed atomic load and the label closure never runs — the same
    /// contract as a disabled tracer.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is the recorder currently recording?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record one event. Claims the next ring slot with a relaxed
    /// `fetch_add`; if the slot is momentarily held by a reader the
    /// record is dropped (counted in [`FlightRecorder::skipped`]) rather
    /// than blocking the caller.
    pub fn record(&self, site: &str, label: impl FnOnce() -> String) {
        if !self.enabled() {
            return;
        }
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let at_us = self.epoch.elapsed().as_micros() as u64;
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        match slot.record.try_lock() {
            Ok(mut r) => {
                *r = Some(FlightRecord {
                    seq,
                    at_us,
                    site: site.to_string(),
                    label: label(),
                });
            }
            Err(_) => {
                self.skipped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records dropped because their slot was contended.
    pub fn skipped(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    /// The ring's current contents, oldest first.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut out: Vec<FlightRecord> = self
            .slots
            .iter()
            .filter_map(|s| match s.record.try_lock() {
                Ok(r) => r.clone(),
                Err(_) => None,
            })
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Render the ring as one line per record (the dump file format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in self.snapshot() {
            out.push_str(&format!(
                "seq={} at_us={} site={} {}\n",
                r.seq, r.at_us, r.site, r.label
            ));
        }
        out
    }

    /// Write the ring to `<dir>/bda-flight-<tag>.log` where `dir` comes
    /// from [`FLIGHT_DIR_ENV`] (else the system temp dir). Returns the
    /// path written, or `None` when the write failed or the recorder is
    /// disabled/empty — a post-mortem helper must never turn a query
    /// failure into an I/O panic.
    pub fn dump_for_failure(&self, tag: &str) -> Option<PathBuf> {
        let rendered = self.render();
        if rendered.is_empty() {
            return None;
        }
        let dir = std::env::var(FLIGHT_DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|_| std::env::temp_dir());
        let safe: String = tag
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let path = dir.join(format!("bda-flight-{safe}.log"));
        std::fs::write(&path, rendered).ok()?;
        Some(path)
    }
}

/// The process-wide recorder every layer records into.
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_records() {
        let r = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            r.record("app", || format!("event {i}"));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].label, "event 6", "oldest surviving record");
        assert_eq!(snap[3].label, "event 9");
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = FlightRecorder::with_capacity(4);
        r.set_enabled(false);
        r.record("app", || unreachable!("label closure must not run"));
        assert!(r.snapshot().is_empty());
        r.set_enabled(true);
        r.record("app", || "back".into());
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn dump_writes_a_file_with_every_line() {
        let r = FlightRecorder::with_capacity(8);
        r.record("rel", || "fragment:0@rel failed: boom".into());
        r.record("app", || "query abandoned".into());
        let path = r.dump_for_failure("test dump 1").expect("dump written");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("site=rel fragment:0@rel failed: boom"),
            "{text}"
        );
        assert!(text.contains("site=app query abandoned"), "{text}");
        assert!(
            path.file_name()
                .unwrap()
                .to_string_lossy()
                .contains("test-dump-1"),
            "{path:?}"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_ring_dumps_nothing() {
        let r = FlightRecorder::with_capacity(8);
        assert!(r.dump_for_failure("empty").is_none());
    }

    #[test]
    fn concurrent_recording_keeps_a_total_order() {
        use std::sync::Arc;
        let r = Arc::new(FlightRecorder::with_capacity(64));
        let mut handles = Vec::new();
        for t in 0..4 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..32 {
                    r.record("app", || format!("t{t}:{i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = r.snapshot();
        assert!(snap.len() <= 64);
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
