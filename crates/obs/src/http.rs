//! A minimal, dependency-free HTTP/1.1 ops server: the surface a stock
//! Prometheus scraper, a load balancer's health check, or a curious
//! operator with `curl` talks to. Mounted by `bda-served --http <port>`
//! (and by the app tier in tests) next to the bda-net protocol port.
//!
//! Routes (all `GET`, one response per connection, `Connection: close`):
//!
//! | path            | body                                            |
//! |-----------------|-------------------------------------------------|
//! | `/metrics`      | Prometheus text format from the [`MetricsHub`]  |
//! | `/healthz`      | `200 ok` while the process serves                |
//! | `/readyz`       | `200 ready`, or `503` + detail when the health  |
//! |                 | source reports tripped circuit breakers          |
//! | `/progress`     | JSON of in-flight queries ([`progress`] module) |
//! | `/traces/<id>`  | Chrome-trace JSON of a recent completed trace   |
//! | `/flight`       | the flight recorder's current ring, as text     |
//! | `/queries`      | JSON of the recent query-profile log            |
//! | `/queries/slow` | the retained profiles flagged slow              |
//! | `/calibration`  | the current [`profile::CostBook`] estimates     |
//! | `/tenants`      | per-tenant usage from the global [`crate::meter::UsageBook`] |
//! | `/tenants/<id>` | one tenant's usage (404 when unknown)           |
//! | `/cluster/metrics` | merged, instance-labeled fleet metrics view  |
//!
//! `/queries` and `/queries/slow` accept a `?tenant=<id>` filter.
//!
//! This is deliberately *not* a general HTTP server: GET only, no
//! keep-alive, no TLS, bounded header reads. That keeps `bda-obs` at
//! zero dependencies while speaking enough HTTP/1.1 for Prometheus and
//! curl — the same "own the few hundred lines" trade bda-net makes for
//! its framed protocol.
//!
//! Health is a callback ([`HealthSource`]) rather than a registry
//! reference because obs sits *below* the federation in the crate DAG;
//! the federation wires its circuit-breaker board in at mount time.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::metrics::MetricsHub;
use crate::progress::ProgressTracker;
use crate::{flight, store};

/// Point-in-time health as reported by whoever mounted the server
/// (typically the federation's circuit-breaker board).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Health {
    /// Liveness: the process is up and serving.
    pub healthy: bool,
    /// Readiness: dependencies (providers, breakers) are usable.
    pub ready: bool,
    /// Human detail, e.g. `breakers: rel=closed la=open`.
    pub detail: String,
}

impl Default for Health {
    fn default() -> Self {
        Health {
            healthy: true,
            ready: true,
            detail: "ok".to_string(),
        }
    }
}

/// Callback producing the current [`Health`].
pub type HealthSource = Arc<dyn Fn() -> Health + Send + Sync>;

/// Callback producing the merged fleet metrics view `/cluster/metrics`
/// serves. A callback for the same reason health is one: obs sits below
/// the federation in the crate DAG, so whoever can reach every provider
/// (the app tier, or `bda-served --cluster`) wires the pull + merge in
/// at mount time (typically via [`crate::metrics::merge_instances`]).
pub type ClusterSource = Arc<dyn Fn() -> String + Send + Sync>;

/// What the ops server serves. `Default` wires the process-global
/// progress tracker, trace store, and flight recorder with a fresh
/// metrics hub and an always-healthy source.
#[derive(Clone)]
pub struct OpsOptions {
    /// The hub `/metrics` renders.
    pub metrics: MetricsHub,
    /// The health source `/healthz` and `/readyz` consult.
    pub health: HealthSource,
    /// The tracker `/progress` renders.
    pub progress: ProgressTracker,
    /// The fleet view `/cluster/metrics` serves; `None` answers 404
    /// (this node is not an aggregation point).
    pub cluster: Option<ClusterSource>,
    /// Fixed worker threads answering requests (min 1).
    pub workers: usize,
    /// Accepted connections waiting for a worker before the server
    /// starts answering `503` instead of queueing (min 1).
    pub backlog: usize,
}

impl Default for OpsOptions {
    fn default() -> Self {
        OpsOptions {
            metrics: MetricsHub::new(),
            health: Arc::new(Health::default),
            progress: crate::progress::global().clone(),
            cluster: None,
            workers: 4,
            backlog: 64,
        }
    }
}

/// A running ops server; dropping it (or calling [`OpsHandle::shutdown`])
/// stops the accept loop.
pub struct OpsHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl OpsHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a self-connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
        // The accept loop dropped its queue sender on exit, so the
        // workers drain whatever was admitted and then hang up.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for OpsHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Bind `bind` (e.g. `127.0.0.1:0`) and serve the ops routes until the
/// returned handle shuts down.
///
/// Concurrency is bounded: a fixed pool of [`OpsOptions::workers`]
/// threads answers requests from a queue of at most
/// [`OpsOptions::backlog`] accepted connections. When the queue is full
/// the accept loop answers `503` inline and closes — an overload of
/// scrapes can never spawn unbounded threads or stall the serving port.
pub fn serve_ops(bind: &str, options: OpsOptions) -> std::io::Result<OpsHandle> {
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_accept = Arc::clone(&stop);
    let (queue, jobs) = std::sync::mpsc::sync_channel::<TcpStream>(options.backlog.max(1));
    let jobs = Arc::new(std::sync::Mutex::new(jobs));
    let workers = (0..options.workers.max(1))
        .map(|i| {
            let jobs = Arc::clone(&jobs);
            let options = options.clone();
            std::thread::Builder::new()
                .name(format!("bda-ops-{i}"))
                .spawn(move || loop {
                    // Hold the receiver lock only to dequeue, not to serve.
                    let job = jobs.lock().expect("ops queue poisoned").recv();
                    match job {
                        Ok(stream) => {
                            let _ = handle_connection(stream, &options);
                        }
                        Err(_) => return, // queue closed: shutdown
                    }
                })
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    let join = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop_accept.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            use std::sync::mpsc::TrySendError;
            if let Err(err) = queue.try_send(stream) {
                match err {
                    TrySendError::Full(stream) => {
                        // Shed: a one-line refusal beats an unbounded
                        // thread or a reader parked behind a full queue.
                        let _ = respond(
                            stream,
                            "503 Service Unavailable",
                            "text/plain; charset=utf-8",
                            "ops server overloaded\n",
                        );
                    }
                    TrySendError::Disconnected(_) => break,
                }
            }
        }
    });
    Ok(OpsHandle {
        addr,
        stop,
        join: Some(join),
        workers,
    })
}

/// Longest request head (request line + headers) we will read.
const MAX_HEAD_BYTES: u64 = 8 * 1024;

fn handle_connection(stream: TcpStream, options: &OpsOptions) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?).take(MAX_HEAD_BYTES);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers until the blank line; we need none of them.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        route(path, options)
    };
    respond(stream, status, content_type, &body)
}

fn route(path: &str, options: &OpsOptions) -> (&'static str, &'static str, String) {
    const TEXT: &str = "text/plain; charset=utf-8";
    const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
    const JSON: &str = "application/json";
    // Split off the query string; the only parameter any route takes is
    // `?tenant=<id>` (ids are expected to be URL-safe tokens).
    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (path, None),
    };
    let tenant_filter = query.and_then(|q| q.split('&').find_map(|kv| kv.strip_prefix("tenant=")));
    match path {
        "/metrics" => {
            // Depth/sample gauges are sampled at scrape time rather than
            // maintained on the hot path — the scrape is the only reader.
            options
                .metrics
                .gauge(
                    "bda_profile_log_depth",
                    "query profiles retained in the in-memory log",
                )
                .set(crate::profile::global_log().len() as f64);
            options
                .metrics
                .gauge(
                    "bda_costbook_samples",
                    "query profiles folded into the calibration cost book",
                )
                .set(crate::profile::global_costs().samples() as f64);
            ("200 OK", PROM, options.metrics.render())
        }
        "/healthz" => {
            let h = (options.health)();
            if h.healthy {
                ("200 OK", TEXT, "ok\n".to_string())
            } else {
                ("503 Service Unavailable", TEXT, format!("{}\n", h.detail))
            }
        }
        "/readyz" => {
            let h = (options.health)();
            if h.ready {
                ("200 OK", TEXT, format!("ready: {}\n", h.detail))
            } else {
                ("503 Service Unavailable", TEXT, format!("{}\n", h.detail))
            }
        }
        "/progress" => ("200 OK", JSON, options.progress.render_json()),
        "/flight" => ("200 OK", TEXT, flight::global().render()),
        "/queries" => (
            "200 OK",
            JSON,
            crate::profile::global_log().render_json_for(tenant_filter),
        ),
        "/queries/slow" => (
            "200 OK",
            JSON,
            crate::profile::global_log().render_slow_json_for(tenant_filter),
        ),
        "/calibration" => ("200 OK", JSON, crate::profile::global_costs().render_json()),
        "/tenants" => ("200 OK", JSON, crate::meter::global_usage().render_json()),
        "/cluster/metrics" => match &options.cluster {
            Some(source) => ("200 OK", PROM, source()),
            None => (
                "404 Not Found",
                TEXT,
                "no cluster source mounted on this node\n".to_string(),
            ),
        },
        _ => {
            if let Some(tenant) = path.strip_prefix("/tenants/") {
                return match crate::meter::global_usage().render_tenant_json(tenant) {
                    Some(body) => ("200 OK", JSON, body),
                    None => (
                        "404 Not Found",
                        TEXT,
                        format!("no recorded usage for tenant {tenant}\n"),
                    ),
                };
            }
            match path.strip_prefix("/traces/").and_then(parse_trace_id) {
                Some(id) => match store::global().chrome_json(id) {
                    Some(json) => ("200 OK", JSON, json),
                    None => (
                        "404 Not Found",
                        TEXT,
                        format!("no retained trace {id:#018x}\n"),
                    ),
                },
                None => ("404 Not Found", TEXT, "not found\n".to_string()),
            }
        }
    }
}

/// Trace ids render as `0x…` in `/progress`; accept that form and plain
/// decimal.
fn parse_trace_id(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

fn respond(
    mut stream: TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// One GET against a running ops server; returns (status line, body).
    pub(crate) fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        let status = head.lines().next().unwrap_or("").to_string();
        (status, body.to_string())
    }

    #[test]
    fn metrics_health_and_404_routes() {
        let options = OpsOptions::default();
        options.metrics.counter("ops_test_total", "test").inc();
        let h = serve_ops("127.0.0.1:0", options).expect("bind");
        let (status, body) = http_get(h.addr(), "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("ops_test_total 1"), "{body}");
        let (status, body) = http_get(h.addr(), "/healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "ok\n");
        let (status, _) = http_get(h.addr(), "/nope");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        h.shutdown();
    }

    #[test]
    fn profiling_routes_serve_the_global_log_and_costbook() {
        let profile = crate::profile::QueryProfile {
            trace_id: 0x51097,
            tenant: "acme".into(),
            wall_ns: 1234,
            slow: false,
            ops: vec![],
            sites: vec![],
        };
        crate::profile::global_log().push(profile.clone());
        crate::profile::global_costs().observe(&profile);
        let h = serve_ops("127.0.0.1:0", OpsOptions::default()).expect("bind");
        let (status, body) = http_get(h.addr(), "/queries");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(
            body.contains("\"trace_id\":\"0x0000000000051097\""),
            "{body}"
        );
        let (status, body) = http_get(h.addr(), "/queries/slow");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.starts_with("{\"queries\":["), "{body}");
        let (status, body) = http_get(h.addr(), "/calibration");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(
            body.contains("\"samples\":") && body.contains("\"ns_per_row\""),
            "{body}"
        );
        // The ?tenant= filter narrows the log to one tenant's queries.
        let (status, body) = http_get(h.addr(), "/queries?tenant=acme");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("0x0000000000051097"), "{body}");
        let (status, body) = http_get(h.addr(), "/queries?tenant=nobody");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(!body.contains("0x0000000000051097"), "{body}");
        h.shutdown();
    }

    #[test]
    fn tenant_routes_serve_the_global_usage_book() {
        crate::meter::global_usage().charge_query("acme-http", 10, 20, 3_000, 40, 0);
        let h = serve_ops("127.0.0.1:0", OpsOptions::default()).expect("bind");
        let (status, body) = http_get(h.addr(), "/tenants");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"tenant\":\"acme-http\""), "{body}");
        let (status, body) = http_get(h.addr(), "/tenants/acme-http");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"cpu_ns\":3000"), "{body}");
        let (status, _) = http_get(h.addr(), "/tenants/unknown-tenant");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        h.shutdown();
    }

    #[test]
    fn cluster_metrics_route_serves_the_mounted_source_or_404() {
        let h = serve_ops("127.0.0.1:0", OpsOptions::default()).expect("bind");
        let (status, _) = http_get(h.addr(), "/cluster/metrics");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        h.shutdown();
        let options = OpsOptions {
            cluster: Some(Arc::new(|| "merged 1\n".to_string())),
            ..OpsOptions::default()
        };
        let h = serve_ops("127.0.0.1:0", options).expect("bind");
        let (status, body) = http_get(h.addr(), "/cluster/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "merged 1\n");
        h.shutdown();
    }

    #[test]
    fn readyz_follows_the_health_source() {
        let ready = Arc::new(Mutex::new(true));
        let source = Arc::clone(&ready);
        let options = OpsOptions {
            health: Arc::new(move || Health {
                healthy: true,
                ready: *source.lock().unwrap(),
                detail: "breakers: rel=closed".into(),
            }),
            ..OpsOptions::default()
        };
        let h = serve_ops("127.0.0.1:0", options).expect("bind");
        let (status, body) = http_get(h.addr(), "/readyz");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("breakers: rel=closed"), "{body}");
        *ready.lock().unwrap() = false;
        let (status, _) = http_get(h.addr(), "/readyz");
        assert_eq!(status, "HTTP/1.1 503 Service Unavailable");
        h.shutdown();
    }

    #[test]
    fn progress_route_serves_the_mounted_tracker() {
        let tracker = ProgressTracker::new();
        let options = OpsOptions {
            progress: tracker.clone(),
            ..OpsOptions::default()
        };
        let h = serve_ops("127.0.0.1:0", options).expect("bind");
        let handle = tracker.start("observed", 0x1234);
        handle.iteration(2, 8, Some(0.25), Some(10));
        let (status, body) = http_get(h.addr(), "/progress");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"label\":\"observed\""), "{body}");
        assert!(body.contains("\"iteration\":2"), "{body}");
        handle.finish();
        h.shutdown();
    }

    #[test]
    fn traces_route_serves_stored_chrome_json() {
        let t = crate::Tracer::with_trace_id(0xBEEF);
        t.start(None, || "query".into(), "app").finish();
        store::global().publish(t.finish());
        let h = serve_ops("127.0.0.1:0", OpsOptions::default()).expect("bind");
        let (status, body) = http_get(h.addr(), "/traces/0xbeef");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.starts_with('[') && body.ends_with(']'), "{body}");
        assert!(body.contains("\"query\""), "{body}");
        // Decimal form of the same id works too.
        let (status, _) = http_get(h.addr(), &format!("/traces/{}", 0xBEEFu64));
        assert_eq!(status, "HTTP/1.1 200 OK");
        let (status, _) = http_get(h.addr(), "/traces/999999999");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        h.shutdown();
    }

    #[test]
    fn overload_is_shed_with_503_not_unbounded_threads() {
        // One worker, queue of one. A stalled client pins the worker
        // (the read timeout is seconds away); the next connection fills
        // the queue; everything beyond that must get an inline 503.
        let options = OpsOptions {
            workers: 1,
            backlog: 1,
            ..OpsOptions::default()
        };
        let h = serve_ops("127.0.0.1:0", options).expect("bind");
        // Pin the worker first, then fill the queue slot: the pause in
        // between lets the worker dequeue stall1 before stall2 arrives,
        // otherwise stall2's shed 503 frees the slot for the probe.
        let stall1 = TcpStream::connect(h.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(200));
        let stall2 = TcpStream::connect(h.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(200));
        // Later connections are refused promptly rather than queued
        // behind the stalled ones.
        let deadline = std::time::Instant::now() + Duration::from_secs(4);
        let mut shed = false;
        while !shed && std::time::Instant::now() < deadline {
            let mut probe = TcpStream::connect(h.addr()).unwrap();
            write!(probe, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut raw = String::new();
            let _ = probe.read_to_string(&mut raw);
            shed = raw.starts_with("HTTP/1.1 503") && raw.contains("overloaded");
        }
        assert!(shed, "overload never produced an inline 503");
        drop(stall1);
        drop(stall2);
        h.shutdown();
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let h = serve_ops("127.0.0.1:0", OpsOptions::default()).expect("bind");
        let mut stream = TcpStream::connect(h.addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
        h.shutdown();
    }
}
