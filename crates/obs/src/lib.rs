//! # `bda-obs`: observability for the federation
//!
//! A structured, low-overhead tracing and profiling layer. The rest of
//! the workspace threads a [`Tracer`] through execution: the federated
//! executor opens *query → fragment → transfer* spans, providers attach
//! per-operator spans, and `bda-net` propagates the trace id over the
//! wire so server-side spans reassemble into one cross-process timeline.
//!
//! Design constraints (see DESIGN.md, "Observability"):
//!
//! * **Off-by-default-cheap.** A disabled [`Tracer`] is a `None`; every
//!   hook is a null-check and the name/label closures are never invoked,
//!   so the disabled path allocates nothing. The expression-kernel
//!   profiler ([`prof`]) is a single relaxed atomic load when off.
//! * **Deterministic ids.** Span ids are sequential per tracer and the
//!   trace id is a pure function of the seed ([`Tracer::new`]), so tests
//!   can assert on trace *shape* under `BDA_FAULT_SEED`-style seeding.
//! * **Bounded.** The span buffer has a hard capacity; overflow is
//!   counted in [`Trace::dropped`], never unbounded growth.
//!
//! Exports: [`Trace::to_chrome_json`] renders a `chrome://tracing`
//! timeline; [`MetricsHub::render`] produces Prometheus text format;
//! [`wire`] is the span codec `bda-net` embeds in its protocol.
//!
//! The *live* layer (this crate's newer half) turns those artifacts into
//! an operator-facing surface: [`http`] is a dependency-free HTTP/1.1
//! ops server (`/metrics`, `/healthz`, `/readyz`, `/progress`,
//! `/traces/<id>`, `/flight`, `/queries`, `/calibration`), [`progress`]
//! tracks in-flight queries and flags straggler providers, [`store`]
//! retains recent completed traces for `/traces/<id>`, [`flight`] is
//! the always-on crash flight recorder dumped when a query fails
//! permanently, and [`profile`] distills finished traces into query
//! profiles feeding a persistent query log and the [`profile::CostBook`]
//! calibration registry the planner consults.

pub mod chrome;
pub mod flight;
pub mod http;
pub mod meter;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod prune;
pub mod scope;
pub mod store;
pub mod wire;

pub use flight::FlightRecorder;
pub use http::{serve_ops, ClusterSource, Health, HealthSource, OpsHandle, OpsOptions};
pub use meter::{TenantUsage, UsageBook};
pub use metrics::{Counter, Gauge, Histogram, MetricsHub};
pub use profile::{CostBook, QueryLog, QueryProfile};
pub use progress::{ProgressHandle, ProgressTracker, QueryProgress};
pub use store::TraceStore;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Environment variable that seeds trace ids (like `BDA_FAULT_SEED`
/// seeds fault streams). Tests set it to assert on exact trace ids.
pub const TRACE_SEED_ENV: &str = "BDA_TRACE_SEED";

/// The trace seed: `BDA_TRACE_SEED` when set and parseable, else `default`.
pub fn trace_seed_from_env(default: u64) -> u64 {
    std::env::var(TRACE_SEED_ENV)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

/// SplitMix64: the seed→trace-id mix (deterministic, well distributed).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A timestamped annotation inside a span (a retry, a degradation step,
/// a breaker trip, an iteration boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Nanoseconds since the trace epoch.
    pub at_ns: u64,
    /// What happened, e.g. `attempt:push failed: …` or `degrade:app-routed`.
    pub label: String,
}

/// One recorded span: a named, timed piece of work at a site.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span id, unique within the trace.
    pub id: u64,
    /// Parent span id, `None` for a root.
    pub parent: Option<u64>,
    /// Span name, e.g. `query`, `fragment:0`, `op:matmul`, `transfer:0`.
    pub name: String,
    /// Site that did the work (provider name, or `app` for the app tier).
    pub site: String,
    /// Start, nanoseconds since the trace epoch (monotonic clock).
    pub start_ns: u64,
    /// End, nanoseconds since the trace epoch.
    pub end_ns: u64,
    /// Output cardinality, when the work produced rows.
    pub rows: Option<u64>,
    /// Payload size in wire-encoded bytes, when the work moved data.
    pub bytes: Option<u64>,
    /// Timestamped events inside the span.
    pub events: Vec<SpanEvent>,
}

impl Span {
    /// Span duration in nanoseconds (saturating).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// The trace/span identifiers a provider call carries across process
/// boundaries so server-side spans attach to the client's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every span on both sides belongs to.
    pub trace_id: u64,
    /// The client-side span the server's work hangs under.
    pub parent_span: u64,
}

/// A finished trace: every span the tracer recorded (local and absorbed
/// remote), plus how many were discarded by the capacity bound.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Trace id.
    pub trace_id: u64,
    /// All spans, in emission order.
    pub spans: Vec<Span>,
    /// Spans discarded because the buffer was full.
    pub dropped: u64,
}

impl Trace {
    /// The span with the given id.
    pub fn span(&self, id: u64) -> Option<&Span> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Spans whose name starts with `prefix`, in emission order.
    pub fn spans_named(&self, prefix: &str) -> Vec<&Span> {
        self.spans
            .iter()
            .filter(|s| s.name.starts_with(prefix))
            .collect()
    }

    /// Direct children of `id`, sorted by start time.
    pub fn children_of(&self, id: u64) -> Vec<&Span> {
        let mut out: Vec<&Span> = self.spans.iter().filter(|s| s.parent == Some(id)).collect();
        out.sort_by_key(|s| (s.start_ns, s.id));
        out
    }

    /// The distinct sites that contributed spans, sorted.
    pub fn sites(&self) -> Vec<String> {
        let mut out: Vec<String> = self.spans.iter().map(|s| s.site.clone()).collect();
        out.sort();
        out.dedup();
        out
    }
}

struct TracerInner {
    trace_id: u64,
    next_id: AtomicU64,
    epoch: Instant,
    capacity: usize,
    spans: Mutex<Vec<Span>>,
    /// Events recorded against a span that is still open (its guard owns
    /// the `Span` value); drained into the span when the guard finishes.
    pending_events: Mutex<Vec<(u64, SpanEvent)>>,
    dropped: AtomicU64,
}

/// The tracing handle. Cloning is cheap (an `Arc`); a disabled tracer is
/// a `None` and every operation on it is a no-op that allocates nothing.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

/// Default span-buffer capacity (spans beyond this are dropped, counted).
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

impl Tracer {
    /// The disabled tracer: every hook is a null check.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer with a seed-derived trace id and sequential span
    /// ids — same seed, same trace shape.
    pub fn new(seed: u64) -> Tracer {
        Tracer::with_trace_id(splitmix64(seed))
    }

    /// An enabled tracer adopting an existing trace id (the server side
    /// of a propagated trace).
    pub fn with_trace_id(trace_id: u64) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                trace_id,
                next_id: AtomicU64::new(1),
                epoch: Instant::now(),
                capacity: DEFAULT_SPAN_CAPACITY,
                spans: Mutex::new(Vec::new()),
                pending_events: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// Is this tracer recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace id (0 when disabled).
    pub fn trace_id(&self) -> u64 {
        self.inner.as_ref().map(|i| i.trace_id).unwrap_or(0)
    }

    /// Nanoseconds since the trace epoch (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.epoch.elapsed().as_nanos() as u64)
            .unwrap_or(0)
    }

    /// Open a span. `name` is a closure so the disabled path never
    /// formats or allocates. Returns a guard that records the span when
    /// finished (or dropped).
    pub fn start(
        &self,
        parent: Option<u64>,
        name: impl FnOnce() -> String,
        site: &str,
    ) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { active: None };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let start_ns = inner.epoch.elapsed().as_nanos() as u64;
        SpanGuard {
            active: Some(ActiveSpan {
                inner: Arc::clone(inner),
                span: Span {
                    id,
                    parent,
                    name: name(),
                    site: site.to_string(),
                    start_ns,
                    end_ns: start_ns,
                    rows: None,
                    bytes: None,
                    events: Vec::new(),
                },
            }),
        }
    }

    /// Record an event against a span that may still be open (attached
    /// when its guard finishes). No-op when disabled or `span` is `None`.
    pub fn event(&self, span: Option<u64>, label: impl FnOnce() -> String) {
        let (Some(inner), Some(span)) = (&self.inner, span) else {
            return;
        };
        let at_ns = inner.epoch.elapsed().as_nanos() as u64;
        let mut pending = inner.pending_events.lock().expect("tracer lock poisoned");
        pending.push((
            span,
            SpanEvent {
                at_ns,
                label: label(),
            },
        ));
    }

    /// Emit a fully-formed span (used when span boundaries don't nest as
    /// lexical scopes, e.g. a transfer assembled from attempt logs).
    pub fn emit(&self, span: Span) {
        if let Some(inner) = &self.inner {
            inner.push(span);
        }
    }

    /// Attach spans recorded by a remote tracer: ids are remapped into
    /// this tracer's id space (preserving the remote parent structure),
    /// parentless remote spans hang under `parent`, and times shift by
    /// `anchor_ns - min(remote start)` so the remote work lands at the
    /// moment the client observed it.
    pub fn absorb_remote(&self, spans: Vec<Span>, parent: Option<u64>, anchor_ns: u64) {
        let Some(inner) = &self.inner else { return };
        if spans.is_empty() {
            return;
        }
        let base = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let mut remap = std::collections::HashMap::new();
        for s in &spans {
            remap.insert(s.id, inner.next_id.fetch_add(1, Ordering::Relaxed));
        }
        for mut s in spans {
            s.id = remap[&s.id];
            s.parent = match s.parent.and_then(|p| remap.get(&p).copied()) {
                Some(p) => Some(p),
                None => parent,
            };
            s.start_ns = anchor_ns + (s.start_ns - base);
            s.end_ns = anchor_ns + (s.end_ns - base);
            for e in &mut s.events {
                e.at_ns = anchor_ns + e.at_ns.saturating_sub(base);
            }
            inner.push(s);
        }
    }

    /// Drain the recorded spans (the server side returns these over the
    /// wire after answering a traced request).
    pub fn take_spans(&self) -> Vec<Span> {
        match &self.inner {
            Some(inner) => {
                let mut spans = inner.spans.lock().expect("tracer lock poisoned");
                std::mem::take(&mut *spans)
            }
            None => Vec::new(),
        }
    }

    /// Snapshot the trace recorded so far.
    pub fn finish(&self) -> Trace {
        match &self.inner {
            Some(inner) => Trace {
                trace_id: inner.trace_id,
                spans: inner.spans.lock().expect("tracer lock poisoned").clone(),
                dropped: inner.dropped.load(Ordering::Relaxed),
            },
            None => Trace::default(),
        }
    }
}

impl TracerInner {
    fn push(&self, mut span: Span) {
        // Merge any events recorded while the span was open.
        {
            let mut pending = self.pending_events.lock().expect("tracer lock poisoned");
            let mut i = 0;
            while i < pending.len() {
                if pending[i].0 == span.id {
                    span.events.push(pending.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
        }
        span.events.sort_by_key(|e| e.at_ns);
        let mut spans = self.spans.lock().expect("tracer lock poisoned");
        if spans.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(span);
    }
}

struct ActiveSpan {
    inner: Arc<TracerInner>,
    span: Span,
}

/// An open span; finishing (or dropping) it records the span. All
/// methods are no-ops on the disabled tracer's guard.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// This span's id (`None` when tracing is disabled).
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.span.id)
    }

    /// Record a timestamped event inside this span.
    pub fn event(&mut self, label: impl FnOnce() -> String) {
        if let Some(a) = &mut self.active {
            let at_ns = a.inner.epoch.elapsed().as_nanos() as u64;
            a.span.events.push(SpanEvent {
                at_ns,
                label: label(),
            });
        }
    }

    /// Record the output cardinality.
    pub fn set_rows(&mut self, rows: usize) {
        if let Some(a) = &mut self.active {
            a.span.rows = Some(rows as u64);
        }
    }

    /// Record the payload size in bytes.
    pub fn set_bytes(&mut self, bytes: u64) {
        if let Some(a) = &mut self.active {
            a.span.bytes = Some(bytes);
        }
    }

    /// Close the span now (otherwise it closes on drop).
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if let Some(mut a) = self.active.take() {
            a.span.end_ns = a.inner.epoch.elapsed().as_nanos() as u64;
            a.inner.push(a.span);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

/// The global expression-kernel profiling switch. Off by default; when
/// off, every hook in `bda_core::eval` is one relaxed atomic load.
pub mod prof {
    use std::sync::atomic::{AtomicBool, Ordering};

    static ENABLED: AtomicBool = AtomicBool::new(false);

    /// Turn kernel profiling on or off (process-wide).
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Is kernel profiling on?
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert_and_allocation_free() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.trace_id(), 0);
        let mut g = t.start(None, || unreachable!("name closure must not run"), "app");
        assert_eq!(g.id(), None);
        g.event(|| unreachable!("label closure must not run"));
        g.set_rows(3);
        g.finish();
        t.event(Some(1), || unreachable!());
        let trace = t.finish();
        assert!(trace.spans.is_empty());
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn span_ids_are_sequential_and_trace_id_seeded() {
        let a = Tracer::new(42);
        let b = Tracer::new(42);
        assert_eq!(a.trace_id(), b.trace_id());
        assert_ne!(Tracer::new(7).trace_id(), a.trace_id());
        let s1 = a.start(None, || "query".into(), "app");
        let s2 = a.start(s1.id(), || "fragment:0".into(), "rel");
        assert_eq!(s1.id(), Some(1));
        assert_eq!(s2.id(), Some(2));
        drop(s2);
        drop(s1);
        let trace = a.finish();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.span(2).unwrap().parent, Some(1));
        assert_eq!(trace.children_of(1).len(), 1);
    }

    #[test]
    fn pending_events_merge_into_open_spans() {
        let t = Tracer::new(1);
        let g = t.start(None, || "fragment:0".into(), "rel");
        t.event(g.id(), || "retry:1".into());
        t.event(g.id(), || "retry:2".into());
        g.finish();
        let trace = t.finish();
        let s = trace.span(1).unwrap();
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].label, "retry:1");
        assert!(s.events[0].at_ns <= s.events[1].at_ns);
    }

    #[test]
    fn absorb_remote_remaps_ids_and_parents() {
        let t = Tracer::new(1);
        let g = t.start(None, || "fragment:0".into(), "rel");
        let parent = g.id();
        // Remote spans with their own id space: 1 → 2.
        let remote = vec![
            Span {
                id: 1,
                parent: None,
                name: "serve:execute".into(),
                site: "la".into(),
                start_ns: 100,
                end_ns: 300,
                rows: Some(4),
                bytes: None,
                events: vec![],
            },
            Span {
                id: 2,
                parent: Some(1),
                name: "op:matmul".into(),
                site: "la".into(),
                start_ns: 120,
                end_ns: 280,
                rows: Some(4),
                bytes: None,
                events: vec![],
            },
        ];
        t.absorb_remote(remote, parent, 1_000);
        g.finish();
        let trace = t.finish();
        assert_eq!(trace.spans.len(), 3);
        let serve = trace.spans_named("serve:")[0];
        let op = trace.spans_named("op:")[0];
        assert_eq!(serve.parent, parent);
        assert_eq!(op.parent, Some(serve.id));
        assert_eq!(serve.start_ns, 1_000, "anchored to the client timeline");
        assert_eq!(op.start_ns, 1_020);
        assert_eq!(trace.sites(), vec!["la".to_string(), "rel".to_string()]);
    }

    #[test]
    fn span_buffer_is_bounded() {
        let t = Tracer::with_trace_id(9);
        let cap = t.inner.as_ref().unwrap().capacity;
        for i in 0..cap + 10 {
            t.start(None, || format!("s{i}"), "app").finish();
        }
        let trace = t.finish();
        assert_eq!(trace.spans.len(), cap);
        assert_eq!(trace.dropped, 10);
    }

    #[test]
    fn prof_switch_round_trips() {
        assert!(!prof::enabled());
        prof::set_enabled(true);
        assert!(prof::enabled());
        prof::set_enabled(false);
        assert!(!prof::enabled());
    }

    #[test]
    fn trace_seed_env_override() {
        std::env::set_var(TRACE_SEED_ENV, "99");
        assert_eq!(trace_seed_from_env(1), 99);
        std::env::remove_var(TRACE_SEED_ENV);
        assert_eq!(trace_seed_from_env(1), 1);
    }
}
