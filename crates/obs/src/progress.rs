//! Live query progress: what is executing *right now*, how far along it
//! is, and which providers are dragging behind their peers.
//!
//! The federated executor registers every top-level query in a
//! [`ProgressTracker`] and feeds it through a [`ProgressHandle`]:
//! fragment completions (with per-site wall time), iteration boundaries
//! (with the convergence delta and rows-changed from
//! `bda_core::convergence`), and the final outcome. The HTTP `GET
//! /progress` endpoint renders the tracker as JSON, so an operator —
//! or a dashboard — can watch an iterative federated query converge
//! while it runs instead of reading tea leaves from `top`.
//!
//! Straggler detection: each query keeps a [`Histogram`] of its
//! fragment wall times; a fragment is flagged when its wall time
//! exceeds [`STRAGGLER_FACTOR`] × the histogram's interpolated median
//! ([`Histogram::quantile`]), the per-operator-feedback loop LaraDB
//! builds its tuning on.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::chrome::escape;
use crate::metrics::Histogram;

/// A fragment is a straggler when its wall time exceeds this multiple of
/// the median of its peers within the same query.
pub const STRAGGLER_FACTOR: f64 = 3.0;

/// Completed queries kept for inspection after they finish.
const COMPLETED_KEPT: usize = 32;

/// One fragment's execution record inside a query.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentProgress {
    /// Fragment id within the placement.
    pub id: u64,
    /// Site (provider) that executed it.
    pub site: String,
    /// Wall time, seconds.
    pub wall_s: f64,
}

/// Point-in-time view of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProgress {
    /// Tracker-assigned query id (monotonic per process).
    pub id: u64,
    /// Trace id when the query is traced (0 otherwise).
    pub trace_id: u64,
    /// Human label, e.g. the root operator or `req:execute`.
    pub label: String,
    /// Seconds since the query started.
    pub elapsed_s: f64,
    /// Completed fragments (site + wall time).
    pub fragments_done: Vec<FragmentProgress>,
    /// Total fragments in the placement (0 when unknown).
    pub fragments_total: u64,
    /// Current iteration (0 before the first one finishes).
    pub iteration: u64,
    /// Iteration bound (0 when the query does not iterate).
    pub max_iterations: u64,
    /// Convergence delta of the most recent iteration, when defined.
    pub last_delta: Option<f64>,
    /// Rows changed by the most recent iteration.
    pub rows_changed: Option<u64>,
    /// Completion fraction in `0.0 ..= 1.0` (best effort).
    pub fraction: f64,
    /// Sites currently flagged as stragglers.
    pub stragglers: Vec<String>,
    /// Terminal state: `running`, `done`, or `failed`.
    pub state: &'static str,
}

struct QueryEntry {
    id: u64,
    trace_id: u64,
    label: String,
    started: Instant,
    finished_after_s: Option<f64>,
    fragments_done: Vec<FragmentProgress>,
    fragments_total: u64,
    iteration: u64,
    max_iterations: u64,
    last_delta: Option<f64>,
    rows_changed: Option<u64>,
    walls: Histogram,
    state: &'static str,
}

impl QueryEntry {
    fn snapshot(&self) -> QueryProgress {
        let median = self.walls.quantile(0.5);
        let stragglers = match median {
            Some(m) if m > 0.0 => {
                let mut sites: Vec<String> = self
                    .fragments_done
                    .iter()
                    .filter(|f| f.wall_s > STRAGGLER_FACTOR * m)
                    .map(|f| f.site.clone())
                    .collect();
                sites.sort();
                sites.dedup();
                sites
            }
            _ => Vec::new(),
        };
        let fraction = if self.state != "running" {
            1.0
        } else if self.max_iterations > 0 {
            self.iteration as f64 / self.max_iterations as f64
        } else if self.fragments_total > 0 {
            self.fragments_done.len() as f64 / self.fragments_total as f64
        } else {
            0.0
        };
        QueryProgress {
            id: self.id,
            trace_id: self.trace_id,
            label: self.label.clone(),
            elapsed_s: self
                .finished_after_s
                .unwrap_or_else(|| self.started.elapsed().as_secs_f64()),
            fragments_done: self.fragments_done.clone(),
            fragments_total: self.fragments_total,
            iteration: self.iteration,
            max_iterations: self.max_iterations,
            last_delta: self.last_delta,
            rows_changed: self.rows_changed,
            fraction: fraction.clamp(0.0, 1.0),
            stragglers,
            state: self.state,
        }
    }
}

struct TrackerInner {
    next_id: u64,
    running: Vec<QueryEntry>,
    completed: VecDeque<QueryEntry>,
}

/// Registry of in-flight (and recently completed) queries. Cloning
/// shares the underlying state; one global instance per process
/// ([`global`]) backs the HTTP endpoint.
#[derive(Clone)]
pub struct ProgressTracker {
    inner: Arc<Mutex<TrackerInner>>,
}

impl Default for ProgressTracker {
    fn default() -> Self {
        ProgressTracker {
            inner: Arc::new(Mutex::new(TrackerInner {
                next_id: 1,
                running: Vec::new(),
                completed: VecDeque::new(),
            })),
        }
    }
}

impl ProgressTracker {
    /// A fresh, empty tracker.
    pub fn new() -> ProgressTracker {
        ProgressTracker::default()
    }

    /// Register a query; the returned handle feeds its progress. The
    /// query stays listed until the handle reports `finish`/`fail` (or
    /// is dropped, which counts as a failure-less finish).
    pub fn start(&self, label: &str, trace_id: u64) -> ProgressHandle {
        let mut inner = self.inner.lock().expect("progress lock poisoned");
        let id = inner.next_id;
        inner.next_id += 1;
        inner.running.push(QueryEntry {
            id,
            trace_id,
            label: label.to_string(),
            started: Instant::now(),
            finished_after_s: None,
            fragments_done: Vec::new(),
            fragments_total: 0,
            iteration: 0,
            max_iterations: 0,
            last_delta: None,
            rows_changed: None,
            walls: Histogram::new(),
            state: "running",
        });
        ProgressHandle {
            tracker: Some(self.clone()),
            id,
        }
    }

    /// A handle that records nothing (nested sub-queries use this so the
    /// board lists each top-level query once).
    pub fn noop() -> ProgressHandle {
        ProgressHandle {
            tracker: None,
            id: 0,
        }
    }

    fn update(&self, id: u64, f: impl FnOnce(&mut QueryEntry)) {
        let mut inner = self.inner.lock().expect("progress lock poisoned");
        if let Some(e) = inner.running.iter_mut().find(|e| e.id == id) {
            f(e);
        }
    }

    fn complete(&self, id: u64, state: &'static str) {
        let mut inner = self.inner.lock().expect("progress lock poisoned");
        if let Some(pos) = inner.running.iter().position(|e| e.id == id) {
            let mut e = inner.running.remove(pos);
            e.state = state;
            e.finished_after_s = Some(e.started.elapsed().as_secs_f64());
            inner.completed.push_back(e);
            while inner.completed.len() > COMPLETED_KEPT {
                inner.completed.pop_front();
            }
        }
    }

    /// Snapshot of every tracked query: running first (oldest first),
    /// then recently completed (newest last).
    pub fn snapshot(&self) -> Vec<QueryProgress> {
        let inner = self.inner.lock().expect("progress lock poisoned");
        inner
            .running
            .iter()
            .map(QueryEntry::snapshot)
            .chain(inner.completed.iter().map(QueryEntry::snapshot))
            .collect()
    }

    /// Render the tracker as the `/progress` JSON document.
    pub fn render_json(&self) -> String {
        let queries: Vec<String> = self.snapshot().iter().map(render_query).collect();
        format!("{{\"queries\":[{}]}}", queries.join(","))
    }
}

fn render_query(q: &QueryProgress) -> String {
    let fragments: Vec<String> = q
        .fragments_done
        .iter()
        .map(|f| {
            format!(
                "{{\"id\":{},\"site\":\"{}\",\"wall_s\":{:.6}}}",
                f.id,
                escape(&f.site),
                f.wall_s
            )
        })
        .collect();
    let stragglers: Vec<String> = q
        .stragglers
        .iter()
        .map(|s| format!("\"{}\"", escape(s)))
        .collect();
    format!(
        "{{\"id\":{},\"trace_id\":\"{:#018x}\",\"label\":\"{}\",\"state\":\"{}\",\
         \"elapsed_s\":{:.6},\"fraction\":{:.4},\"iteration\":{},\"max_iterations\":{},\
         \"last_delta\":{},\"rows_changed\":{},\"fragments_total\":{},\
         \"fragments_done\":[{}],\"stragglers\":[{}]}}",
        q.id,
        q.trace_id,
        escape(&q.label),
        q.state,
        q.elapsed_s,
        q.fraction,
        q.iteration,
        q.max_iterations,
        match q.last_delta {
            Some(d) => format!("{d:.9}"),
            None => "null".to_string(),
        },
        match q.rows_changed {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        },
        q.fragments_total,
        fragments.join(","),
        stragglers.join(","),
    )
}

/// Feeds one query's progress into its tracker. All methods are no-ops
/// on [`ProgressTracker::noop`] handles. Dropping an unfinished handle
/// marks the query `failed` (a panic or early return is a failure from
/// the operator's point of view).
pub struct ProgressHandle {
    tracker: Option<ProgressTracker>,
    id: u64,
}

impl ProgressHandle {
    /// Is this a recording handle?
    pub fn is_active(&self) -> bool {
        self.tracker.is_some()
    }

    /// Declare how many fragments the placement holds.
    pub fn set_fragments_total(&self, total: usize) {
        if let Some(t) = &self.tracker {
            t.update(self.id, |e| e.fragments_total = total as u64);
        }
    }

    /// Record one completed fragment and its wall time at `site`.
    pub fn fragment_done(&self, id: usize, site: &str, wall_s: f64) {
        if let Some(t) = &self.tracker {
            t.update(self.id, |e| {
                e.walls.observe_s(wall_s);
                e.fragments_done.push(FragmentProgress {
                    id: id as u64,
                    site: site.to_string(),
                    wall_s,
                });
            });
        }
    }

    /// Record an iteration boundary: the iteration just finished, the
    /// loop bound, the convergence delta (when defined) and the number
    /// of rows the iteration changed.
    pub fn iteration(&self, n: usize, max: usize, delta: Option<f64>, rows_changed: Option<u64>) {
        if let Some(t) = &self.tracker {
            t.update(self.id, |e| {
                e.iteration = n as u64;
                e.max_iterations = max as u64;
                e.last_delta = delta;
                e.rows_changed = rows_changed;
            });
        }
    }

    /// Mark the query successfully completed.
    pub fn finish(mut self) {
        self.complete("done");
    }

    /// Mark the query permanently failed.
    pub fn fail(mut self) {
        self.complete("failed");
    }

    fn complete(&mut self, state: &'static str) {
        if let Some(t) = self.tracker.take() {
            t.complete(self.id, state);
        }
    }
}

impl Drop for ProgressHandle {
    fn drop(&mut self) {
        self.complete("failed");
    }
}

/// The process-wide tracker the HTTP endpoint serves.
pub fn global() -> &'static ProgressTracker {
    static GLOBAL: OnceLock<ProgressTracker> = OnceLock::new();
    GLOBAL.get_or_init(ProgressTracker::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_running_to_done() {
        let t = ProgressTracker::new();
        let h = t.start("query", 0xBDA);
        h.set_fragments_total(2);
        h.fragment_done(0, "rel", 0.010);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].state, "running");
        assert!((snap[0].fraction - 0.5).abs() < 1e-9);
        h.fragment_done(1, "la", 0.012);
        h.finish();
        let snap = t.snapshot();
        assert_eq!(snap[0].state, "done");
        assert!((snap[0].fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn iteration_progress_drives_the_fraction() {
        let t = ProgressTracker::new();
        let h = t.start("pagerank", 1);
        h.iteration(5, 20, Some(0.125), Some(64));
        let q = &t.snapshot()[0];
        assert_eq!(q.iteration, 5);
        assert_eq!(q.max_iterations, 20);
        assert_eq!(q.last_delta, Some(0.125));
        assert_eq!(q.rows_changed, Some(64));
        assert!((q.fraction - 0.25).abs() < 1e-9);
        h.finish();
    }

    #[test]
    fn straggler_flagged_beyond_factor_times_median() {
        let t = ProgressTracker::new();
        let h = t.start("q", 0);
        // Four peers around 1ms, one site 100× slower.
        for (i, site) in ["a", "b", "c", "d"].iter().enumerate() {
            h.fragment_done(i, site, 0.001);
        }
        h.fragment_done(4, "slow", 0.1);
        let q = &t.snapshot()[0];
        assert_eq!(q.stragglers, vec!["slow".to_string()]);
        h.finish();
    }

    #[test]
    fn uniform_fragments_have_no_stragglers() {
        let t = ProgressTracker::new();
        let h = t.start("q", 0);
        for (i, site) in ["a", "b", "c"].iter().enumerate() {
            h.fragment_done(i, site, 0.002);
        }
        assert!(t.snapshot()[0].stragglers.is_empty());
        h.finish();
    }

    #[test]
    fn dropped_handle_marks_failure_and_noop_records_nothing() {
        let t = ProgressTracker::new();
        {
            let _h = t.start("doomed", 0);
        }
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].state, "failed");

        let noop = ProgressTracker::noop();
        assert!(!noop.is_active());
        noop.fragment_done(0, "x", 1.0);
        noop.finish();
        assert_eq!(t.snapshot().len(), 1, "noop touched nothing");
    }

    #[test]
    fn render_json_is_well_formed_enough() {
        let t = ProgressTracker::new();
        let h = t.start("q\"uote", 7);
        h.iteration(1, 4, Some(0.5), Some(2));
        let json = t.render_json();
        assert!(json.starts_with("{\"queries\":["), "{json}");
        assert!(json.contains("\"label\":\"q\\\"uote\""), "{json}");
        assert!(json.contains("\"iteration\":1"), "{json}");
        assert!(json.contains("\"last_delta\":0.5"), "{json}");
        assert!(json.ends_with("]}"), "{json}");
        h.finish();
    }

    #[test]
    fn completed_ring_is_bounded() {
        let t = ProgressTracker::new();
        for i in 0..COMPLETED_KEPT + 5 {
            t.start(&format!("q{i}"), 0).finish();
        }
        assert_eq!(t.snapshot().len(), COMPLETED_KEPT);
    }
}
