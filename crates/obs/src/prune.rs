//! Process-wide pruning counters.
//!
//! The statistics layer (zone maps, secondary indexes, fragment
//! elimination) reports its skipping decisions here so operators can
//! see them without a trace: the counters surface in Prometheus
//! expositions and the `== pruning ==` EXPLAIN ANALYZE section sums a
//! query's per-span pruning events. Counters are relaxed atomics —
//! pruning sits on the scan hot path and must cost one `fetch_add`
//! per decision, nothing more.

use std::sync::atomic::{AtomicU64, Ordering};

static CHUNKS_CONSIDERED: AtomicU64 = AtomicU64::new(0);
static CHUNKS_PRUNED: AtomicU64 = AtomicU64::new(0);
static FRAGMENTS_PRUNED: AtomicU64 = AtomicU64::new(0);
static INDEX_HITS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of the pruning counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneCounters {
    /// Chunks a zone-mapped scan inspected.
    pub chunks_considered: u64,
    /// Chunks skipped because a zone map disproved the predicate.
    pub chunks_pruned: u64,
    /// Whole plan fragments replaced by empty values at optimize time.
    pub fragments_pruned: u64,
    /// Selections answered from a secondary index.
    pub index_hits: u64,
}

/// Count chunks inspected (`considered`) and skipped (`pruned`) by one
/// zone-mapped scan.
pub fn record_chunks(considered: u64, pruned: u64) {
    CHUNKS_CONSIDERED.fetch_add(considered, Ordering::Relaxed);
    CHUNKS_PRUNED.fetch_add(pruned, Ordering::Relaxed);
}

/// Count a fragment eliminated wholesale by table-level statistics.
pub fn record_fragment_pruned() {
    FRAGMENTS_PRUNED.fetch_add(1, Ordering::Relaxed);
}

/// Count a selection served from a secondary index.
pub fn record_index_hit() {
    INDEX_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Read the current counter values.
pub fn snapshot() -> PruneCounters {
    PruneCounters {
        chunks_considered: CHUNKS_CONSIDERED.load(Ordering::Relaxed),
        chunks_pruned: CHUNKS_PRUNED.load(Ordering::Relaxed),
        fragments_pruned: FRAGMENTS_PRUNED.load(Ordering::Relaxed),
        index_hits: INDEX_HITS.load(Ordering::Relaxed),
    }
}

/// Reset every counter to zero (tests and benchmarks only; production
/// counters are cumulative like any Prometheus counter).
pub fn reset() {
    CHUNKS_CONSIDERED.store(0, Ordering::Relaxed);
    CHUNKS_PRUNED.store(0, Ordering::Relaxed);
    FRAGMENTS_PRUNED.store(0, Ordering::Relaxed);
    INDEX_HITS.store(0, Ordering::Relaxed);
}

/// Render the counters in Prometheus exposition format.
pub fn render_prometheus() -> String {
    let c = snapshot();
    let mut out = String::new();
    out.push_str("# TYPE bda_prune_chunks_considered_total counter\n");
    out.push_str(&format!(
        "bda_prune_chunks_considered_total {}\n",
        c.chunks_considered
    ));
    out.push_str("# TYPE bda_prune_chunks_pruned_total counter\n");
    out.push_str(&format!("bda_prune_chunks_pruned_total {}\n", c.chunks_pruned));
    out.push_str("# TYPE bda_prune_fragments_pruned_total counter\n");
    out.push_str(&format!(
        "bda_prune_fragments_pruned_total {}\n",
        c.fragments_pruned
    ));
    out.push_str("# TYPE bda_prune_index_hits_total counter\n");
    out.push_str(&format!("bda_prune_index_hits_total {}\n", c.index_hits));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        record_chunks(10, 7);
        record_chunks(5, 0);
        record_fragment_pruned();
        record_index_hit();
        record_index_hit();
        let c = snapshot();
        assert_eq!(c.chunks_considered, 15);
        assert_eq!(c.chunks_pruned, 7);
        assert_eq!(c.fragments_pruned, 1);
        assert_eq!(c.index_hits, 2);
        let text = render_prometheus();
        assert!(text.contains("bda_prune_chunks_pruned_total 7"));
        assert!(text.contains("bda_prune_index_hits_total 2"));
        reset();
        assert_eq!(snapshot(), PruneCounters::default());
    }
}
