//! Thread-local span scope: per-operator tracing for recursive
//! evaluators without touching their signatures.
//!
//! An engine's `execute_traced` [`install`]s a scope (tracer + site) for
//! the current thread; the engine's recursive executor calls [`enter`]
//! at the top of each plan node. When no scope is installed — the
//! common, untraced case — `enter` is a single thread-local borrow that
//! returns `None` and allocates nothing (the name closure never runs).
//! Nesting comes for free: each [`Node`] pushes itself as the parent for
//! spans opened deeper in the recursion and pops on drop.

use std::cell::RefCell;

use crate::{SpanGuard, Tracer};

thread_local! {
    static SCOPE: RefCell<Option<State>> = const { RefCell::new(None) };
}

struct State {
    tracer: Tracer,
    site: String,
    parents: Vec<u64>,
}

/// The installed scope; dropping it uninstalls.
pub struct Installed(());

impl Drop for Installed {
    fn drop(&mut self) {
        SCOPE.with(|s| *s.borrow_mut() = None);
    }
}

/// Install a tracing scope on this thread: spans [`enter`]ed until the
/// returned guard drops record into `tracer` at `site`, rooted under
/// `parent`. Returns `None` (and installs nothing) for a disabled
/// tracer.
pub fn install(tracer: &Tracer, site: &str, parent: Option<u64>) -> Option<Installed> {
    if !tracer.is_enabled() {
        return None;
    }
    SCOPE.with(|s| {
        *s.borrow_mut() = Some(State {
            tracer: tracer.clone(),
            site: site.to_string(),
            parents: parent.into_iter().collect(),
        })
    });
    Some(Installed(()))
}

/// One traced plan node; finishes its span and pops the parent stack on
/// drop.
pub struct Node {
    guard: SpanGuard,
}

impl Node {
    /// Record the node's output cardinality.
    pub fn rows(&mut self, rows: usize) {
        self.guard.set_rows(rows);
    }

    /// Record a timestamped event inside the node's span (e.g. a
    /// pruning decision). The label closure never runs untraced.
    pub fn event(&mut self, label: impl FnOnce() -> String) {
        self.guard.event(label);
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        SCOPE.with(|s| {
            if let Some(st) = s.borrow_mut().as_mut() {
                st.parents.pop();
            }
        });
        // The span guard closes after the pop, via its own Drop.
    }
}

/// Open a span for one plan node under the installed scope. `None` when
/// no scope is installed (the name closure is not invoked).
pub fn enter(name: impl FnOnce() -> String) -> Option<Node> {
    SCOPE.with(|s| {
        let mut slot = s.borrow_mut();
        let st = slot.as_mut()?;
        let guard = st.tracer.start(st.parents.last().copied(), name, &st.site);
        if let Some(id) = guard.id() {
            st.parents.push(id);
        }
        Some(Node { guard })
    })
}

/// A portable copy of the installed scope for handing spans to worker
/// threads: the tracer, the site, and the current parent span id.
///
/// Partition-parallel kernels capture a snapshot on the coordinating
/// thread (where the scope is installed) and use it to open
/// `partition:{i}` spans from pool workers via [`Tracer::start`] —
/// worker threads never install a full scope of their own.
#[derive(Clone)]
pub struct Snapshot {
    /// The tracer the scope records into.
    pub tracer: Tracer,
    /// The site label spans are attributed to.
    pub site: String,
    /// The innermost open span, if any — the parent for worker spans.
    pub parent: Option<u64>,
}

/// Capture the scope installed on this thread, or `None` when untraced.
pub fn snapshot() -> Option<Snapshot> {
    SCOPE.with(|s| {
        let slot = s.borrow();
        let st = slot.as_ref()?;
        Some(Snapshot {
            tracer: st.tracer.clone(),
            site: st.site.clone(),
            parent: st.parents.last().copied(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_scope_is_inert() {
        assert!(enter(|| unreachable!("must not format")).is_none());
    }

    #[test]
    fn disabled_tracer_installs_nothing() {
        let t = Tracer::disabled();
        assert!(install(&t, "rel", None).is_none());
        assert!(enter(|| unreachable!()).is_none());
    }

    #[test]
    fn nested_enters_build_a_span_tree() {
        let t = Tracer::new(3);
        {
            let _scope = install(&t, "rel", None);
            let mut outer = enter(|| "op:join".into()).unwrap();
            {
                let _inner = enter(|| "op:scan".into()).unwrap();
            }
            outer.rows(5);
        }
        // Scope uninstalled: enter is inert again.
        assert!(enter(|| unreachable!()).is_none());
        let trace = t.finish();
        assert_eq!(trace.spans.len(), 2);
        let join = trace.spans_named("op:join")[0];
        let scan = trace.spans_named("op:scan")[0];
        assert_eq!(scan.parent, Some(join.id));
        assert_eq!(join.parent, None);
        assert_eq!(join.rows, Some(5));
        assert_eq!(join.site, "rel");
    }

    #[test]
    fn snapshot_carries_tracer_site_and_parent() {
        assert!(snapshot().is_none());
        let t = Tracer::new(3);
        {
            let _scope = install(&t, "rel", None);
            let _outer = enter(|| "op:join".into()).unwrap();
            let snap = snapshot().unwrap();
            assert_eq!(snap.site, "rel");
            // A span started from the snapshot parents under the open node.
            let guard = snap
                .tracer
                .start(snap.parent, || "partition:0".into(), &snap.site);
            drop(guard);
        }
        let trace = t.finish();
        let join = trace.spans_named("op:join")[0];
        let part = trace.spans_named("partition:0")[0];
        assert_eq!(part.parent, Some(join.id));
    }
}
