//! Tenant-aware resource metering: who is consuming the cluster.
//!
//! The [`UsageBook`] charges rows, bytes, CPU-ns, wire-bytes, and
//! retries per tenant by distilling the same span trees
//! [`crate::profile`] already walks — [`UsageBook::charge`] takes a
//! finished [`QueryProfile`] and attributes its costs to the profile's
//! tenant. Serving cores that never see a full profile charge the
//! cheaper request grain via [`UsageBook::charge_io`].
//!
//! Charging rules (also documented in DESIGN.md):
//!
//! * `rows`/`bytes` — operator output, summed over `op:` spans;
//! * `cpu_ns` — operator span wall summed (the compute proper; fragment
//!   spans are excluded because they include network wait), falling
//!   back to the end-to-end wall when a query recorded no operator
//!   spans;
//! * `wire_bytes` — transfer and reship payloads, summed over sites;
//! * `retries` — retry attempts, summed over sites.
//!
//! Like the [`crate::profile::CostBook`], the book is seeded and
//! deterministic: monotone totals plus EWMA rates per tenant, sorted
//! rendering, floats fixed to three decimals — two books with the same
//! seed fed the same charges render byte-identically. The book persists
//! as JSONL under the same directory as the query log (one snapshot
//! line per query-grained charge; the loader keeps the last line per
//! tenant), and the EWMA rates feed back into reactor admission as the
//! deficit weights of its usage-fair mode.
//!
//! Metering is off until [`set_enabled`] flips the global switch — the
//! only cost on the disabled path is one relaxed atomic load.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::chrome::escape;
use crate::profile::{object_fields, parse_string, parse_u64, raw_of, QueryProfile};

/// File name of the JSONL usage book inside the profile directory
/// (alongside [`crate::profile::PROFILE_FILE`]).
pub const USAGE_FILE: &str = "usage.jsonl";

/// The tenant charged when nothing supplied an identity: in-process
/// work at the application tier.
pub const DEFAULT_TENANT: &str = "local";

/// EWMA smoothing factor for per-tenant usage rates (matches the cost
/// book's calibration smoothing).
pub const EWMA_ALPHA: f64 = 0.3;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Globally enable or disable metering. Off by default; the disabled
/// fast path is a single relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is metering globally enabled?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Everything the book knows about one tenant: monotone totals plus
/// EWMA rates over its recent query-grained charges.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantUsage {
    /// Tenant identity (a tag from the wire, or a peer address).
    pub tenant: String,
    /// Query-grained charges folded in.
    pub queries: u64,
    /// Operator output rows, summed.
    pub rows: u64,
    /// Operator output bytes, summed.
    pub bytes: u64,
    /// CPU nanoseconds (operator span wall), summed.
    pub cpu_ns: u64,
    /// Wire bytes (transfers, reships, framed request I/O), summed.
    pub wire_bytes: u64,
    /// Retry attempts charged to this tenant's queries.
    pub retries: u64,
    /// EWMA of CPU-ns per charge — the admission deficit weight.
    pub ewma_cpu_ns: f64,
    /// EWMA of (payload + wire) bytes per charge.
    pub ewma_bytes: f64,
}

impl TenantUsage {
    fn new(tenant: &str) -> TenantUsage {
        TenantUsage {
            tenant: tenant.to_string(),
            queries: 0,
            rows: 0,
            bytes: 0,
            cpu_ns: 0,
            wire_bytes: 0,
            retries: 0,
            ewma_cpu_ns: 0.0,
            ewma_bytes: 0.0,
        }
    }

    /// Render as a single JSON line (the JSONL persistence format and
    /// the `/tenants` element shape). Floats fixed to three decimals so
    /// equal usage renders byte-identically.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"tenant\":\"{}\",\"queries\":{},\"rows\":{},\"bytes\":{},\"cpu_ns\":{},\
             \"wire_bytes\":{},\"retries\":{},\"ewma_cpu_ns\":{:.3},\"ewma_bytes\":{:.3}}}",
            escape(&self.tenant),
            self.queries,
            self.rows,
            self.bytes,
            self.cpu_ns,
            self.wire_bytes,
            self.retries,
            self.ewma_cpu_ns,
            self.ewma_bytes,
        )
    }

    /// Parse one JSONL line produced by [`TenantUsage::render_json`].
    /// Lenient: `None` for anything malformed (the loader skips it).
    pub fn parse_json(line: &str) -> Option<TenantUsage> {
        let fields = object_fields(line)?;
        Some(TenantUsage {
            tenant: raw_of(&fields, "tenant").and_then(parse_string)?,
            queries: raw_of(&fields, "queries").and_then(parse_u64)?,
            rows: raw_of(&fields, "rows").and_then(parse_u64)?,
            bytes: raw_of(&fields, "bytes").and_then(parse_u64)?,
            cpu_ns: raw_of(&fields, "cpu_ns").and_then(parse_u64)?,
            wire_bytes: raw_of(&fields, "wire_bytes").and_then(parse_u64)?,
            retries: raw_of(&fields, "retries").and_then(parse_u64)?,
            ewma_cpu_ns: raw_of(&fields, "ewma_cpu_ns").and_then(parse_f64)?,
            ewma_bytes: raw_of(&fields, "ewma_bytes").and_then(parse_f64)?,
        })
    }
}

fn parse_f64(raw: &str) -> Option<f64> {
    raw.trim().parse().ok()
}

fn fold(prev: &mut f64, samples: u64, obs: f64) {
    if samples <= 1 {
        *prev = obs;
    } else {
        *prev = EWMA_ALPHA * obs + (1.0 - EWMA_ALPHA) * *prev;
    }
}

struct BookInner {
    seed: u64,
    charges: u64,
    tenants: BTreeMap<String, TenantUsage>,
    /// JSONL file appended on every query-grained charge, once
    /// persistence is enabled.
    persist: Option<PathBuf>,
}

/// Seeded, deterministic per-tenant usage aggregation. Cloning shares
/// the underlying registry (the serving core, the admission controller,
/// and the ops routes all hold clones of one book).
#[derive(Clone)]
pub struct UsageBook {
    inner: Arc<Mutex<BookInner>>,
}

impl UsageBook {
    /// A fresh book. The seed is provenance recorded in dumps: two
    /// books built with the same seed and fed the same charges render
    /// byte-identically.
    pub fn new(seed: u64) -> UsageBook {
        UsageBook {
            inner: Arc::new(Mutex::new(BookInner {
                seed,
                charges: 0,
                tenants: BTreeMap::new(),
                persist: None,
            })),
        }
    }

    /// The seed this book was built with.
    pub fn seed(&self) -> u64 {
        self.inner.lock().expect("usage book lock poisoned").seed
    }

    /// Total charges folded in (query- and request-grained).
    pub fn charges(&self) -> u64 {
        self.inner.lock().expect("usage book lock poisoned").charges
    }

    /// Enable JSONL persistence under `dir`: load whatever `usage.jsonl`
    /// already holds (lenient — bad lines skipped; the *last* snapshot
    /// line per tenant wins), then append a snapshot on every future
    /// query-grained charge. Returns how many tenants were recovered.
    pub fn init_persistence(&self, dir: &Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(USAGE_FILE);
        let mut inner = self.inner.lock().expect("usage book lock poisoned");
        if let Ok(existing) = std::fs::read_to_string(&path) {
            for line in existing.lines() {
                if let Some(usage) = TenantUsage::parse_json(line) {
                    inner.tenants.insert(usage.tenant.clone(), usage);
                }
            }
        }
        inner.persist = Some(path);
        Ok(inner.tenants.len())
    }

    /// Charge a finished query profile to its tenant (empty tenant maps
    /// to [`DEFAULT_TENANT`]), applying the module-level charging rules,
    /// and persist the tenant's updated snapshot.
    pub fn charge(&self, profile: &QueryProfile) {
        let tenant = if profile.tenant.is_empty() {
            DEFAULT_TENANT
        } else {
            &profile.tenant
        };
        let rows: u64 = profile.ops.iter().map(|o| o.rows).sum();
        let bytes: u64 = profile.ops.iter().map(|o| o.bytes).sum();
        let mut cpu_ns: u64 = profile.ops.iter().map(|o| o.wall_ns).sum();
        if profile.ops.is_empty() {
            cpu_ns = profile.wall_ns;
        }
        let wire_bytes: u64 = profile.sites.iter().map(|s| s.transfer_bytes).sum();
        let retries: u64 = profile.sites.iter().map(|s| s.retries).sum();
        self.charge_query(tenant, rows, bytes, cpu_ns, wire_bytes, retries);
    }

    /// Charge one query's distilled costs to `tenant` and persist the
    /// updated snapshot (best effort).
    pub fn charge_query(
        &self,
        tenant: &str,
        rows: u64,
        bytes: u64,
        cpu_ns: u64,
        wire_bytes: u64,
        retries: u64,
    ) {
        let mut inner = self.inner.lock().expect("usage book lock poisoned");
        inner.charges += 1;
        let usage = inner
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantUsage::new(tenant));
        usage.queries += 1;
        usage.rows += rows;
        usage.bytes += bytes;
        usage.cpu_ns += cpu_ns;
        usage.wire_bytes += wire_bytes;
        usage.retries += retries;
        let n = usage.queries;
        fold(&mut usage.ewma_cpu_ns, n, cpu_ns as f64);
        fold(&mut usage.ewma_bytes, n, (bytes + wire_bytes) as f64);
        let line = usage.render_json();
        if let Some(path) = inner.persist.clone() {
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| writeln!(f, "{line}"));
        }
    }

    /// Charge one handled request's wall time and wire bytes to
    /// `tenant` — the serving-core hot path. Totals and EWMA rates
    /// move; nothing is persisted (the book persists at query grain).
    pub fn charge_io(&self, tenant: &str, cpu_ns: u64, wire_bytes: u64) {
        let mut inner = self.inner.lock().expect("usage book lock poisoned");
        inner.charges += 1;
        let usage = inner
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantUsage::new(tenant));
        usage.cpu_ns += cpu_ns;
        usage.wire_bytes += wire_bytes;
        // Request charges fold into the rates with the query count as
        // the sample clock: the first-ever charge still initializes.
        let n = if usage.queries == 0 && usage.ewma_cpu_ns == 0.0 {
            1
        } else {
            2
        };
        fold(&mut usage.ewma_cpu_ns, n, cpu_ns as f64);
        fold(&mut usage.ewma_bytes, n, wire_bytes as f64);
    }

    /// The deficit weight admission's usage-fair mode charges per
    /// dispatch: the tenant's recent cost in "nanosecond-equivalents"
    /// (EWMA CPU-ns plus EWMA bytes at one ns per byte). `None` when
    /// the tenant has no recorded usage — the caller falls back to
    /// plain round-robin weighting.
    pub fn recent_cost_ns(&self, tenant: &str) -> Option<f64> {
        let inner = self.inner.lock().expect("usage book lock poisoned");
        let usage = inner.tenants.get(tenant)?;
        let cost = usage.ewma_cpu_ns + usage.ewma_bytes;
        (cost > 0.0).then_some(cost)
    }

    /// This tenant's usage, when any is recorded.
    pub fn usage_of(&self, tenant: &str) -> Option<TenantUsage> {
        self.inner
            .lock()
            .expect("usage book lock poisoned")
            .tenants
            .get(tenant)
            .cloned()
    }

    /// All tenants' usage, sorted by tenant id.
    pub fn snapshot(&self) -> Vec<TenantUsage> {
        self.inner
            .lock()
            .expect("usage book lock poisoned")
            .tenants
            .values()
            .cloned()
            .collect()
    }

    /// Render the book as a JSON document (`GET /tenants`). Tenants are
    /// sorted and floats fixed, so equal books render byte-identically.
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock().expect("usage book lock poisoned");
        let body: Vec<String> = inner.tenants.values().map(|u| u.render_json()).collect();
        format!(
            "{{\"seed\":{},\"charges\":{},\"tenants\":[{}]}}\n",
            inner.seed,
            inner.charges,
            body.join(",")
        )
    }

    /// Render one tenant's usage (`GET /tenants/<id>`), `None` when the
    /// tenant has no recorded usage.
    pub fn render_tenant_json(&self, tenant: &str) -> Option<String> {
        self.usage_of(tenant).map(|u| {
            let mut line = u.render_json();
            line.push('\n');
            line
        })
    }
}

/// The process-global usage book, seeded from [`crate::TRACE_SEED_ENV`]
/// when set (0 otherwise). On first touch, honours
/// [`crate::profile::PROFILE_DIR_ENV`] by loading and enabling JSONL
/// persistence under the same directory as the query log.
pub fn global_usage() -> &'static UsageBook {
    static BOOK: OnceLock<UsageBook> = OnceLock::new();
    BOOK.get_or_init(|| {
        let seed = std::env::var(crate::TRACE_SEED_ENV)
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0);
        let book = UsageBook::new(seed);
        if let Ok(dir) = std::env::var(crate::profile::PROFILE_DIR_ENV) {
            if !dir.trim().is_empty() {
                let _ = book.init_persistence(Path::new(&dir));
            }
        }
        book
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{OpProfile, SiteProfile};

    fn sample_profile(tenant: &str) -> QueryProfile {
        QueryProfile {
            trace_id: 0xBDA,
            tenant: tenant.to_string(),
            wall_ns: 10_000,
            slow: false,
            ops: vec![
                OpProfile {
                    class: "join".into(),
                    count: 1,
                    rows: 100,
                    bytes: 800,
                    wall_ns: 4_000,
                },
                OpProfile {
                    class: "scan".into(),
                    count: 2,
                    rows: 50,
                    bytes: 200,
                    wall_ns: 1_000,
                },
            ],
            sites: vec![SiteProfile {
                site: "rel".into(),
                fragments: 1,
                fragment_wall_ns: 6_000,
                transfer_bytes: 1_000,
                transfer_wall_ns: 2_000,
                retries: 2,
                failovers: 0,
            }],
        }
    }

    #[test]
    fn charge_applies_the_documented_rules() {
        let book = UsageBook::new(7);
        book.charge(&sample_profile("acme"));
        let u = book.usage_of("acme").unwrap();
        assert_eq!(u.queries, 1);
        assert_eq!(u.rows, 150);
        assert_eq!(u.bytes, 1_000);
        assert_eq!(u.cpu_ns, 5_000, "operator wall, not fragment wall");
        assert_eq!(u.wire_bytes, 1_000);
        assert_eq!(u.retries, 2);
        assert_eq!(u.ewma_cpu_ns, 5_000.0, "first charge initializes");
        assert_eq!(u.ewma_bytes, 2_000.0);
        // An empty-tenant profile charges the default tenant.
        book.charge(&sample_profile(""));
        assert!(book.usage_of(DEFAULT_TENANT).is_some());
        assert!(book.usage_of("nobody").is_none());
    }

    #[test]
    fn profile_without_ops_charges_end_to_end_wall() {
        let book = UsageBook::new(0);
        let mut p = sample_profile("acme");
        p.ops.clear();
        book.charge(&p);
        assert_eq!(book.usage_of("acme").unwrap().cpu_ns, 10_000);
    }

    #[test]
    fn ewma_folds_and_renders_deterministically() {
        let book = UsageBook::new(42);
        book.charge(&sample_profile("acme"));
        book.charge(&sample_profile("acme"));
        let u = book.usage_of("acme").unwrap();
        assert_eq!(u.queries, 2);
        assert_eq!(u.cpu_ns, 10_000, "totals are monotone sums");
        assert!((u.ewma_cpu_ns - 5_000.0).abs() < 1e-9, "equal samples hold");
        // A twin book fed the same charges renders byte-identically.
        let twin = UsageBook::new(42);
        twin.charge(&sample_profile("acme"));
        twin.charge(&sample_profile("acme"));
        assert_eq!(book.render_json(), twin.render_json());
        assert!(book.render_json().contains("\"seed\":42"));
        // Tenants render sorted regardless of charge order.
        book.charge(&sample_profile("zeta"));
        book.charge(&sample_profile("alpha"));
        let dump = book.render_json();
        let a = dump.find("alpha").unwrap();
        let z = dump.find("zeta").unwrap();
        assert!(a < z);
    }

    #[test]
    fn charge_io_moves_rates_without_query_counts() {
        let book = UsageBook::new(0);
        book.charge_io("10.0.0.7", 2_000, 512);
        let u = book.usage_of("10.0.0.7").unwrap();
        assert_eq!(u.queries, 0);
        assert_eq!(u.cpu_ns, 2_000);
        assert_eq!(u.wire_bytes, 512);
        assert_eq!(u.ewma_cpu_ns, 2_000.0, "first charge initializes");
        assert_eq!(book.recent_cost_ns("10.0.0.7"), Some(2_000.0 + 512.0));
        assert_eq!(book.recent_cost_ns("nobody"), None);
    }

    #[test]
    fn usage_json_round_trips() {
        let book = UsageBook::new(1);
        book.charge(&sample_profile("acme \"quoted\""));
        let u = book.usage_of("acme \"quoted\"").unwrap();
        let line = u.render_json();
        assert!(!line.contains('\n'), "one tenant per line");
        assert_eq!(TenantUsage::parse_json(&line).unwrap(), u);
        assert_eq!(TenantUsage::parse_json("not json"), None);
        assert_eq!(TenantUsage::parse_json("{\"queries\":1}"), None);
    }

    #[test]
    fn persistence_keeps_the_last_snapshot_per_tenant() {
        let dir = std::env::temp_dir().join(format!("bda-meter-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let book = UsageBook::new(3);
        assert_eq!(book.init_persistence(&dir).unwrap(), 0);
        book.charge(&sample_profile("acme"));
        book.charge(&sample_profile("acme"));
        book.charge(&sample_profile("umbrella"));
        // Reload: one line per charge on disk, last per tenant wins.
        let reloaded = UsageBook::new(3);
        assert_eq!(reloaded.init_persistence(&dir).unwrap(), 2);
        assert_eq!(reloaded.usage_of("acme").unwrap().queries, 2);
        assert_eq!(reloaded.usage_of("umbrella").unwrap().queries, 1);
        // A torn trailing line is skipped, never fatal.
        let path = dir.join(USAGE_FILE);
        let mut content = std::fs::read_to_string(&path).unwrap();
        content.push_str("{\"tenant\":\"torn\",\"que");
        std::fs::write(&path, content).unwrap();
        let torn = UsageBook::new(3);
        assert_eq!(torn.init_persistence(&dir).unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enable_switch_defaults_off() {
        // Other tests must not flip the global switch; here we only
        // assert the toggle round-trips.
        let was = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(was);
    }

    #[test]
    fn tenant_route_rendering() {
        let book = UsageBook::new(0);
        assert_eq!(book.render_tenant_json("acme"), None);
        book.charge(&sample_profile("acme"));
        let body = book.render_tenant_json("acme").unwrap();
        assert!(body.starts_with("{\"tenant\":\"acme\""));
        assert!(body.ends_with('\n'));
    }
}
