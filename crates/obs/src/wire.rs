//! The span codec: a self-contained binary encoding for `Vec<Span>` so
//! `bda-net` can carry server-side spans back to the client inside its
//! framed protocol without `bda-obs` depending on any wire crate.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! u32 span_count
//! per span:
//!   u64 id
//!   u8  has_parent, [u64 parent]
//!   u32 name_len,  name bytes (UTF-8)
//!   u32 site_len,  site bytes (UTF-8)
//!   u64 start_ns, u64 end_ns
//!   u8  has_rows,  [u64 rows]
//!   u8  has_bytes, [u64 bytes]
//!   u32 event_count
//!   per event: u64 at_ns, u32 label_len, label bytes
//! ```
//!
//! Decoding is strict: every length is bounds-checked and capped, and a
//! malformed buffer yields `Err`, never a panic or huge allocation.

use crate::{Span, SpanEvent};

/// Decode-side sanity caps: no legitimate trace has a million spans per
/// response or megabyte span names.
const MAX_SPANS: u32 = 1 << 20;
const MAX_STRING: u32 = 1 << 20;
const MAX_EVENTS: u32 = 1 << 20;

/// Encode spans into the wire layout above.
pub fn encode_spans(spans: &[Span]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + spans.len() * 64);
    put_u32(&mut out, spans.len() as u32);
    for s in spans {
        put_u64(&mut out, s.id);
        put_opt_u64(&mut out, s.parent);
        put_str(&mut out, &s.name);
        put_str(&mut out, &s.site);
        put_u64(&mut out, s.start_ns);
        put_u64(&mut out, s.end_ns);
        put_opt_u64(&mut out, s.rows);
        put_opt_u64(&mut out, s.bytes);
        put_u32(&mut out, s.events.len() as u32);
        for e in &s.events {
            put_u64(&mut out, e.at_ns);
            put_str(&mut out, &e.label);
        }
    }
    out
}

/// Decode spans from the wire layout; `Err(reason)` on any malformation.
pub fn decode_spans(buf: &[u8]) -> Result<Vec<Span>, String> {
    let mut r = Reader { buf, pos: 0 };
    let count = r.u32()?;
    if count > MAX_SPANS {
        return Err(format!("span count {count} exceeds cap"));
    }
    let mut spans = Vec::with_capacity(count.min(1024) as usize);
    for _ in 0..count {
        let id = r.u64()?;
        let parent = r.opt_u64()?;
        let name = r.string()?;
        let site = r.string()?;
        let start_ns = r.u64()?;
        let end_ns = r.u64()?;
        let rows = r.opt_u64()?;
        let bytes = r.opt_u64()?;
        let event_count = r.u32()?;
        if event_count > MAX_EVENTS {
            return Err(format!("event count {event_count} exceeds cap"));
        }
        let mut events = Vec::with_capacity(event_count.min(1024) as usize);
        for _ in 0..event_count {
            let at_ns = r.u64()?;
            let label = r.string()?;
            events.push(SpanEvent { at_ns, label });
        }
        spans.push(Span {
            id,
            parent,
            name,
            site,
            start_ns,
            end_ns,
            rows,
            bytes,
            events,
        });
    }
    if r.pos != buf.len() {
        return Err(format!("{} trailing bytes after spans", buf.len() - r.pos));
    }
    Ok(spans)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
        None => out.push(0),
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("span buffer truncated at {}+{n}", self.pos))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let bytes = self.take(4)?.try_into();
        Ok(u32::from_le_bytes(bytes.map_err(|_| {
            format!("u32 slice missized at {}", self.pos)
        })?))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let bytes = self.take(8)?.try_into();
        Ok(u64::from_le_bytes(bytes.map_err(|_| {
            format!("u64 slice missized at {}", self.pos)
        })?))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(format!("bad option tag {other}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()?;
        if len > MAX_STRING {
            return Err(format!("string length {len} exceeds cap"));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 in span string".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Span> {
        vec![
            Span {
                id: 1,
                parent: None,
                name: "query".into(),
                site: "app".into(),
                start_ns: 0,
                end_ns: 5_000,
                rows: Some(12),
                bytes: None,
                events: vec![SpanEvent {
                    at_ns: 100,
                    label: "retry:1".into(),
                }],
            },
            Span {
                id: 2,
                parent: Some(1),
                name: "op:join".into(),
                site: "rel".into(),
                start_ns: 10,
                end_ns: 4_000,
                rows: None,
                bytes: Some(4096),
                events: vec![],
            },
        ]
    }

    #[test]
    fn round_trip() {
        let spans = sample();
        let buf = encode_spans(&spans);
        assert_eq!(decode_spans(&buf).unwrap(), spans);
        assert_eq!(
            decode_spans(&encode_spans(&[])).unwrap(),
            Vec::<Span>::new()
        );
    }

    #[test]
    fn truncation_and_garbage_error_cleanly() {
        let buf = encode_spans(&sample());
        for cut in 0..buf.len() {
            assert!(decode_spans(&buf[..cut]).is_err(), "cut at {cut} must fail");
        }
        // Trailing garbage is rejected, not ignored.
        let mut extended = buf.clone();
        extended.push(0);
        assert!(decode_spans(&extended).is_err());
        // A hostile count cannot cause a giant allocation.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_spans(&hostile).is_err());
    }

    #[test]
    fn bad_option_tag_rejected() {
        let spans = sample();
        let mut buf = encode_spans(&spans);
        // Byte right after count+id is the parent option tag of span 1.
        buf[4 + 8] = 7;
        assert!(decode_spans(&buf).is_err());
    }
}
