//! A bounded store of recently completed traces, keyed by trace id, so
//! the HTTP `GET /traces/<id>` endpoint can serve Chrome-trace JSON for
//! queries that already finished. `Federation::run_traced` publishes
//! every finished trace into the process-global store ([`global`]).

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

use crate::Trace;

/// Traces kept before the oldest is evicted.
pub const DEFAULT_TRACES_KEPT: usize = 16;

/// Bounded FIFO of completed traces. Publishing the same trace id again
/// replaces the old copy (a re-run supersedes its predecessor).
pub struct TraceStore {
    traces: Mutex<VecDeque<Trace>>,
    capacity: usize,
}

impl TraceStore {
    /// A store that keeps the last `capacity` traces.
    pub fn with_capacity(capacity: usize) -> TraceStore {
        TraceStore {
            traces: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Publish a completed trace. Empty traces (disabled tracer) are
    /// ignored so the store only ever holds something worth rendering.
    pub fn publish(&self, trace: Trace) {
        if trace.spans.is_empty() {
            return;
        }
        let mut traces = self.traces.lock().expect("trace store lock poisoned");
        traces.retain(|t| t.trace_id != trace.trace_id);
        traces.push_back(trace);
        while traces.len() > self.capacity {
            traces.pop_front();
        }
    }

    /// The stored trace with this id, if still retained.
    pub fn get(&self, trace_id: u64) -> Option<Trace> {
        self.traces
            .lock()
            .expect("trace store lock poisoned")
            .iter()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// Chrome-trace JSON for the stored trace with this id.
    pub fn chrome_json(&self, trace_id: u64) -> Option<String> {
        self.get(trace_id).map(|t| t.to_chrome_json())
    }

    /// Ids currently retained, oldest first.
    pub fn ids(&self) -> Vec<u64> {
        self.traces
            .lock()
            .expect("trace store lock poisoned")
            .iter()
            .map(|t| t.trace_id)
            .collect()
    }
}

/// The process-wide store the HTTP endpoint serves.
pub fn global() -> &'static TraceStore {
    static GLOBAL: OnceLock<TraceStore> = OnceLock::new();
    GLOBAL.get_or_init(|| TraceStore::with_capacity(DEFAULT_TRACES_KEPT))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn trace_with_id(id: u64) -> Trace {
        let t = Tracer::with_trace_id(id);
        t.start(None, || "query".into(), "app").finish();
        t.finish()
    }

    #[test]
    fn publish_get_and_render_round_trip() {
        let s = TraceStore::with_capacity(4);
        s.publish(trace_with_id(7));
        assert_eq!(s.ids(), vec![7]);
        let json = s.chrome_json(7).expect("stored");
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"query\""));
        assert!(s.get(8).is_none());
    }

    #[test]
    fn empty_traces_are_ignored_and_capacity_bounds() {
        let s = TraceStore::with_capacity(2);
        s.publish(Trace::default());
        assert!(s.ids().is_empty());
        for id in 1..=3 {
            s.publish(trace_with_id(id));
        }
        assert_eq!(s.ids(), vec![2, 3], "oldest evicted");
    }

    #[test]
    fn republishing_replaces_the_old_copy() {
        let s = TraceStore::with_capacity(4);
        s.publish(trace_with_id(5));
        let t = Tracer::with_trace_id(5);
        t.start(None, || "rerun".into(), "app").finish();
        s.publish(t.finish());
        assert_eq!(s.ids(), vec![5]);
        assert!(s.chrome_json(5).unwrap().contains("rerun"));
    }
}
