//! A bounded store of recently completed traces, keyed by trace id, so
//! the HTTP `GET /traces/<id>` endpoint can serve Chrome-trace JSON for
//! queries that already finished. `Federation::run_traced` publishes
//! every finished trace into the process-global store ([`global`]).

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

use crate::Trace;

/// Traces kept before the oldest is evicted.
pub const DEFAULT_TRACES_KEPT: usize = 16;

/// Pinned traces (slow queries) kept in their own bounded ring, safe
/// from the main ring's churn.
pub const DEFAULT_PINNED_KEPT: usize = 8;

/// Bounded FIFO of completed traces. Publishing the same trace id again
/// replaces the old copy (a re-run supersedes its predecessor). Traces
/// worth keeping past normal churn — slow queries flagged by the query
/// log — can be [`TraceStore::pin`]ned into a separate bounded ring.
pub struct TraceStore {
    traces: Mutex<VecDeque<Trace>>,
    pinned: Mutex<VecDeque<Trace>>,
    capacity: usize,
    pinned_capacity: usize,
}

impl TraceStore {
    /// A store that keeps the last `capacity` traces.
    pub fn with_capacity(capacity: usize) -> TraceStore {
        TraceStore {
            traces: Mutex::new(VecDeque::new()),
            pinned: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            pinned_capacity: DEFAULT_PINNED_KEPT,
        }
    }

    /// Publish a completed trace. Empty traces (disabled tracer) are
    /// ignored so the store only ever holds something worth rendering.
    pub fn publish(&self, trace: Trace) {
        if trace.spans.is_empty() {
            return;
        }
        {
            // A re-run of a pinned trace supersedes the pinned copy in
            // place; it never duplicates into the main ring.
            let mut pinned = self.pinned.lock().expect("trace store lock poisoned");
            if let Some(t) = pinned.iter_mut().find(|t| t.trace_id == trace.trace_id) {
                *t = trace;
                return;
            }
        }
        let mut traces = self.traces.lock().expect("trace store lock poisoned");
        traces.retain(|t| t.trace_id != trace.trace_id);
        traces.push_back(trace);
        while traces.len() > self.capacity {
            traces.pop_front();
        }
    }

    /// Move the trace with this id from the main ring into the pinned
    /// ring (bounded FIFO of its own), so slow-query evidence survives
    /// the churn of subsequent queries. Returns whether the id was
    /// found anywhere (already-pinned ids report `true`).
    pub fn pin(&self, trace_id: u64) -> bool {
        let mut pinned = self.pinned.lock().expect("trace store lock poisoned");
        if pinned.iter().any(|t| t.trace_id == trace_id) {
            return true;
        }
        let from_ring = {
            let mut traces = self.traces.lock().expect("trace store lock poisoned");
            let at = traces.iter().position(|t| t.trace_id == trace_id);
            at.and_then(|i| traces.remove(i))
        };
        match from_ring {
            Some(trace) => {
                pinned.push_back(trace);
                while pinned.len() > self.pinned_capacity {
                    pinned.pop_front();
                }
                true
            }
            None => false,
        }
    }

    /// Ids of pinned traces, oldest first.
    pub fn pinned_ids(&self) -> Vec<u64> {
        self.pinned
            .lock()
            .expect("trace store lock poisoned")
            .iter()
            .map(|t| t.trace_id)
            .collect()
    }

    /// The stored trace with this id, if still retained (pinned traces
    /// are checked first).
    pub fn get(&self, trace_id: u64) -> Option<Trace> {
        if let Some(t) = self
            .pinned
            .lock()
            .expect("trace store lock poisoned")
            .iter()
            .find(|t| t.trace_id == trace_id)
        {
            return Some(t.clone());
        }
        self.traces
            .lock()
            .expect("trace store lock poisoned")
            .iter()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// Chrome-trace JSON for the stored trace with this id.
    pub fn chrome_json(&self, trace_id: u64) -> Option<String> {
        self.get(trace_id).map(|t| t.to_chrome_json())
    }

    /// Ids currently retained, oldest first.
    pub fn ids(&self) -> Vec<u64> {
        self.traces
            .lock()
            .expect("trace store lock poisoned")
            .iter()
            .map(|t| t.trace_id)
            .collect()
    }
}

/// The process-wide store the HTTP endpoint serves.
pub fn global() -> &'static TraceStore {
    static GLOBAL: OnceLock<TraceStore> = OnceLock::new();
    GLOBAL.get_or_init(|| TraceStore::with_capacity(DEFAULT_TRACES_KEPT))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn trace_with_id(id: u64) -> Trace {
        let t = Tracer::with_trace_id(id);
        t.start(None, || "query".into(), "app").finish();
        t.finish()
    }

    #[test]
    fn publish_get_and_render_round_trip() {
        let s = TraceStore::with_capacity(4);
        s.publish(trace_with_id(7));
        assert_eq!(s.ids(), vec![7]);
        let json = s.chrome_json(7).expect("stored");
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"query\""));
        assert!(s.get(8).is_none());
    }

    #[test]
    fn empty_traces_are_ignored_and_capacity_bounds() {
        let s = TraceStore::with_capacity(2);
        s.publish(Trace::default());
        assert!(s.ids().is_empty());
        for id in 1..=3 {
            s.publish(trace_with_id(id));
        }
        assert_eq!(s.ids(), vec![2, 3], "oldest evicted");
    }

    #[test]
    fn pinned_traces_survive_ring_churn() {
        let s = TraceStore::with_capacity(2);
        s.publish(trace_with_id(1));
        assert!(s.pin(1), "present in the ring");
        assert!(!s.pin(99), "unknown id");
        assert_eq!(s.ids(), Vec::<u64>::new(), "pin moves out of the ring");
        assert_eq!(s.pinned_ids(), vec![1]);
        // Churn far past the ring capacity: the pinned trace survives.
        for id in 10..20 {
            s.publish(trace_with_id(id));
        }
        assert!(s.get(1).is_some(), "pinned trace outlives eviction");
        assert!(s.pin(1), "re-pinning an already pinned id is idempotent");
        // Republishing a pinned id updates the pinned copy in place.
        let t = Tracer::with_trace_id(1);
        t.start(None, || "rerun".into(), "app").finish();
        s.publish(t.finish());
        assert_eq!(s.pinned_ids(), vec![1]);
        assert!(s.chrome_json(1).unwrap().contains("rerun"));
        assert!(!s.ids().contains(&1));
    }

    #[test]
    fn republishing_replaces_the_old_copy() {
        let s = TraceStore::with_capacity(4);
        s.publish(trace_with_id(5));
        let t = Tracer::with_trace_id(5);
        t.start(None, || "rerun".into(), "app").finish();
        s.publish(t.finish());
        assert_eq!(s.ids(), vec![5]);
        assert!(s.chrome_json(5).unwrap().contains("rerun"));
    }
}
