//! Query profiling and measured-cost calibration.
//!
//! A [`QueryProfile`] distills a finished span tree ([`crate::Trace`])
//! into the numbers an operator — or the planner — actually consumes:
//! per operator class, how many rows and bytes went through and how
//! long they took; per site, fragment wall times, transfer throughput,
//! and how often execution had to retry or fail over. Profiles live in
//! a bounded in-memory [`QueryLog`] ring and are optionally persisted
//! as JSONL (one profile per line) so the log survives restarts
//! alongside the durability subsystem's WAL.
//!
//! On top of the profiles sits the [`CostBook`]: a seeded,
//! deterministic EWMA registry of ns/row per operator class, ns/byte
//! per site link, and per-site fixed dispatch cost. The federation
//! planner consults it (when explicitly enabled) for site assignment
//! and partition-count choices and recalibrates it after every traced
//! query — the measured feedback loop ROADMAP O3 asks for. With
//! calibration disabled the book is never consulted and plans are
//! byte-identical to the static path.
//!
//! Everything here is hand-rolled JSON in and out (the workspace has no
//! serde); rendering follows the `/progress` idiom, and the JSONL
//! loader is lenient — a line it cannot parse is skipped, never fatal.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use crate::chrome::escape;
use crate::metrics::Histogram;
use crate::Trace;

/// Environment variable naming a directory for JSONL profile
/// persistence. When set, the process-global [`QueryLog`] loads the
/// existing log on first touch and appends every new profile.
pub const PROFILE_DIR_ENV: &str = "BDA_PROFILE_DIR";

/// File name of the JSONL query log inside the profile directory.
pub const PROFILE_FILE: &str = "profiles.jsonl";

/// Profiles retained in the in-memory query-log ring.
pub const DEFAULT_QUERIES_KEPT: usize = 64;

/// Slow-query detection needs at least this many prior walls before the
/// p99 estimate is trusted.
const SLOW_MIN_SAMPLES: u64 = 8;

/// A query is slow when its wall time exceeds p99 × this factor.
const SLOW_FACTOR: f64 = 4.0;

/// EWMA smoothing factor for [`CostBook`] estimates: high enough to
/// track a provider that turns slow within a handful of queries, low
/// enough not to chase one noisy sample.
pub const EWMA_ALPHA: f64 = 0.3;

/// Aggregate cost of one operator class within a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    /// Operator class, e.g. `join`, `matmul` (the `op:` span suffix).
    pub class: String,
    /// Number of operator spans of this class.
    pub count: u64,
    /// Rows produced, summed (spans without cardinality count 0).
    pub rows: u64,
    /// Bytes moved, summed (spans without a payload count 0).
    pub bytes: u64,
    /// Wall time, summed, in nanoseconds.
    pub wall_ns: u64,
}

/// Aggregate cost of one site within a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteProfile {
    /// Provider name (or `app` for the application tier).
    pub site: String,
    /// Fragments dispatched to this site.
    pub fragments: u64,
    /// Fragment wall time, summed, in nanoseconds.
    pub fragment_wall_ns: u64,
    /// Bytes moved to or from this site (transfers and reships).
    pub transfer_bytes: u64,
    /// Transfer wall time, summed, in nanoseconds.
    pub transfer_wall_ns: u64,
    /// Retry attempts recorded against this site's fragments.
    pub retries: u64,
    /// Failovers away from this site.
    pub failovers: u64,
}

/// A per-query profile record distilled from the span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryProfile {
    /// Trace id of the query this profile was distilled from.
    pub trace_id: u64,
    /// Tenant identity the query is charged to (empty when unknown —
    /// profiles persisted before metering existed load as empty).
    pub tenant: String,
    /// End-to-end wall time in nanoseconds (root `query` span).
    pub wall_ns: u64,
    /// Flagged slow by the query log (wall > p99 × k at push time).
    pub slow: bool,
    /// Per-operator-class aggregates, sorted by class.
    pub ops: Vec<OpProfile>,
    /// Per-site aggregates, sorted by site.
    pub sites: Vec<SiteProfile>,
}

impl QueryProfile {
    /// Distill a finished trace into a profile. `None` for an empty
    /// trace (a disabled tracer's `finish()`).
    pub fn from_trace(trace: &Trace) -> Option<QueryProfile> {
        if trace.spans.is_empty() {
            return None;
        }
        // Wall time: the root `query` span when present, otherwise the
        // extent of the recorded spans.
        let wall_ns = trace
            .spans
            .iter()
            .find(|s| s.parent.is_none() && s.name == "query")
            .map(|s| s.duration_ns())
            .unwrap_or_else(|| {
                let start = trace.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
                let end = trace.spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
                end.saturating_sub(start)
            });
        let mut ops: BTreeMap<&str, OpProfile> = BTreeMap::new();
        let mut sites: BTreeMap<&str, SiteProfile> = BTreeMap::new();
        for span in &trace.spans {
            if let Some(class) = span.name.strip_prefix("op:") {
                let op = ops.entry(class).or_insert_with(|| OpProfile {
                    class: class.to_string(),
                    count: 0,
                    rows: 0,
                    bytes: 0,
                    wall_ns: 0,
                });
                op.count += 1;
                op.rows += span.rows.unwrap_or(0);
                op.bytes += span.bytes.unwrap_or(0);
                op.wall_ns += span.duration_ns();
                continue;
            }
            let site = sites
                .entry(span.site.as_str())
                .or_insert_with(|| SiteProfile {
                    site: span.site.clone(),
                    fragments: 0,
                    fragment_wall_ns: 0,
                    transfer_bytes: 0,
                    transfer_wall_ns: 0,
                    retries: 0,
                    failovers: 0,
                });
            if span.name.starts_with("fragment:") {
                site.fragments += 1;
                site.fragment_wall_ns += span.duration_ns();
                for ev in &span.events {
                    if ev.label.starts_with("retry:") {
                        site.retries += 1;
                    } else if ev.label.starts_with("failover:") {
                        site.failovers += 1;
                    }
                }
            } else if span.name.starts_with("transfer:") || span.name.starts_with("reship:") {
                site.transfer_bytes += span.bytes.unwrap_or(0);
                site.transfer_wall_ns += span.duration_ns();
            }
        }
        // Drop sites that contributed nothing measurable (e.g. the app
        // tier when it only held the root span).
        sites.retain(|_, s| {
            s.fragments > 0 || s.transfer_bytes > 0 || s.transfer_wall_ns > 0 || s.retries > 0
        });
        Some(QueryProfile {
            trace_id: trace.trace_id,
            tenant: String::new(),
            wall_ns,
            slow: false,
            ops: ops.into_values().collect(),
            sites: sites.into_values().collect(),
        })
    }

    /// Render as a single JSON line (the JSONL persistence format and
    /// the `/queries` element shape).
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"trace_id\":\"{:#018x}\",\"tenant\":\"{}\",\"wall_ns\":{},\"slow\":{},\"ops\":[",
            self.trace_id,
            escape(&self.tenant),
            self.wall_ns,
            self.slow
        ));
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"class\":\"{}\",\"count\":{},\"rows\":{},\"bytes\":{},\"wall_ns\":{}}}",
                escape(&op.class),
                op.count,
                op.rows,
                op.bytes,
                op.wall_ns
            ));
        }
        out.push_str("],\"sites\":[");
        for (i, s) in self.sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"site\":\"{}\",\"fragments\":{},\"fragment_wall_ns\":{},\
                 \"transfer_bytes\":{},\"transfer_wall_ns\":{},\"retries\":{},\"failovers\":{}}}",
                escape(&s.site),
                s.fragments,
                s.fragment_wall_ns,
                s.transfer_bytes,
                s.transfer_wall_ns,
                s.retries,
                s.failovers
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parse one JSONL line produced by [`QueryProfile::render_json`].
    /// Lenient: `None` for anything malformed (the loader skips it).
    pub fn parse_json(line: &str) -> Option<QueryProfile> {
        let fields = object_fields(line)?;
        let trace_id = raw_of(&fields, "trace_id")
            .and_then(parse_string)
            .and_then(|s| u64::from_str_radix(s.strip_prefix("0x")?, 16).ok())?;
        // Lenient: lines persisted before metering carry no tenant.
        let tenant = raw_of(&fields, "tenant")
            .and_then(parse_string)
            .unwrap_or_default();
        let wall_ns = raw_of(&fields, "wall_ns").and_then(parse_u64)?;
        let slow = raw_of(&fields, "slow").and_then(parse_bool)?;
        let mut ops = Vec::new();
        for obj in array_objects(raw_of(&fields, "ops")?)? {
            let f = object_fields(obj)?;
            ops.push(OpProfile {
                class: raw_of(&f, "class").and_then(parse_string)?,
                count: raw_of(&f, "count").and_then(parse_u64)?,
                rows: raw_of(&f, "rows").and_then(parse_u64)?,
                bytes: raw_of(&f, "bytes").and_then(parse_u64)?,
                wall_ns: raw_of(&f, "wall_ns").and_then(parse_u64)?,
            });
        }
        let mut sites = Vec::new();
        for obj in array_objects(raw_of(&fields, "sites")?)? {
            let f = object_fields(obj)?;
            sites.push(SiteProfile {
                site: raw_of(&f, "site").and_then(parse_string)?,
                fragments: raw_of(&f, "fragments").and_then(parse_u64)?,
                fragment_wall_ns: raw_of(&f, "fragment_wall_ns").and_then(parse_u64)?,
                transfer_bytes: raw_of(&f, "transfer_bytes").and_then(parse_u64)?,
                transfer_wall_ns: raw_of(&f, "transfer_wall_ns").and_then(parse_u64)?,
                retries: raw_of(&f, "retries").and_then(parse_u64)?,
                failovers: raw_of(&f, "failovers").and_then(parse_u64)?,
            });
        }
        Some(QueryProfile {
            trace_id,
            tenant,
            wall_ns,
            slow,
            ops,
            sites,
        })
    }
}

// ---------------------------------------------------------------------
// Minimal JSON scanning (enough for our own output, strings included).
// Shared with `crate::meter`, whose usage records persist the same way.

/// Split a JSON object into top-level `(key, raw value)` pairs.
pub(crate) fn object_fields(s: &str) -> Option<Vec<(String, &str)>> {
    let s = s.trim();
    let b = s.as_bytes();
    if b.first() != Some(&b'{') || b.last() != Some(&b'}') {
        return None;
    }
    let mut out = Vec::new();
    let mut i = 1;
    loop {
        i = skip_ws(b, i);
        if i >= b.len() {
            return None;
        }
        if b[i] == b'}' {
            return Some(out);
        }
        let (key, after) = scan_string(b, i)?;
        i = skip_ws(b, after);
        if b.get(i) != Some(&b':') {
            return None;
        }
        i = skip_ws(b, i + 1);
        let end = scan_value(b, i)?;
        out.push((key, s.get(i..end)?));
        i = skip_ws(b, end);
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {}
            _ => return None,
        }
    }
}

/// The raw value of `key`, if present.
pub(crate) fn raw_of<'a>(fields: &[(String, &'a str)], key: &str) -> Option<&'a str> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

/// Split a raw `[…]` array value into its top-level objects.
fn array_objects(raw: &str) -> Option<Vec<&str>> {
    let raw = raw.trim();
    let b = raw.as_bytes();
    if b.first() != Some(&b'[') || b.last() != Some(&b']') {
        return None;
    }
    let mut out = Vec::new();
    let mut i = 1;
    loop {
        i = skip_ws(b, i);
        if i >= b.len() {
            return None;
        }
        if b[i] == b']' {
            return Some(out);
        }
        let end = scan_value(b, i)?;
        out.push(raw.get(i..end)?);
        i = skip_ws(b, end);
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b']') => {}
            _ => return None,
        }
    }
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && (b[i] as char).is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Scan a `"…"` string starting at `i`; return (decoded, index past the
/// closing quote). Decodes the escapes [`crate::chrome::escape`] emits.
fn scan_string(b: &[u8], i: usize) -> Option<(String, usize)> {
    if b.get(i) != Some(&b'"') {
        return None;
    }
    let mut out = String::new();
    let mut i = i + 1;
    loop {
        match *b.get(i)? {
            b'"' => return Some((out, i + 1)),
            b'\\' => {
                match *b.get(i + 1)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = std::str::from_utf8(b.get(i + 2..i + 6)?).ok()?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        i += 6;
                        continue;
                    }
                    _ => return None,
                }
                i += 2;
            }
            c => {
                // Copy the full UTF-8 sequence starting here.
                let len = utf8_len(c);
                out.push_str(std::str::from_utf8(b.get(i..i + len)?).ok()?);
                i += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Index one past the raw JSON value starting at `i` (string, number,
/// bool, or bracketed aggregate — nesting and strings respected).
fn scan_value(b: &[u8], i: usize) -> Option<usize> {
    match *b.get(i)? {
        b'"' => scan_string(b, i).map(|(_, end)| end),
        b'[' | b'{' => {
            let mut depth = 0usize;
            let mut j = i;
            while j < b.len() {
                match b[j] {
                    b'"' => j = scan_string(b, j)?.1,
                    b'[' | b'{' => {
                        depth += 1;
                        j += 1;
                    }
                    b']' | b'}' => {
                        depth -= 1;
                        j += 1;
                        if depth == 0 {
                            return Some(j);
                        }
                    }
                    _ => j += 1,
                }
            }
            None
        }
        _ => {
            let mut j = i;
            while j < b.len() && !matches!(b[j], b',' | b']' | b'}') {
                j += 1;
            }
            (j > i).then_some(j)
        }
    }
}

pub(crate) fn parse_string(raw: &str) -> Option<String> {
    scan_string(raw.trim().as_bytes(), 0).map(|(s, _)| s)
}

pub(crate) fn parse_u64(raw: &str) -> Option<u64> {
    raw.trim().parse().ok()
}

fn parse_bool(raw: &str) -> Option<bool> {
    match raw.trim() {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Query log.

/// What [`QueryLog::push`] decided about a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushOutcome {
    /// The profile was flagged slow (wall > p99 × k with enough history).
    pub slow: bool,
    /// The p99 wall estimate (ns) the decision was made against, when
    /// enough history existed.
    pub p99_ns: Option<u64>,
}

struct LogInner {
    entries: VecDeque<QueryProfile>,
    /// Wall-time history backing the slow-query p99 estimate (bounded
    /// buckets, so unbounded history costs nothing).
    walls: Histogram,
    /// JSONL file appended on every push, once persistence is enabled.
    persist: Option<PathBuf>,
}

/// A bounded ring of recent query profiles with optional JSONL
/// persistence and p99-based slow-query flagging.
pub struct QueryLog {
    inner: Mutex<LogInner>,
    capacity: usize,
}

impl QueryLog {
    /// An in-memory log holding [`DEFAULT_QUERIES_KEPT`] profiles.
    pub fn new() -> QueryLog {
        QueryLog::with_capacity(DEFAULT_QUERIES_KEPT)
    }

    /// An in-memory log holding up to `capacity` profiles.
    pub fn with_capacity(capacity: usize) -> QueryLog {
        QueryLog {
            inner: Mutex::new(LogInner {
                entries: VecDeque::new(),
                walls: Histogram::new(),
                persist: None,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Enable JSONL persistence under `dir`: load whatever
    /// `profiles.jsonl` already holds (lenient — bad lines skipped)
    /// into the ring and wall history, then append every future push.
    /// Returns how many profiles were recovered.
    pub fn init_persistence(&self, dir: &Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(PROFILE_FILE);
        let mut recovered = 0usize;
        let mut inner = self.inner.lock().expect("query log lock poisoned");
        if let Ok(existing) = std::fs::read_to_string(&path) {
            for line in existing.lines() {
                if let Some(profile) = QueryProfile::parse_json(line) {
                    inner.walls.observe_ns(profile.wall_ns);
                    inner.entries.push_back(profile);
                    while inner.entries.len() > self.capacity {
                        inner.entries.pop_front();
                    }
                    recovered += 1;
                }
            }
        }
        inner.persist = Some(path);
        Ok(recovered)
    }

    /// Record a profile: decide slowness against the current p99, fold
    /// its wall into the history, append to the JSONL log (best
    /// effort), and retain it in the ring. Returns the decision.
    pub fn push(&self, mut profile: QueryProfile) -> PushOutcome {
        let mut inner = self.inner.lock().expect("query log lock poisoned");
        let p99 = if inner.walls.count() >= SLOW_MIN_SAMPLES {
            inner.walls.p99()
        } else {
            None
        };
        let slow = p99.is_some_and(|p| profile.wall_ns as f64 / 1e9 > p * SLOW_FACTOR);
        profile.slow = slow;
        inner.walls.observe_ns(profile.wall_ns);
        if let Some(path) = inner.persist.clone() {
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| writeln!(f, "{}", profile.render_json()));
        }
        inner.entries.push_back(profile);
        while inner.entries.len() > self.capacity {
            inner.entries.pop_front();
        }
        PushOutcome {
            slow,
            p99_ns: p99.map(|s| (s * 1e9) as u64),
        }
    }

    /// Profiles currently retained, oldest first.
    pub fn snapshot(&self) -> Vec<QueryProfile> {
        let inner = self.inner.lock().expect("query log lock poisoned");
        inner.entries.iter().cloned().collect()
    }

    /// Retained profiles flagged slow, oldest first.
    pub fn slow_snapshot(&self) -> Vec<QueryProfile> {
        self.snapshot().into_iter().filter(|p| p.slow).collect()
    }

    /// Number of retained profiles.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("query log lock poisoned")
            .entries
            .len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current p99 wall estimate in nanoseconds, once enough history.
    pub fn p99_ns(&self) -> Option<u64> {
        let inner = self.inner.lock().expect("query log lock poisoned");
        if inner.walls.count() >= SLOW_MIN_SAMPLES {
            inner.walls.p99().map(|s| (s * 1e9) as u64)
        } else {
            None
        }
    }

    /// The retained log as a JSON document (`GET /queries`).
    pub fn render_json(&self) -> String {
        self.render_json_for(None)
    }

    /// The retained slow queries as a JSON document (`GET /queries/slow`).
    pub fn render_slow_json(&self) -> String {
        self.render_slow_json_for(None)
    }

    /// `GET /queries?tenant=<id>`: the retained log, optionally filtered
    /// to one tenant's queries.
    pub fn render_json_for(&self, tenant: Option<&str>) -> String {
        let mut profiles = self.snapshot();
        if let Some(t) = tenant {
            profiles.retain(|p| p.tenant == t);
        }
        render_queries(&profiles)
    }

    /// `GET /queries/slow?tenant=<id>`: slow queries, optionally
    /// filtered to one tenant.
    pub fn render_slow_json_for(&self, tenant: Option<&str>) -> String {
        let mut profiles = self.slow_snapshot();
        if let Some(t) = tenant {
            profiles.retain(|p| p.tenant == t);
        }
        render_queries(&profiles)
    }
}

impl Default for QueryLog {
    fn default() -> Self {
        QueryLog::new()
    }
}

fn render_queries(profiles: &[QueryProfile]) -> String {
    let body: Vec<String> = profiles.iter().map(|p| p.render_json()).collect();
    format!("{{\"queries\":[{}]}}\n", body.join(","))
}

/// The process-global query log. On first touch, honours
/// [`PROFILE_DIR_ENV`] by loading and enabling JSONL persistence.
pub fn global_log() -> &'static QueryLog {
    static LOG: OnceLock<QueryLog> = OnceLock::new();
    LOG.get_or_init(|| {
        let log = QueryLog::new();
        if let Ok(dir) = std::env::var(PROFILE_DIR_ENV) {
            if !dir.trim().is_empty() {
                let _ = log.init_persistence(Path::new(&dir));
            }
        }
        log
    })
}

// ---------------------------------------------------------------------
// Cost calibration.

struct BookInner {
    seed: u64,
    samples: u64,
    /// ns per output row, per operator class.
    ns_per_row: BTreeMap<String, f64>,
    /// ns per transferred byte, per site link.
    ns_per_byte: BTreeMap<String, f64>,
    /// Fixed per-fragment dispatch cost (ns), per site.
    dispatch_ns: BTreeMap<String, f64>,
}

/// Seeded, deterministic EWMA cost estimates recalibrated from query
/// profiles. Cloning shares the underlying registry (the planner holds
/// a clone of the process-global book).
#[derive(Clone)]
pub struct CostBook {
    inner: Arc<Mutex<BookInner>>,
}

impl CostBook {
    /// A fresh book. The seed is provenance recorded in dumps: two
    /// books built with the same seed and fed the same profiles render
    /// byte-identically.
    pub fn new(seed: u64) -> CostBook {
        CostBook {
            inner: Arc::new(Mutex::new(BookInner {
                seed,
                samples: 0,
                ns_per_row: BTreeMap::new(),
                ns_per_byte: BTreeMap::new(),
                dispatch_ns: BTreeMap::new(),
            })),
        }
    }

    /// Fold a query profile into the estimates (EWMA, first sample
    /// initializes).
    pub fn observe(&self, profile: &QueryProfile) {
        let mut inner = self.inner.lock().expect("cost book lock poisoned");
        inner.samples += 1;
        for op in &profile.ops {
            let obs = op.wall_ns as f64 / op.rows.max(1) as f64;
            fold(&mut inner.ns_per_row, &op.class, obs);
        }
        for site in &profile.sites {
            if site.fragments > 0 {
                let obs = site.fragment_wall_ns as f64 / site.fragments as f64;
                fold(&mut inner.dispatch_ns, &site.site, obs);
            }
            if site.transfer_bytes > 0 {
                let obs = site.transfer_wall_ns as f64 / site.transfer_bytes as f64;
                fold(&mut inner.ns_per_byte, &site.site, obs);
            }
        }
    }

    /// Estimated ns per output row for an operator class.
    pub fn ns_per_row(&self, class: &str) -> Option<f64> {
        self.inner
            .lock()
            .expect("cost book lock poisoned")
            .ns_per_row
            .get(class)
            .copied()
    }

    /// Estimated ns per transferred byte for a site link.
    pub fn ns_per_byte(&self, site: &str) -> Option<f64> {
        self.inner
            .lock()
            .expect("cost book lock poisoned")
            .ns_per_byte
            .get(site)
            .copied()
    }

    /// Estimated fixed dispatch cost (ns) for a fragment at a site.
    pub fn dispatch_ns(&self, site: &str) -> Option<f64> {
        self.inner
            .lock()
            .expect("cost book lock poisoned")
            .dispatch_ns
            .get(site)
            .copied()
    }

    /// How many profiles have been folded in.
    pub fn samples(&self) -> u64 {
        self.inner.lock().expect("cost book lock poisoned").samples
    }

    /// The seed this book was built with.
    pub fn seed(&self) -> u64 {
        self.inner.lock().expect("cost book lock poisoned").seed
    }

    /// Render the book as a JSON document (`GET /calibration`). Keys
    /// are sorted (BTreeMap) and floats fixed to 3 decimals, so equal
    /// books render byte-identically.
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock().expect("cost book lock poisoned");
        let table = |m: &BTreeMap<String, f64>| -> String {
            let body: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("\"{}\":{:.3}", escape(k), v))
                .collect();
            format!("{{{}}}", body.join(","))
        };
        format!(
            "{{\"seed\":{},\"samples\":{},\"ns_per_row\":{},\"ns_per_byte\":{},\"dispatch_ns\":{}}}\n",
            inner.seed,
            inner.samples,
            table(&inner.ns_per_row),
            table(&inner.ns_per_byte),
            table(&inner.dispatch_ns),
        )
    }
}

fn fold(map: &mut BTreeMap<String, f64>, key: &str, obs: f64) {
    match map.get_mut(key) {
        Some(prev) => *prev = EWMA_ALPHA * obs + (1.0 - EWMA_ALPHA) * *prev,
        None => {
            map.insert(key.to_string(), obs);
        }
    }
}

/// The process-global cost book, seeded from [`crate::TRACE_SEED_ENV`]
/// when set (0 otherwise).
pub fn global_costs() -> &'static CostBook {
    static BOOK: OnceLock<CostBook> = OnceLock::new();
    BOOK.get_or_init(|| {
        let seed = std::env::var(crate::TRACE_SEED_ENV)
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0);
        CostBook::new(seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Span, SpanEvent};

    fn span(id: u64, parent: Option<u64>, name: &str, site: &str, dur: u64) -> Span {
        Span {
            id,
            parent,
            name: name.to_string(),
            site: site.to_string(),
            start_ns: 0,
            end_ns: dur,
            rows: None,
            bytes: None,
            events: Vec::new(),
        }
    }

    fn sample_trace() -> Trace {
        let mut root = span(1, None, "query", "app", 10_000);
        root.events.clear();
        let mut frag = span(2, Some(1), "fragment:0", "rel", 6_000);
        frag.events.push(SpanEvent {
            at_ns: 100,
            label: "retry:execute@rel attempt 2".into(),
        });
        frag.events.push(SpanEvent {
            at_ns: 200,
            label: "failover:rel2".into(),
        });
        let mut join = span(3, Some(2), "op:join", "rel", 4_000);
        join.rows = Some(100);
        let mut xfer = span(4, Some(1), "transfer:result", "rel", 2_000);
        xfer.bytes = Some(1_000);
        Trace {
            trace_id: 0xBDA,
            spans: vec![root, frag, join, xfer],
            dropped: 0,
        }
    }

    #[test]
    fn from_trace_distills_ops_sites_retries_and_wall() {
        let p = QueryProfile::from_trace(&sample_trace()).unwrap();
        assert_eq!(p.trace_id, 0xBDA);
        assert_eq!(p.wall_ns, 10_000, "wall from the root query span");
        assert_eq!(p.ops.len(), 1);
        let op = &p.ops[0];
        assert_eq!(
            (op.class.as_str(), op.count, op.rows, op.wall_ns),
            ("join", 1, 100, 4_000)
        );
        assert_eq!(p.sites.len(), 1, "app tier with no fragments is dropped");
        let s = &p.sites[0];
        assert_eq!(s.site, "rel");
        assert_eq!(s.fragments, 1);
        assert_eq!(s.fragment_wall_ns, 6_000);
        assert_eq!(s.transfer_bytes, 1_000);
        assert_eq!(s.transfer_wall_ns, 2_000);
        assert_eq!(s.retries, 1);
        assert_eq!(s.failovers, 1);
        assert!(QueryProfile::from_trace(&Trace::default()).is_none());
    }

    #[test]
    fn profile_json_round_trips() {
        let mut p = QueryProfile::from_trace(&sample_trace()).unwrap();
        p.slow = true;
        p.ops[0].class = "join \"odd\"\nname".into();
        let line = p.render_json();
        assert!(!line.contains('\n'), "one profile per line");
        let back = QueryProfile::parse_json(&line).unwrap();
        assert_eq!(back, p);
        assert_eq!(QueryProfile::parse_json("not json"), None);
        assert_eq!(QueryProfile::parse_json("{\"wall_ns\":1}"), None);
    }

    #[test]
    fn tenant_survives_json_and_old_lines_load_without_one() {
        let mut p = QueryProfile::from_trace(&sample_trace()).unwrap();
        p.tenant = "acme \"corp\"".into();
        let line = p.render_json();
        assert_eq!(QueryProfile::parse_json(&line).unwrap(), p);
        // A pre-metering line (no tenant key) still loads, as empty.
        let old = line.replace("\"tenant\":\"acme \\\"corp\\\"\",", "");
        assert!(!old.contains("tenant"));
        let back = QueryProfile::parse_json(&old).unwrap();
        assert_eq!(back.tenant, "");
        assert_eq!(back.trace_id, p.trace_id);
    }

    #[test]
    fn query_log_filters_by_tenant() {
        let log = QueryLog::new();
        let mut p = QueryProfile::from_trace(&sample_trace()).unwrap();
        p.tenant = "acme".into();
        log.push(p.clone());
        p.trace_id = 0xFEED;
        p.tenant = "umbrella".into();
        log.push(p);
        let acme = log.render_json_for(Some("acme"));
        assert!(acme.contains("\"tenant\":\"acme\""));
        assert!(!acme.contains("umbrella"));
        let none = log.render_json_for(Some("nobody"));
        assert_eq!(none, "{\"queries\":[]}\n");
        // No filter: both.
        assert!(log.render_json().contains("umbrella"));
    }

    #[test]
    fn query_log_flags_slow_against_p99_and_bounds_the_ring() {
        let log = QueryLog::with_capacity(4);
        let profile = |wall: u64| QueryProfile {
            trace_id: wall,
            tenant: String::new(),
            wall_ns: wall,
            slow: false,
            ops: vec![],
            sites: vec![],
        };
        // Not enough history yet: a huge wall is not flagged.
        for _ in 0..7 {
            assert!(!log.push(profile(50_000)).slow);
        }
        assert!(
            !log.push(profile(60_000_000_000)).slow,
            "eighth push still lacks 8 prior samples"
        );
        // Now p99 exists (dominated by the 50µs cluster... and one 60s
        // outlier that clamps to 10s). Push walls against it.
        let out = log.push(profile(50_000));
        assert!(!out.slow);
        assert!(out.p99_ns.is_some());
        // Far beyond p99 × 4 (p99 ≤ 10s clamped): 60s is flagged.
        let out = log.push(profile(60_000_000_000));
        assert!(out.slow, "p99={:?}", out.p99_ns);
        assert_eq!(log.len(), 4, "ring stays bounded");
        assert_eq!(log.slow_snapshot().len(), 1);
        assert!(log.render_slow_json().contains("\"slow\":true"));
    }

    #[test]
    fn persistence_round_trips_across_logs() {
        let dir = std::env::temp_dir().join(format!("bda-profile-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let log = QueryLog::new();
        assert_eq!(log.init_persistence(&dir).unwrap(), 0);
        let mut p = QueryProfile::from_trace(&sample_trace()).unwrap();
        log.push(p.clone());
        p.trace_id = 0xFEED;
        log.push(p);
        // A reloaded log sees both profiles and keeps appending.
        let reloaded = QueryLog::new();
        assert_eq!(reloaded.init_persistence(&dir).unwrap(), 2);
        let snap = reloaded.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].trace_id, 0xBDA);
        assert_eq!(snap[1].trace_id, 0xFEED);
        assert!(reloaded.render_json().contains("0x000000000000feed"));
        // Corrupt trailing line (a torn write) is skipped, not fatal.
        let path = dir.join(PROFILE_FILE);
        let mut content = std::fs::read_to_string(&path).unwrap();
        content.push_str("{\"trace_id\":\"0x12\",\"wall_");
        std::fs::write(&path, content).unwrap();
        let torn = QueryLog::new();
        assert_eq!(torn.init_persistence(&dir).unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cost_book_ewma_is_deterministic_and_sorted() {
        let book = CostBook::new(42);
        assert_eq!(book.samples(), 0);
        assert_eq!(book.ns_per_row("join"), None);
        let p = QueryProfile::from_trace(&sample_trace()).unwrap();
        book.observe(&p);
        // First observation initializes: 4000ns / 100 rows.
        assert_eq!(book.ns_per_row("join"), Some(40.0));
        assert_eq!(book.dispatch_ns("rel"), Some(6_000.0));
        assert_eq!(book.ns_per_byte("rel"), Some(2.0));
        // Second observation folds with α=0.3.
        book.observe(&p);
        assert!((book.ns_per_row("join").unwrap() - 40.0).abs() < 1e-9);
        let mut faster = p.clone();
        faster.ops[0].wall_ns = 2_000; // 20 ns/row observed
        book.observe(&faster);
        let expected = 0.3 * 20.0 + 0.7 * 40.0;
        assert!((book.ns_per_row("join").unwrap() - expected).abs() < 1e-9);
        // Dumps are deterministic: same seed, same profiles, same bytes.
        let twin = CostBook::new(42);
        twin.observe(&p);
        twin.observe(&p);
        twin.observe(&faster);
        assert_eq!(book.render_json(), twin.render_json());
        assert!(book.render_json().contains("\"seed\":42"));
    }
}
