//! Chrome-trace-format export: render a [`Trace`](crate::Trace) as the
//! JSON array `chrome://tracing` / Perfetto load directly.
//!
//! Each span becomes a complete event (`"ph":"X"`) with microsecond
//! timestamps; span events become instant events (`"ph":"i"`). Sites map
//! to process names via a metadata event per site, so the timeline groups
//! client, app tier, and each provider into separate tracks.

use std::collections::BTreeMap;

use crate::Trace;

/// Minimal JSON string escaping (the only JSON we emit; no serde
/// in-tree). Shared with the `/progress` endpoint's renderer.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Trace {
    /// Render the trace as Chrome trace-event JSON (an array of events).
    /// Write it to a file and open it in `chrome://tracing` or Perfetto.
    pub fn to_chrome_json(&self) -> String {
        // Stable pid per site, in first-seen-then-sorted order.
        let mut pids: BTreeMap<&str, u64> = BTreeMap::new();
        for s in &self.spans {
            let next = pids.len() as u64 + 1;
            pids.entry(s.site.as_str()).or_insert(next);
        }
        let mut events: Vec<String> = Vec::new();
        for (site, pid) in &pids {
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(site)
            ));
        }
        for s in &self.spans {
            let pid = pids[s.site.as_str()];
            let us = s.start_ns / 1_000;
            let dur = s.duration_ns().max(1) / 1_000;
            let mut args = format!("\"span\":{},\"parent\":{}", s.id, opt(s.parent));
            if let Some(rows) = s.rows {
                args.push_str(&format!(",\"rows\":{rows}"));
            }
            if let Some(bytes) = s.bytes {
                args.push_str(&format!(",\"bytes\":{bytes}"));
            }
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":0,\
                 \"ts\":{us},\"dur\":{},\"args\":{{{args}}}}}",
                escape(&s.name),
                dur.max(1)
            ));
            for e in &s.events {
                events.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":0,\
                     \"ts\":{},\"args\":{{\"span\":{}}}}}",
                    escape(&e.label),
                    e.at_ns / 1_000,
                    s.id
                ));
            }
        }
        format!("[{}]", events.join(",\n"))
    }
}

fn opt(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use crate::Tracer;

    #[test]
    fn chrome_export_has_tracks_spans_and_instants() {
        let t = Tracer::new(3);
        let mut q = t.start(None, || "query".into(), "app");
        let mut f = t.start(q.id(), || "fragment:0".into(), "rel");
        f.event(|| "retry:1".into());
        f.set_rows(10);
        f.finish();
        q.set_bytes(128);
        q.finish();
        let json = t.finish().to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        // One process-name metadata event per site.
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"name\":\"app\""));
        assert!(json.contains("\"name\":\"rel\""));
        // Complete events with durations and args.
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"rows\":10"));
        assert!(json.contains("\"bytes\":128"));
        // The span event renders as an instant.
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"retry:1\""));
    }

    #[test]
    fn escaping_keeps_json_well_formed() {
        let t = Tracer::new(3);
        t.start(None, || "op:\"quoted\"\nline".into(), "a\\b")
            .finish();
        let json = t.finish().to_chrome_json();
        assert!(json.contains("op:\\\"quoted\\\"\\nline"));
        assert!(json.contains("a\\\\b"));
    }
}
